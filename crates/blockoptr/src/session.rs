//! The incremental analysis engine: [`Analyzer`] configuration +
//! [`Session`] state.
//!
//! The paper's workflow (Figure 5) is batch: read the whole chain, derive
//! everything, recommend once. A production monitoring loop can't afford
//! that — it ingests blocks *as they commit* and re-issues recommendations
//! per window. This module provides that loop's engine:
//!
//! * [`Analyzer`] — cheap, cloneable configuration (metric knobs,
//!   thresholds, mining config, auto-tuning), built builder-style;
//! * [`Session`] — the stateful accumulator: [`Session::ingest_block`] /
//!   [`Session::ingest_ledger`] fold new transactions into running metric
//!   state (interval rate buckets, conflict and hot-key counters,
//!   directly-follows counts), and [`Session::snapshot`] materializes a full
//!   [`Analysis`] from that state at a cost proportional to the *state*
//!   (intervals, activities, conflicts), not the log length;
//! * [`AnalyzeError`] — the typed error for every fallible path (empty
//!   logs, malformed JSON, degenerate configuration);
//! * [`WindowPolicy`] — bounded-memory retention for always-on monitoring:
//!   with [`Analyzer::window`] the session evicts aged-out records at the
//!   end of every ingest batch and *retracts* them from every tracker, so
//!   state stays bounded by the window and a windowed snapshot equals a
//!   fresh analysis of only the retained suffix (see
//!   [`Session::footprint`] for the boundedness witness).
//!
//! ```
//! use blockoptr::session::Analyzer;
//! use workload::spec::ControlVariables;
//!
//! let cv = ControlVariables { transactions: 500, ..Default::default() };
//! let output = workload::synthetic::generate(&cv).run(cv.network_config());
//!
//! let mut session = Analyzer::new().auto_tune(true).session().unwrap();
//! for block in output.ledger.blocks() {
//!     session.ingest_block(block);
//! }
//! let analysis = session.snapshot().unwrap();
//! assert_eq!(analysis.log.len(), output.report.committed);
//! ```

use crate::autotune::tune_from_rates;
use crate::caseid::{self, CaseDerivation};
use crate::export;
use crate::log::{BlockchainLog, TxRecord};
use crate::metrics::{
    BlockMetrics, CorrelationTracker, EndorserMetrics, HotkeyIndex, InvokerMetrics, KeyMetrics,
    MetricConfig, Metrics, RateTracker,
};
use crate::pipeline::Analysis;
use crate::recommend::rules::{RuleCtx, RuleSet};
use crate::recommend::{observe_activity_type, ActivityTypeHistogram, Thresholds};
use fabric_sim::ledger::{Block, Ledger};
use process_mining::dfg::DirectlyFollowsGraph;
use process_mining::eventlog::{EventLog, Trace};
use process_mining::heuristics::{mine_from_dfg, HeuristicsConfig};
use sim_core::pool;
use sim_core::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Why an analysis could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// No transactions have been ingested — there is nothing to analyze.
    EmptyLog,
    /// A log could not be parsed from JSON.
    Json(String),
    /// The configured metric interval is zero, so rate distributions are
    /// undefined.
    ZeroInterval,
    /// A log window arrived out of commit order (streaming ingestion
    /// requires commit-ordered records; conflict distances are defined on
    /// them).
    OutOfOrder {
        /// The offending record's commit index.
        index: usize,
        /// The highest commit index ingested before it.
        after: usize,
    },
    /// A log window fed to a session with a bounded [`WindowPolicy`]
    /// carries decreasing block numbers. Block-count eviction is defined
    /// on nondecreasing block order (which every chain-extracted export
    /// has); accepting a renumbered log would silently evict the wrong
    /// records.
    BlockOrder {
        /// The offending record's block number.
        block: u64,
        /// The highest block number seen before it.
        after: u64,
    },
    /// A rule id passed to [`Analyzer::disable_rule`] or
    /// [`Analyzer::rule_thresholds`] matches no registered rule — almost
    /// always a typo, which silently ignoring would hide.
    UnknownRule {
        /// The unrecognized id.
        id: String,
        /// Ids registered at the time of the call.
        known: Vec<String>,
    },
    /// A scenario spec could not be parsed, validated, or built
    /// (spec-driven plan execution and `optimize --spec`). Carries the
    /// typed [`workload::SpecError`]: unknown contract ids, out-of-domain
    /// parameters, unsupported variant sets, malformed JSON.
    Spec(workload::SpecError),
    /// Two sessions with incompatible configurations were merged
    /// ([`Session::merge`]): tracker state is parameterized by the metric
    /// interval (rate buckets) and the window policy (eviction anchors),
    /// so differing values cannot be combined meaningfully. Carries a
    /// human-readable description of what differed.
    MergeMismatch(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::EmptyLog => f.write_str("the blockchain log is empty"),
            AnalyzeError::Json(msg) => write!(f, "malformed log JSON: {msg}"),
            AnalyzeError::ZeroInterval => {
                f.write_str("metric interval is zero; rate distributions are undefined")
            }
            AnalyzeError::OutOfOrder { index, after } => write!(
                f,
                "log window out of commit order: index {index} arrived after {after}"
            ),
            AnalyzeError::BlockOrder { block, after } => write!(
                f,
                "log window block numbers decrease ({block} after {after}); a bounded \
                 window policy needs commit-ordered, nondecreasing blocks"
            ),
            AnalyzeError::UnknownRule { id, known } => write!(
                f,
                "unknown rule id {id:?}; registered ids: {}",
                known.join(", ")
            ),
            AnalyzeError::Spec(err) => write!(f, "scenario spec: {err}"),
            AnalyzeError::MergeMismatch(what) => {
                write!(f, "cannot merge sessions: {what}")
            }
        }
    }
}

impl From<workload::SpecError> for AnalyzeError {
    fn from(err: workload::SpecError) -> Self {
        AnalyzeError::Spec(err)
    }
}

impl std::error::Error for AnalyzeError {}

/// How much history a [`Session`] retains — the memory-boundedness knob for
/// always-on monitoring (ROADMAP "window eviction").
///
/// With any bounded policy the session evicts its oldest records at the end
/// of every ingest batch and *retracts* their contribution from every
/// per-metric tracker, the conflict list, the case cache, and the
/// incremental hotkey index. The guarantee: a windowed snapshot is
/// identical to a fresh analysis of only the retained suffix, and every
/// tracker's state is bounded by the window instead of the stream length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowPolicy {
    /// Keep everything (the default; the original accumulate-only
    /// behaviour).
    #[default]
    Unbounded,
    /// Keep the records of the last `n` distinct block numbers (n ≥ 1).
    LastBlocks(usize),
    /// Keep records whose commit timestamp is within `SimDuration` of the
    /// newest commit ingested.
    LastDuration(sim_core::time::SimDuration),
    /// Exponential-decay retention with the given half-life: a record is
    /// kept while its decay weight `2^(-age / half_life)` stays above
    /// 1/1024 (≈ 10 half-lives), then evicted. Within that horizon records
    /// count fully — a step-function approximation of the decay curve that
    /// keeps every integer metric exact while still forgetting old
    /// behaviour on the half-life's timescale.
    ExponentialDecay {
        /// The half-life of a record's influence.
        half_life: sim_core::time::SimDuration,
    },
}

impl WindowPolicy {
    /// Half-lives after which [`ExponentialDecay`](Self::ExponentialDecay)
    /// evicts (2⁻¹⁰ < 0.1 % residual weight).
    pub const DECAY_HORIZON_HALF_LIVES: u32 = 10;

    /// Parse a policy from its CLI/env spelling:
    /// `unbounded`, `last-blocks:N`, `last-secs:S`, or `half-life:S`
    /// (`S` in seconds, fractions allowed).
    pub fn parse(spec: &str) -> Result<WindowPolicy, String> {
        let secs = |v: &str| -> Result<sim_core::time::SimDuration, String> {
            v.parse::<f64>()
                .ok()
                .filter(|s| *s > 0.0 && s.is_finite())
                .map(sim_core::time::SimDuration::from_secs_f64)
                .ok_or_else(|| format!("window policy needs a positive seconds value, got {v:?}"))
        };
        match spec.split_once(':') {
            None if spec == "unbounded" => Ok(WindowPolicy::Unbounded),
            Some(("last-blocks", n)) => n
                .parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .map(WindowPolicy::LastBlocks)
                .ok_or_else(|| format!("last-blocks needs a positive block count, got {n:?}")),
            Some(("last-secs", v)) => Ok(WindowPolicy::LastDuration(secs(v)?)),
            Some(("half-life", v)) => Ok(WindowPolicy::ExponentialDecay { half_life: secs(v)? }),
            _ => Err(format!(
                "unknown window policy {spec:?} (expected unbounded, last-blocks:N, last-secs:S, or half-life:S)"
            )),
        }
    }

    /// The policy named by the `BLOCKOPTR_WINDOW` environment variable, if
    /// set ([`Unbounded`](Self::Unbounded) when unset) — lets a whole
    /// test-suite or deployment run under a default window without
    /// touching call sites.
    ///
    /// A set-but-malformed spec falls back to `Unbounded` **with a warning
    /// on stderr** (once per process): silently losing the bound would
    /// recreate exactly the unbounded-growth failure the variable exists
    /// to prevent, with nothing to notice until memory runs out.
    pub fn from_env() -> WindowPolicy {
        // detlint: allow(nondet-seam, reason = "reading the env is this constructor's documented contract; it configures memory use, never analysis results")
        let Ok(spec) = std::env::var("BLOCKOPTR_WINDOW") else {
            return WindowPolicy::Unbounded;
        };
        match WindowPolicy::parse(&spec) {
            Ok(policy) => policy,
            Err(err) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    // detlint: allow(no-print, reason = "operator-facing once-per-process warning; silent fallback would hide the lost memory bound")
                    eprintln!(
                        "warning: ignoring BLOCKOPTR_WINDOW={spec:?} ({err}); \
                         sessions will run unbounded"
                    );
                });
                WindowPolicy::Unbounded
            }
        }
    }
}

impl fmt::Display for WindowPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowPolicy::Unbounded => f.write_str("unbounded"),
            WindowPolicy::LastBlocks(n) => write!(f, "last-blocks:{n}"),
            WindowPolicy::LastDuration(d) => write!(f, "last-secs:{}", d.as_secs_f64()),
            WindowPolicy::ExponentialDecay { half_life } => {
                write!(f, "half-life:{}", half_life.as_secs_f64())
            }
        }
    }
}

/// The configured analyzer: cheap to build, cheap to clone, and the only
/// way to open a [`Session`].
///
/// Replaces the paper-era `BlockOptR` struct as the primary entry point;
/// `BlockOptR` survives as a thin wrapper over a one-shot session.
#[derive(Debug, Clone)]
pub struct Analyzer {
    metric_config: MetricConfig,
    thresholds: Thresholds,
    mining: HeuristicsConfig,
    rules: RuleSet,
    auto_tune: bool,
    threads: usize,
    window: WindowPolicy,
}

impl Default for Analyzer {
    /// The paper's defaults. The window policy honours the
    /// `BLOCKOPTR_WINDOW` environment variable (e.g. `last-blocks:64`), so
    /// a deployment — or a CI run exercising the eviction paths — can put
    /// every session behind a sliding window without touching call sites;
    /// unset or malformed means [`WindowPolicy::Unbounded`].
    fn default() -> Self {
        Analyzer {
            metric_config: MetricConfig::default(),
            thresholds: Thresholds::default(),
            mining: HeuristicsConfig::default(),
            rules: RuleSet::default(),
            auto_tune: false,
            threads: pool::default_threads(),
            window: WindowPolicy::from_env(),
        }
    }
}

impl Analyzer {
    /// An analyzer with the paper's default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the metric-derivation knobs (interval size, hotkey threshold).
    pub fn metric_config(mut self, config: MetricConfig) -> Self {
        self.metric_config = config;
        self
    }

    /// Set the recommendation thresholds.
    pub fn thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Set the process-model mining thresholds.
    pub fn mining(mut self, mining: HeuristicsConfig) -> Self {
        self.mining = mining;
        self
    }

    /// Replace the rule registry (default: the paper's nine-rule catalogue,
    /// [`RuleSet::paper`]). Use this to plug in custom
    /// [`Rule`](crate::recommend::rules::Rule)s or a trimmed catalogue;
    /// every snapshot of every session opened from this analyzer evaluates
    /// the registry as configured here.
    pub fn rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Disable a single rule by id (see
    /// [`RuleSet::disable`](crate::recommend::rules::RuleSet::disable)).
    ///
    /// Unlike the raw `RuleSet` API — which remembers unknown ids so a
    /// rule can be disabled before registration — the analyzer lints the
    /// id against its configured registry and rejects unknown ones with
    /// [`AnalyzeError::UnknownRule`]: at this level an unknown id is
    /// almost always a typo that would otherwise silently disable
    /// nothing. Configure the registry ([`Analyzer::rules`]) *before*
    /// disabling custom rules.
    pub fn disable_rule(mut self, id: &str) -> Result<Self, AnalyzeError> {
        self.lint_rule_id(id)?;
        self.rules.disable(id);
        Ok(self)
    }

    /// Evaluate one rule against its own thresholds instead of the
    /// analysis-wide set (see
    /// [`RuleSet::override_thresholds`](crate::recommend::rules::RuleSet::override_thresholds)).
    ///
    /// The id is linted like [`disable_rule`](Self::disable_rule):
    /// unknown ids return [`AnalyzeError::UnknownRule`].
    pub fn rule_thresholds(
        mut self,
        id: &str,
        thresholds: Thresholds,
    ) -> Result<Self, AnalyzeError> {
        self.lint_rule_id(id)?;
        self.rules.override_thresholds(id, thresholds);
        Ok(self)
    }

    /// Error unless `id` names a rule registered on this analyzer.
    fn lint_rule_id(&self, id: &str) -> Result<(), AnalyzeError> {
        if self.rules.ids().contains(&id) {
            Ok(())
        } else {
            Err(AnalyzeError::UnknownRule {
                id: id.to_string(),
                known: self.rules.ids().iter().map(|s| s.to_string()).collect(),
            })
        }
    }

    /// Worker threads sessions opened from this analyzer may use for
    /// ingestion (default: [`pool::default_threads`], which honours
    /// `BLOCKOPTR_THREADS`). With more than one thread, large ingest
    /// batches shard the per-metric trackers across scoped threads — each
    /// tracker still folds the records in commit order, so snapshots are
    /// identical to single-threaded ingestion.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bound the history sessions opened from this analyzer retain (default:
    /// [`WindowPolicy::Unbounded`], or whatever `BLOCKOPTR_WINDOW` names).
    /// Bounded sessions evict at the end of every ingest batch; a windowed
    /// snapshot equals a fresh analysis of only the retained suffix. See
    /// [`WindowPolicy`].
    pub fn window(mut self, window: WindowPolicy) -> Self {
        self.window = window;
        self
    }

    /// Derive deployment-specific thresholds from the observed data instead
    /// of the paper's fixed defaults (folds the `autotune` extension into
    /// the main entry path; the configured [`Thresholds`] still provide
    /// everything auto-tuning does not derive).
    ///
    /// The sustainable-rate scan runs over this analyzer's configured
    /// [`MetricConfig::interval`] buckets. With a non-default interval the
    /// derived thresholds can differ from the standalone
    /// [`auto_tune`](crate::autotune::auto_tune) helper, which always
    /// buckets at 1 s.
    pub fn auto_tune(mut self, enabled: bool) -> Self {
        self.auto_tune = enabled;
        self
    }

    /// Open an empty streaming session.
    pub fn session(&self) -> Result<Session, AnalyzeError> {
        if self.metric_config.interval.as_micros() == 0 {
            return Err(AnalyzeError::ZeroInterval);
        }
        Ok(Session::new(self.clone()))
    }

    /// One-shot: analyze a ledger (errors on an empty ledger).
    pub fn analyze_ledger(&self, ledger: &Ledger) -> Result<Analysis, AnalyzeError> {
        let mut session = self.session()?;
        session.ingest_ledger(ledger);
        session.snapshot().map(Analysis::with_sorted_traces)
    }

    /// One-shot: analyze an already-extracted blockchain log. Unlike the
    /// streaming [`Session::ingest_log`], this accepts records in any
    /// order: they are sorted into commit order first (the trace/model
    /// derivation is defined on commit order).
    pub fn analyze_log(&self, log: BlockchainLog) -> Result<Analysis, AnalyzeError> {
        let mut session = self.session()?;
        session.ingest_log(into_commit_order(log))?;
        session.snapshot().map(Analysis::with_sorted_traces)
    }

    /// One-shot: parse a JSON-exported log and analyze it.
    pub fn analyze_json(&self, json: &str) -> Result<Analysis, AnalyzeError> {
        self.analyze_log(export::from_json(json)?)
    }
}

/// Sort a log's records into strict commit order (the one-shot entry
/// points accept arbitrary record order; streaming ingestion requires
/// commit order and documents it). Duplicate commit indices carry no
/// usable ordering information, so they fall back to positional indices.
pub(crate) fn into_commit_order(log: BlockchainLog) -> BlockchainLog {
    if log
        .records()
        .windows(2)
        .all(|w| w[0].commit_index < w[1].commit_index)
    {
        return log;
    }
    let (mut records, blocks) = log.into_records();
    records.sort_by_key(|r| r.commit_index);
    if records
        .windows(2)
        .any(|w| w[0].commit_index == w[1].commit_index)
    {
        for (i, r) in records.iter_mut().enumerate() {
            r.commit_index = i;
        }
    }
    BlockchainLog::from_records(records, blocks)
}

/// Per-case model state: identifier-family statistics plus the event log
/// and directly-follows graph maintained under the currently winning family.
///
/// All of it is *retractable*: family statistics are occurrence-counted
/// ([`caseid::FamilyValues`]), case ids live in a ring, and each open
/// case's absolute event positions are queued — so sliding-window eviction
/// removes aged-out events **incrementally** (pop the trace head, retract
/// its DFG contribution, restore first-event trace order) instead of
/// re-deriving candidates and rebuilding every structure from the whole
/// retained window per evicting batch. A full rebuild remains only for the
/// rare case where eviction flips the winning family.
#[derive(Debug, Clone, Default)]
struct CaseTracker {
    coverage: BTreeMap<String, usize>,
    distinct: caseid::FamilyValues,
    /// The family the incremental structures below are built for.
    family: String,
    /// Case id per retained record, in commit order (ring: eviction pops
    /// the front).
    case_ids: Arc<std::collections::VecDeque<Option<String>>>,
    /// Absolute stream positions of each open case's retained events —
    /// the front is the trace's first event, which decides trace order.
    positions: BTreeMap<String, std::collections::VecDeque<usize>>,
    case_trace: BTreeMap<String, usize>,
    event_log: Arc<EventLog>,
    dfg: DirectlyFollowsGraph,
}

impl CaseTracker {
    /// Fold one record at absolute stream position `pos`.
    fn observe(&mut self, record: &TxRecord, pos: usize) {
        // Extract the candidate identifiers once; both the family
        // statistics and the case lookup read the same list.
        let cands = caseid::candidates(record);
        caseid::observe_family_candidates(&cands, &mut self.coverage, &mut self.distinct);
        let case = if self.family.is_empty() {
            None
        } else {
            caseid::case_from_candidates(&cands, &self.family)
        };
        self.append(case, &record.activity, pos);
    }

    /// Extend the incremental event log / DFG with one event.
    fn append(&mut self, case: Option<String>, activity: &str, pos: usize) {
        let ids = Arc::make_mut(&mut self.case_ids);
        ids.push_back(case.clone());
        let Some(case) = case else {
            return;
        };
        self.positions
            .entry(case.clone())
            .or_default()
            .push_back(pos);
        match self.case_trace.get(&case) {
            Some(&idx) => {
                let log = Arc::make_mut(&mut self.event_log);
                let trace = log.trace_mut(idx).expect("trace index is valid");
                let prev = trace.activities.last().expect("open traces are non-empty");
                self.dfg.record_trace_extension(prev, activity);
                trace.activities.push(activity.to_string());
            }
            None => {
                let log = Arc::make_mut(&mut self.event_log);
                self.case_trace.insert(case.clone(), log.len());
                log.push(Trace::new(case, vec![activity.to_string()]));
                self.dfg.record_trace_start(activity);
            }
        }
    }

    /// Re-check the winning family; rebuild the incremental structures when
    /// it changed (amortized rare — only while early data is still
    /// ambiguous about the dominant identifier family).
    ///
    /// A cached family whose coverage is still within the batch deriver's
    /// 5 % tie band of the current winner is kept, so two families trading
    /// narrow leads can never force repeated O(records) rebuilds. Within
    /// that band the families are equally valid by the deriver's own
    /// definition; a session may therefore keep a different (equally
    /// covering) family than a fresh batch derivation's tie-break would
    /// pick. Metrics and recommendations do not depend on the family —
    /// only the case/trace view does. The band is at least one record, so
    /// it engages on small logs too (5 % of `total < 20` truncates to 0,
    /// which used to disable the documented tie band exactly in the
    /// small-window regime sliding windows create).
    fn refresh(&mut self, records: &[TxRecord], base: usize) {
        let total = records.len().max(1);
        let winner = caseid::pick_family(&self.coverage, &self.distinct, total)
            .map(|(family, _, _)| family)
            .unwrap_or_default();
        if winner == self.family {
            return;
        }
        if !self.family.is_empty() {
            let band = ((total as f64 * 0.05) as usize).max(1);
            let cached = self.coverage.get(&self.family).copied().unwrap_or(0);
            let won = self.coverage.get(&winner).copied().unwrap_or(0);
            if cached.abs_diff(won) <= band {
                return;
            }
        }
        self.family = winner;
        self.rebuild_structures(records, base);
    }

    /// Retract the evicted prefix from the case state — **incrementally**.
    ///
    /// The family statistics are exact multisets, so the evicted records'
    /// candidates are subtracted and the winner re-picked *without* the
    /// hysteresis band (the windowed view must equal a fresh derivation
    /// over the suffix). Under an unchanged winner, each evicted event
    /// pops its trace's head: the DFG retracts the start/edge
    /// ([`DirectlyFollowsGraph::unrecord_trace_head`]), emptied traces are
    /// dropped, and surviving affected traces are re-sorted to first-event
    /// order — O(evicted · trace-head + traces log traces) per evicting
    /// batch instead of the old full O(window) candidate re-derivation and
    /// structure rebuild. Only a family flip (rare, early-stream) still
    /// rebuilds from the retained records.
    ///
    /// `retained` is the record suffix *after* log eviction; `base` is the
    /// absolute stream position of `retained[0]`.
    fn evict(&mut self, evicted: &[TxRecord], retained: &[TxRecord], base: usize) {
        for record in evicted {
            let cands = caseid::candidates(record);
            caseid::retract_family_candidates(&cands, &mut self.coverage, &mut self.distinct);
        }
        let winner = caseid::pick_family(&self.coverage, &self.distinct, retained.len().max(1))
            .map(|(family, _, _)| family)
            .unwrap_or_default();
        if winner != self.family {
            self.family = winner;
            self.rebuild_structures(retained, base);
            return;
        }

        // Evicted records are a prefix of the stream, so each affected
        // case loses a *prefix* of its trace. Count the losses per case
        // first, then drain each affected trace once — one memmove per
        // trace per batch instead of an O(trace) `remove(0)` per event
        // (which turned single-case-dominated windows quadratic).
        let ids = Arc::make_mut(&mut self.case_ids);
        let mut lost: BTreeMap<String, usize> = BTreeMap::new();
        for _ in evicted {
            let id = ids.pop_front().expect("one case id per evicted record");
            if let Some(case) = id {
                *lost.entry(case).or_insert(0) += 1;
            }
        }
        if lost.is_empty() {
            return;
        }
        for (case, n) in &lost {
            let n = *n;
            let queue = self
                .positions
                .get_mut(case)
                .expect("open case has positions");
            for _ in 0..n {
                queue.pop_front();
            }
            let idx = *self.case_trace.get(case).expect("open case has a trace");
            let log = Arc::make_mut(&mut self.event_log);
            let trace = log.trace_mut(idx).expect("trace index is valid");
            for i in 0..n {
                self.dfg.unrecord_trace_head(
                    &trace.activities[i],
                    trace.activities.get(i + 1).map(String::as_str),
                );
            }
            trace.activities.drain(..n);
            if trace.is_empty() {
                self.positions.remove(case);
            }
        }
        // Compact and reorder: emptied traces vanish, and a surviving
        // trace whose head evicted may now first occur later than other
        // traces' first events — a fresh derivation orders traces by first
        // occurrence in the suffix, so restore that order (stable sort on
        // the mostly-sorted list) and re-derive the case → index map.
        let log = Arc::make_mut(&mut self.event_log);
        log.retain_traces(|t| !t.is_empty());
        let positions = &self.positions;
        log.sort_traces_by_key(|t| {
            positions
                .get(&t.case_id)
                .and_then(|q| q.front().copied())
                .expect("retained traces have positions")
        });
        self.case_trace = log
            .traces()
            .iter()
            .enumerate()
            .map(|(idx, t)| (t.case_id.clone(), idx))
            .collect();
    }

    /// Rebuild the case-id list, event log, and DFG for the current family
    /// (`base` is the absolute stream position of `records[0]`).
    fn rebuild_structures(&mut self, records: &[TxRecord], base: usize) {
        self.case_ids = Arc::new(std::collections::VecDeque::with_capacity(records.len()));
        self.case_trace.clear();
        self.positions.clear();
        self.event_log = Arc::new(EventLog::new());
        self.dfg = DirectlyFollowsGraph::default();
        for (i, record) in records.iter().enumerate() {
            let case = if self.family.is_empty() {
                None
            } else {
                caseid::case_of(record, &self.family)
            };
            self.append(case, &record.activity, base + i);
        }
    }

    /// Fold a later shard's case state into this one (sharded-ingest
    /// merge). `shift` is the offset added to other's absolute stream
    /// positions; `merged_records` is the full retained record slice
    /// *after* the logs were joined, with `merged_records[0]` at absolute
    /// position `base`.
    ///
    /// The family statistics are exact multisets, so they sum; the winning
    /// family is then re-picked *fresh* — no hysteresis band, because a
    /// merged session must equal a **single-batch** ingest of the
    /// concatenated stream and the band is a batch-boundary affordance.
    /// When both shards already maintain structures for that winner, the
    /// event log and DFG merge incrementally: other's trace fragments are
    /// absorbed and each case open in both shards stitches its fragments
    /// ([`DirectlyFollowsGraph::stitch_traces`]) — O(other), not
    /// O(window). A family change rebuilds from the merged records (rare:
    /// shards of one stream almost always agree on the dominant family).
    fn merge(
        &mut self,
        other: &CaseTracker,
        shift: usize,
        merged_records: &[TxRecord],
        base: usize,
    ) {
        for (fam, &n) in &other.coverage {
            *self.coverage.entry(fam.clone()).or_insert(0) += n;
        }
        for (fam, values) in &other.distinct {
            let into = self.distinct.entry(fam.clone()).or_default();
            for (value, &n) in values {
                *into.entry(value.clone()).or_insert(0) += n;
            }
        }
        let winner =
            caseid::pick_family(&self.coverage, &self.distinct, merged_records.len().max(1))
                .map(|(family, _, _)| family)
                .unwrap_or_default();
        if winner != self.family || winner != other.family {
            self.family = winner;
            self.rebuild_structures(merged_records, base);
            return;
        }

        // Same family on both sides: stitch the incremental structures.
        // Other's positions all exceed self's, so self's traces keep their
        // (first-occurrence) order and other-only traces append after them
        // in other's own order — exactly the order a single scan produces.
        self.dfg.absorb(&other.dfg);
        let ids = Arc::make_mut(&mut self.case_ids);
        ids.extend(other.case_ids.iter().cloned());
        for trace in other.event_log.traces() {
            let case = &trace.case_id;
            let queue = other.positions.get(case).expect("open case has positions");
            let shifted = queue.iter().map(|&p| p + shift);
            match self.case_trace.get(case) {
                Some(&idx) => {
                    // The case spans the boundary: append the later
                    // fragment's events and replace the two boundary facts
                    // (other's trace start, self's trace end) with the
                    // joining edge.
                    let log = Arc::make_mut(&mut self.event_log);
                    let open = log.trace_mut(idx).expect("trace index is valid");
                    let tail = open
                        .activities
                        .last()
                        .expect("open traces are non-empty")
                        .clone();
                    let head = trace.activities.first().expect("traces are non-empty");
                    self.dfg.stitch_traces(&tail, head);
                    open.activities.extend(trace.activities.iter().cloned());
                    self.positions
                        .get_mut(case)
                        .expect("open case has positions")
                        .extend(shifted);
                }
                None => {
                    let log = Arc::make_mut(&mut self.event_log);
                    self.case_trace.insert(case.clone(), log.len());
                    log.push(trace.clone());
                    self.positions.insert(case.clone(), shifted.collect());
                }
            }
        }
    }

    /// Rebase every stored absolute stream position by `delta` (merge
    /// adoption path: a later shard's state becomes the merged state
    /// wholesale, and its shard-local positions move onto the global
    /// stream axis). Trace indices are positions into the event log, not
    /// the stream, so `case_trace` is untouched.
    fn shift_positions(&mut self, delta: usize) {
        for queue in self.positions.values_mut() {
            for p in queue.iter_mut() {
                *p += delta;
            }
        }
    }

    fn derivation(&self, total_records: usize) -> CaseDerivation {
        let total = total_records.max(1);
        let covered = self.coverage.get(&self.family).copied().unwrap_or(0);
        CaseDerivation {
            family: self.family.clone(),
            coverage: if self.family.is_empty() {
                0.0
            } else {
                covered as f64 / total as f64
            },
            distinct_cases: self
                .distinct
                .get(&self.family)
                .map(BTreeMap::len)
                .unwrap_or(0),
            case_ids: self.case_ids.clone(),
        }
    }
}

/// Per-tracker state sizes of a [`Session`] (see [`Session::footprint`]).
/// Every field counts live entries in one piece of running state; under a
/// bounded [`WindowPolicy`] all of them are bounded by the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// why: each field is fully described by the struct docs above — "live entries
// in one tracker" — and per-field doc lines would repeat that nine times.
#[allow(missing_docs)]
pub struct SessionFootprint {
    pub records: usize,
    pub rate_intervals: usize,
    pub send_times: usize,
    pub blocks: usize,
    pub endorser_peers: usize,
    pub invoker_clients: usize,
    pub failed_keys: usize,
    pub hotkey_entries: usize,
    pub conflicts: usize,
    pub writer_entries: usize,
    pub activity_entries: usize,
    pub delta_deps: usize,
    pub activity_types: usize,
    pub case_events: usize,
    pub dfg_edges: usize,
    pub families: usize,
}

impl SessionFootprint {
    /// Order-of-magnitude resident-set estimate in bytes: each entry count
    /// weighted by a fixed per-entry cost (struct size plus typical heap
    /// payload — key strings, map nodes). Deterministic by construction
    /// (pure arithmetic over the counts), so sharded-ingest equivalence
    /// tests can compare it byte-for-byte, and the sustained-ingest bench
    /// reports it as `session_footprint_bytes`. Under a bounded
    /// [`WindowPolicy`] it inherits every field's flatness: the estimate is
    /// a linear function of counts that eviction keeps bounded.
    pub fn approx_bytes(&self) -> usize {
        // Weights: mem::size_of of the dominant struct rounded up for its
        // heap parts (e.g. a TxRecord's strings, args, and rwset vectors).
        self.records * 320
            + self.rate_intervals * 8
            + self.send_times * 24
            + self.blocks * 16
            + self.endorser_peers * 32
            + self.invoker_clients * 48
            + self.failed_keys * 48
            + self.hotkey_entries * 48
            + self.conflicts * 160
            + self.writer_entries * 56
            + self.activity_entries * 56
            + self.delta_deps * 40
            + self.activity_types * 64
            + self.case_events * 40
            + self.dfg_edges * 72
            + self.families * 48
    }
}

/// A stateful incremental analysis: feed it blocks, take snapshots.
///
/// All metric state is maintained *running*: each ingested transaction
/// updates interval rate buckets, block sizes, endorser/invoker counters,
/// hot-key counters, the conflict scan, the activity-type histogram, and
/// the directly-follows graph — so [`snapshot`](Session::snapshot) costs
/// O(state), not O(log). Cloning a `Session` forks the analysis (the
/// accumulated log is shared copy-on-write).
#[derive(Debug, Clone)]
pub struct Session {
    config: Analyzer,
    log: Arc<BlockchainLog>,
    last_block: u64,
    /// Records evicted since the session opened (the absolute stream
    /// position of `log.records()[0]`).
    evicted: usize,
    first_send: Option<SimTime>,
    last_commit: Option<SimTime>,
    rates: RateTracker,
    block_sizes: BTreeMap<u64, usize>,
    endorsers: EndorserMetrics,
    invokers: InvokerMetrics,
    keys: KeyMetrics,
    hotkey_index: HotkeyIndex,
    correlation: CorrelationTracker,
    type_hist: ActivityTypeHistogram,
    cases: CaseTracker,
}

impl Session {
    fn new(config: Analyzer) -> Self {
        let rates = RateTracker::new(config.metric_config.interval);
        Session {
            config,
            log: Arc::new(BlockchainLog::default()),
            last_block: 0,
            evicted: 0,
            first_send: None,
            last_commit: None,
            rates,
            block_sizes: BTreeMap::new(),
            endorsers: EndorserMetrics::default(),
            invokers: InvokerMetrics::default(),
            keys: KeyMetrics::default(),
            hotkey_index: HotkeyIndex::default(),
            correlation: CorrelationTracker::default(),
            type_hist: ActivityTypeHistogram::new(),
            cases: CaseTracker::default(),
        }
    }

    /// Transactions currently retained (the window size for bounded
    /// policies; everything ingested for [`WindowPolicy::Unbounded`]).
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Records evicted by the window policy since the session opened.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Whether nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Highest block number ingested (0 before the first block).
    pub fn last_block(&self) -> u64 {
        self.last_block
    }

    /// The accumulated blockchain log (shared; snapshots alias it).
    pub fn log(&self) -> &BlockchainLog {
        &self.log
    }

    /// Ingest one committed block. Returns the number of records added.
    pub fn ingest_block(&mut self, block: &Block) -> usize {
        let first_new = self.log.len();
        let added = Arc::make_mut(&mut self.log).append_block(block, |_| true);
        self.last_block = self.last_block.max(block.number);
        self.observe_from(first_new);
        added
    }

    /// Ingest every block the ledger has appended since the last call
    /// (streaming resume: blocks at or below [`last_block`](Self::last_block)
    /// are skipped). Returns the number of records added.
    ///
    /// All new blocks are appended first and folded as **one** batch, so a
    /// large catch-up (or a one-shot [`Analyzer::analyze_ledger`]) crosses
    /// the parallel-ingest threshold and shards the per-metric trackers
    /// across the analyzer's worker threads.
    pub fn ingest_ledger(&mut self, ledger: &Ledger) -> usize {
        let first_new = self.log.len();
        let mut added = 0;
        let mut last_block = self.last_block;
        {
            let log = Arc::make_mut(&mut self.log);
            for block in ledger.blocks_from(self.last_block + 1) {
                added += log.append_block(block, |_| true);
                last_block = last_block.max(block.number);
            }
        }
        self.last_block = last_block;
        if added > 0 {
            self.observe_from(first_new);
        }
        added
    }

    /// Ingest an already-extracted log window (e.g. replayed from a JSON
    /// export). Records keep their commit indices and must arrive in commit
    /// order, as an export produces them — out-of-order windows are
    /// rejected with [`AnalyzeError::OutOfOrder`] before any state changes.
    /// On a session with a bounded [`WindowPolicy`], block numbers must be
    /// nondecreasing too (every chain-extracted export satisfies this):
    /// block-count eviction is defined on that order, so a renumbered or
    /// hand-merged log is rejected rather than silently evicting the wrong
    /// records. Returns the number of records added.
    pub fn ingest_log(&mut self, window: BlockchainLog) -> Result<usize, AnalyzeError> {
        // Commit indices must be strictly increasing: every producer path
        // (ledger extraction, exports) assigns unique ascending indices, so
        // an equal index can only be a duplicated window — e.g. a retry
        // replaying data the session already holds — which would silently
        // double every metric if accepted.
        let mut last = self.log.records().last().map(|r| r.commit_index);
        let windowed = self.config.window != WindowPolicy::Unbounded;
        let mut last_block = self.log.records().last().map(|r| r.block);
        for record in window.records() {
            if let Some(after) = last {
                if record.commit_index <= after {
                    return Err(AnalyzeError::OutOfOrder {
                        index: record.commit_index,
                        after,
                    });
                }
            }
            last = Some(record.commit_index);
            if windowed {
                if let Some(after) = last_block {
                    if record.block < after {
                        return Err(AnalyzeError::BlockOrder {
                            block: record.block,
                            after,
                        });
                    }
                }
                last_block = Some(record.block);
            }
        }

        let first_new = self.log.len();
        let (records, declared_blocks) = window.into_records();
        let added = records.len();
        // Blocks can span window boundaries; count a window's declared
        // block count only for a fresh session (it is then the source
        // log's own tally, which may include blocks whose transactions
        // were filtered out) and distinct *new* block numbers afterwards,
        // so a block cut across two windows is not counted twice.
        let new_blocks = if first_new == 0 {
            declared_blocks
        } else {
            records
                .iter()
                .map(|r| r.block)
                .filter(|b| !self.block_sizes.contains_key(b))
                .collect::<BTreeSet<u64>>()
                .len()
        };
        {
            let log = Arc::make_mut(&mut self.log);
            for record in records {
                log.push_record(record);
            }
            log.add_blocks(new_blocks);
        }
        self.observe_from(first_new);
        Ok(added)
    }

    /// Batches below this size ingest serially even on a multi-threaded
    /// session: spawning scoped threads costs more than folding a handful
    /// of records.
    const PARALLEL_INGEST_MIN: usize = 256;

    /// Fold every record at position `first_new..` into the running state.
    ///
    /// The per-metric trackers are mutually independent — each reads the
    /// shared record slice and writes only its own state — so a large
    /// batch on a multi-threaded session ([`Analyzer::threads`]) shards
    /// them across scoped threads (one tracker per shard, ROADMAP PR-1
    /// follow-up). Every tracker still consumes the records in commit
    /// order, so the merged state — and therefore every
    /// [`snapshot`](Session::snapshot) — is identical to single-threaded
    /// ingestion.
    fn observe_from(&mut self, first_new: usize) {
        let log = Arc::clone(&self.log);
        let records = log.records();
        if self.config.threads > 1 && records.len() - first_new >= Self::PARALLEL_INGEST_MIN {
            self.observe_from_sharded(records, first_new);
        } else {
            self.observe_from_serial(records, first_new);
        }
        // With a bounded window, retract everything that aged out of it —
        // after the fold so the batch itself decides what is oldest.
        if self.evict_expired() {
            // Eviction already re-picked the family (fresh, no hysteresis)
            // and retracted the evicted events from the case state.
            return;
        }
        // Re-check the winning identifier family once per batch, so the
        // event-log/DFG cache is (re)built here — amortized over ingestion —
        // and snapshots stay O(state).
        self.cases.refresh(records, self.evicted);
    }

    /// Evict every record the window policy no longer covers, retracting
    /// its contribution from all running state. Returns whether anything
    /// was evicted (in which case the case cache was rebuilt over the
    /// retained window).
    ///
    /// Eviction is always a prefix of the retained records: commit
    /// timestamps and (ledger-extracted) block numbers are nondecreasing in
    /// commit order.
    fn evict_expired(&mut self) -> bool {
        if self.log.is_empty() {
            // Nothing ingested yet (e.g. an empty first batch): there is
            // nothing to evict, and the duration policies' last-commit
            // anchor does not exist yet.
            return false;
        }
        // The evictable prefix is found by a linear front scan, not a
        // binary search: the scan's cost is the eviction's own size, and
        // "the maximal prefix of too-old records" stays well-defined even
        // if a caller mixed ingest paths into a non-monotone block/time
        // sequence (where a binary search could return an arbitrary
        // boundary).
        let prefix_while = |too_old: &dyn Fn(&TxRecord) -> bool| {
            self.log.records().iter().take_while(|r| too_old(r)).count()
        };
        let horizon = |d: sim_core::time::SimDuration| {
            let last = self.last_commit.expect("records were ingested");
            prefix_while(&|r| last.since(r.commit_ts) > d)
        };
        let k = match self.config.window {
            WindowPolicy::Unbounded => 0,
            WindowPolicy::LastBlocks(n) => {
                let n = n.max(1);
                if self.block_sizes.len() <= n {
                    0
                } else {
                    // The n-th highest block number that still has records
                    // is the oldest retained block.
                    let cutoff = *self
                        .block_sizes
                        .keys()
                        .rev()
                        .nth(n - 1)
                        .expect("more than n blocks present");
                    prefix_while(&|r| r.block < cutoff)
                }
            }
            WindowPolicy::LastDuration(d) => horizon(d),
            WindowPolicy::ExponentialDecay { half_life } => {
                horizon(half_life.mul(WindowPolicy::DECAY_HORIZON_HALF_LIVES as u64))
            }
        };
        if k == 0 {
            return false;
        }
        debug_assert!(k < self.log.len(), "the newest record is always retained");
        // Copy the evicted prefix out (O(evicted)): every retraction below
        // reads it, and dropping the borrow on the shared log before
        // `Arc::make_mut` lets an uncontended session evict in place —
        // holding a borrowed `Arc::clone` across the mutation forced a
        // full O(window) log copy on every evicting batch.
        let evicted: Vec<TxRecord> = self.log.records()[..k].to_vec();
        let cutoff_commit = self.log.records()[k].commit_index;
        for r in &evicted {
            self.rates.retract(r);
            crate::metrics::decrement(&mut self.block_sizes, &r.block);
            self.endorsers.retract(r);
            self.invokers.retract(r);
            if r.failed() {
                self.keys.retract_failure_indexed(r, &mut self.hotkey_index);
            }
            crate::recommend::retract_activity_type(&mut self.type_hist, &r.activity, r.tx_type);
        }
        self.correlation.evict(&evicted, cutoff_commit);
        self.evicted += k;
        // The log's block tally becomes the distinct blocks the retained
        // records span (windowed sessions count blocks from records).
        let blocks = self.block_sizes.len();
        Arc::make_mut(&mut self.log).evict_front(k, blocks);
        // The evicted prefix may have carried the window's extremes.
        self.first_send = self.rates.first_send();
        let log = Arc::clone(&self.log);
        self.cases.evict(&evicted, log.records(), self.evicted);
        true
    }

    /// The single-threaded fold (also the reference semantics the sharded
    /// path must reproduce exactly).
    fn observe_from_serial(&mut self, records: &[TxRecord], first_new: usize) {
        for (pos, record) in records.iter().enumerate().skip(first_new) {
            self.last_block = self.last_block.max(record.block);
            self.first_send = Some(
                self.first_send
                    .map_or(record.client_ts, |t| t.min(record.client_ts)),
            );
            self.last_commit = Some(
                self.last_commit
                    .map_or(record.commit_ts, |t| t.max(record.commit_ts)),
            );
            self.rates.observe(record);
            *self.block_sizes.entry(record.block).or_insert(0) += 1;
            self.endorsers.observe(record);
            self.invokers.observe(record);
            if record.failed() {
                self.keys
                    .observe_failure_indexed(record, &mut self.hotkey_index);
            }
            self.correlation.observe(records, self.evicted + pos);
            observe_activity_type(&mut self.type_hist, &record.activity, record.tx_type);
            self.cases.observe(record, self.evicted + pos);
        }
    }

    /// The tracker families shard across at most [`Analyzer::threads`]
    /// scoped workers (round-robin, so a given thread budget always runs
    /// the same families together); the window bounds and block sizes fold
    /// on the calling thread. Disjoint `&mut` borrows of the session's
    /// fields make this safe without any locking, and each tracker still
    /// consumes the records in commit order on exactly one thread.
    fn observe_from_sharded(&mut self, records: &[TxRecord], first_new: usize) {
        let new = &records[first_new..];
        for record in new {
            self.last_block = self.last_block.max(record.block);
            self.first_send = Some(
                self.first_send
                    .map_or(record.client_ts, |t| t.min(record.client_ts)),
            );
            self.last_commit = Some(
                self.last_commit
                    .map_or(record.commit_ts, |t| t.max(record.commit_ts)),
            );
            *self.block_sizes.entry(record.block).or_insert(0) += 1;
        }

        let base = self.evicted;
        let rates = &mut self.rates;
        let endorsers = &mut self.endorsers;
        let invokers = &mut self.invokers;
        let keys = &mut self.keys;
        let hotkey_index = &mut self.hotkey_index;
        let correlation = &mut self.correlation;
        let type_hist = &mut self.type_hist;
        let cases = &mut self.cases;
        let shards: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(move || {
                for record in new {
                    rates.observe(record);
                }
            }),
            Box::new(move || {
                for record in new {
                    endorsers.observe(record);
                }
            }),
            Box::new(move || {
                for record in new {
                    invokers.observe(record);
                }
            }),
            Box::new(move || {
                for record in new {
                    if record.failed() {
                        keys.observe_failure_indexed(record, hotkey_index);
                    }
                }
            }),
            Box::new(move || {
                for pos in first_new..records.len() {
                    correlation.observe(records, base + pos);
                }
            }),
            Box::new(move || {
                for (i, record) in new.iter().enumerate() {
                    observe_activity_type(type_hist, &record.activity, record.tx_type);
                    cases.observe(record, base + first_new + i);
                }
            }),
        ];

        let workers = self.config.threads.clamp(1, shards.len());
        let mut buckets: Vec<Vec<Box<dyn FnOnce() + Send + '_>>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, shard) in shards.into_iter().enumerate() {
            buckets[i % workers].push(shard);
        }
        std::thread::scope(|scope| {
            for bucket in buckets {
                // detlint: allow(thread-spawn, reason = "scoped workers borrow &mut tracker shards; results land in the shards themselves so no collection-order exists, and worker count is the session's own threads knob")
                scope.spawn(move || {
                    for shard in bucket {
                        shard();
                    }
                });
            }
        });
    }

    /// The sizes of every piece of running state — the memory-boundedness
    /// witness: under a bounded [`WindowPolicy`] each field stays flat
    /// (bounded by the window's content) no matter how long the session
    /// runs, and equals the footprint of a fresh session fed only the
    /// retained suffix.
    pub fn footprint(&self) -> SessionFootprint {
        let (conflicts, writer_entries, activity_entries, delta_deps) =
            self.correlation.footprint();
        SessionFootprint {
            records: self.log.len(),
            rate_intervals: self.rates.stored_intervals(),
            send_times: self.rates.distinct_send_times(),
            blocks: self.block_sizes.len(),
            endorser_peers: self.endorsers.per_peer.len(),
            invoker_clients: self.invokers.per_client.len(),
            failed_keys: self.keys.kfreq.len(),
            hotkey_entries: self.hotkey_index.tracked_keys(),
            conflicts,
            writer_entries,
            activity_entries,
            delta_deps,
            activity_types: self.type_hist.len(),
            case_events: self.cases.event_log.event_count(),
            dfg_edges: self.cases.dfg.edge_count(),
            families: self.cases.coverage.len(),
        }
    }

    /// The observation window in seconds (first client send → last commit).
    pub fn window_secs(&self) -> f64 {
        match (self.first_send, self.last_commit) {
            (Some(first), Some(last)) => last.since(first).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Materialize an [`Analysis`] from the running state. Errors when
    /// nothing has been ingested.
    ///
    /// Snapshots share the accumulated log, event log, and conflict history
    /// with the session (copy-on-write), so taking one costs O(state) —
    /// intervals, activities, distinct keys — not O(log). The flip side:
    /// a snapshot **retained across a later ingest** forces that ingest to
    /// copy the shared history once before writing. Drop (or finish with)
    /// each window's snapshot before ingesting the next window to keep
    /// ingestion O(new data); retain snapshots deliberately when you want
    /// an immutable point-in-time view and can afford the one-time copy.
    pub fn snapshot(&self) -> Result<Analysis, AnalyzeError> {
        if self.is_empty() {
            return Err(AnalyzeError::EmptyLog);
        }
        Ok(self.snapshot_or_empty())
    }

    /// Like [`snapshot`](Self::snapshot) but tolerates an empty session,
    /// producing an analysis with empty metrics (the paper-era batch API's
    /// behaviour, which the `BlockOptR` wrappers preserve).
    pub fn snapshot_or_empty(&self) -> Analysis {
        let rates = self.rates.snapshot();
        let mut keys = self.keys.clone();
        // O(k + log n) via the incrementally maintained count index —
        // equivalent to (but cheaper than) `keys.select_hotkeys`.
        keys.hotkeys = self
            .hotkey_index
            .select(keys.total_failures, &self.config.metric_config);
        let metrics = Metrics {
            rates,
            block: BlockMetrics::from_sizes(&self.block_sizes),
            endorsers: self.endorsers.clone(),
            invokers: self.invokers.clone(),
            keys,
            correlation: self.correlation.snapshot(),
        };
        let thresholds = if self.config.auto_tune {
            tune_from_rates(&metrics.rates, self.window_secs()).thresholds
        } else {
            self.config.thresholds.clone()
        };
        // The case cache is refreshed at the end of every ingest batch
        // (observe_from), so it is already current here — snapshots are
        // read-only.
        let model = mine_from_dfg(&self.cases.dfg, &self.config.mining);
        let recommendations = self.config.rules.recommendations(&RuleCtx {
            metrics: &metrics,
            thresholds: &thresholds,
            type_hist: &self.type_hist,
            log: Some(&self.log),
        });
        Analysis {
            log: Arc::clone(&self.log),
            case_derivation: self.cases.derivation(self.log.len()),
            event_log: Arc::clone(&self.cases.event_log),
            model,
            metrics,
            thresholds,
            recommendations,
        }
    }

    /// Fold another session's accumulated state into this one — the
    /// session-level **monoid operation** for sharded ingestion: split a
    /// stream across `k` sessions (threads, processes, machines), ingest
    /// each shard independently, and merge the results in any association
    /// order. The merged state is byte-equal — snapshot, footprint, and
    /// eviction counter — to a single session ingesting the concatenated
    /// stream in **one batch** (the same reference the sharded
    /// `observe_from` path reproduces). The empty session is the identity.
    ///
    /// `other` must hold the records that *follow* self's stream:
    /// commit indices must continue strictly above self's
    /// ([`AnalyzeError::OutOfOrder`] otherwise), and on a bounded
    /// [`WindowPolicy`] block numbers must not decrease across the
    /// boundary ([`AnalyzeError::BlockOrder`]). Both sessions must agree
    /// on the metric interval and window policy
    /// ([`AnalyzeError::MergeMismatch`]); the receiver's remaining
    /// configuration (thresholds, rules, auto-tuning) wins.
    ///
    /// Cost: O(|other| + merged tracker state), never O(self's window) —
    /// every tracker merges by summation, the conflict scan resolves only
    /// boundary-crossing pairs, and case traces stitch incrementally
    /// unless the winning identifier family changes (rare). One
    /// deliberate semantic difference from batch-by-batch streaming: the
    /// identifier family is re-picked *fresh* on merge (no hysteresis
    /// band), because the reference is a single-batch ingest.
    ///
    /// With a bounded window, merging re-evicts: if `other` already
    /// evicted records, everything in `self` is older than other's
    /// eviction cutoff (block numbers and commit timestamps are
    /// nondecreasing across the validated boundary), so the serial
    /// reference would have evicted all of it — the merge adopts other's
    /// state wholesale, rebased onto the global stream axis.
    pub fn merge(&mut self, other: Session) -> Result<(), AnalyzeError> {
        let a = self.config.metric_config.interval;
        let b = other.config.metric_config.interval;
        if a.as_micros() != b.as_micros() {
            return Err(AnalyzeError::MergeMismatch(format!(
                "metric intervals differ ({} µs vs {} µs)",
                a.as_micros(),
                b.as_micros()
            )));
        }
        if self.config.window != other.config.window {
            return Err(AnalyzeError::MergeMismatch(format!(
                "window policies differ ({} vs {})",
                self.config.window, other.config.window
            )));
        }
        // Identity: nothing to fold in.
        if other.is_empty() && other.evicted == 0 {
            return Ok(());
        }
        // Stream-order validation across the boundary, before any state
        // changes (mirrors ingest_log).
        if let (Some(after), Some(index)) = (
            self.log.records().last().map(|r| r.commit_index),
            other.log.records().first().map(|r| r.commit_index),
        ) {
            if index <= after {
                return Err(AnalyzeError::OutOfOrder { index, after });
            }
        }
        if self.config.window != WindowPolicy::Unbounded {
            if let (Some(after), Some(block)) = (
                self.log.records().last().map(|r| r.block),
                other.log.records().first().map(|r| r.block),
            ) {
                if block < after {
                    return Err(AnalyzeError::BlockOrder { block, after });
                }
            }
        }
        // Adoption: a fresh receiver takes other's state wholesale (the
        // receiver's configuration wins — the checked fields are equal and
        // nothing else is baked into tracker state).
        if self.is_empty() && self.evicted == 0 {
            let config = self.config.clone();
            *self = other;
            self.config = config;
            return Ok(());
        }
        let shift = self.evicted + self.log.len();
        // Adoption, windowed: other already evicted, so its cutoff —
        // computed from the stream's tail, which other holds — lies above
        // everything self ever ingested (nondecreasing blocks and commit
        // timestamps across the validated boundary). The serial reference
        // would therefore have evicted all of self; adopt other's state
        // rebased onto the global position axis.
        if other.evicted > 0 {
            let config = self.config.clone();
            let prior = shift;
            *self = other;
            self.config = config;
            self.evicted += prior;
            self.correlation.shift_positions(prior);
            self.cases.shift_positions(prior);
            // Idempotent safety pass (a no-op: other evicted at its final
            // batch boundary, and the cutoff only depends on the tail).
            self.evict_expired();
            return Ok(());
        }

        // Main path: other never evicted, so its trackers are exactly the
        // monoid elements of its record multiset. The boundary-crossing
        // conflict scan needs self's record slice *before* the logs join.
        self.correlation.merge(
            &other.correlation,
            self.log.records(),
            other.log.records(),
            shift,
        );
        self.rates.merge(&other.rates);
        // Distinct new blocks must be counted before the per-block sizes
        // merge (a block cut across the shard boundary is not re-counted).
        let new_blocks = other
            .block_sizes
            .keys()
            .filter(|b| !self.block_sizes.contains_key(b))
            .count();
        BlockMetrics::merge_sizes(&mut self.block_sizes, &other.block_sizes);
        self.endorsers.merge(&other.endorsers);
        self.invokers.merge(&other.invokers);
        self.keys.merge(&other.keys);
        // The count index is derivable state; rebuilding it from the merged
        // frequencies equals maintaining it incrementally.
        self.hotkey_index = HotkeyIndex::rebuild_from(&self.keys.kfreq);
        crate::recommend::merge_activity_type_histograms(&mut self.type_hist, &other.type_hist);
        self.last_block = self.last_block.max(other.last_block);
        self.first_send = match (self.first_send, other.first_send) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_commit = match (self.last_commit, other.last_commit) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        {
            let log = Arc::make_mut(&mut self.log);
            let other_log = Arc::try_unwrap(other.log).unwrap_or_else(|arc| (*arc).clone());
            let (records, _declared) = other_log.into_records();
            for record in records {
                log.push_record(record);
            }
            log.add_blocks(new_blocks);
        }
        let log = Arc::clone(&self.log);
        self.cases
            .merge(&other.cases, shift, log.records(), self.evicted);
        // With a bounded window the merged batch decides what aged out —
        // exactly like the end of an ingest batch.
        self.evict_expired();
        Ok(())
    }

    /// Detach a mergeable point-in-time copy of the current state (cheap:
    /// the log, conflict history, and case structures are shared
    /// copy-on-write). The session keeps ingesting; the [`Snapshot`] can be
    /// shipped elsewhere and folded with others via [`Snapshot::merge`].
    pub fn detach(&self) -> Snapshot {
        Snapshot {
            session: self.clone(),
        }
    }
}

/// A detached, mergeable copy of a [`Session`]'s accumulated state — the
/// monoid surface of the analysis pipeline for shard-and-fold ingestion.
///
/// Not to be confused with [`Session::snapshot`], which materializes an
/// [`Analysis`] (the derived metrics); a `Snapshot` carries the raw running
/// state so it can still be **merged**. Split a stream across sessions,
/// [`detach`](Session::detach) each, fold them with [`Snapshot::merge`] in
/// any association order, and the result is byte-equal to one session
/// ingesting the whole stream in a single batch.
#[derive(Debug, Clone)]
pub struct Snapshot {
    session: Session,
}

impl Snapshot {
    /// Fold another snapshot into this one (see [`Session::merge`] for the
    /// ordering/compatibility contract and the equivalence guarantee).
    pub fn merge(&mut self, other: Snapshot) -> Result<(), AnalyzeError> {
        self.session.merge(other.session)
    }

    /// Materialize the derived [`Analysis`] (errors when empty).
    pub fn analysis(&self) -> Result<Analysis, AnalyzeError> {
        self.session.snapshot()
    }

    /// Per-tracker state sizes (see [`Session::footprint`]).
    pub fn footprint(&self) -> SessionFootprint {
        self.session.footprint()
    }

    /// Turn the snapshot back into a live session (e.g. to keep ingesting
    /// after a fold).
    pub fn into_session(self) -> Session {
        self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::test_support::{log_of, Rec};
    use crate::pipeline::BlockOptR;
    use fabric_sim::ledger::TxStatus;
    use workload::spec::ControlVariables;

    fn small_output() -> fabric_sim::sim::SimOutput {
        let cv = ControlVariables {
            transactions: 2_000,
            ..Default::default()
        };
        workload::synthetic::generate(&cv).run(cv.network_config())
    }

    /// The tentpole invariant: feeding a ledger block-by-block through a
    /// session yields the same analysis as the one-shot batch path.
    #[test]
    fn incremental_snapshot_matches_batch_analysis() {
        let output = small_output();
        let batch = BlockOptR::new().analyze_ledger(&output.ledger);

        let mut session = Analyzer::new().session().unwrap();
        for block in output.ledger.blocks() {
            session.ingest_block(block);
        }
        let streamed = session.snapshot().unwrap();

        assert_eq!(streamed.log.len(), batch.log.len());
        assert_eq!(streamed.metrics.rates.tr, batch.metrics.rates.tr);
        assert_eq!(streamed.metrics.rates.tfr, batch.metrics.rates.tfr);
        assert_eq!(
            streamed.metrics.rates.tx_per_interval,
            batch.metrics.rates.tx_per_interval
        );
        assert_eq!(
            streamed.metrics.rates.failures_per_interval,
            batch.metrics.rates.failures_per_interval
        );
        assert_eq!(
            streamed.metrics.block.avg_block_size,
            batch.metrics.block.avg_block_size
        );
        assert_eq!(streamed.metrics.block.blocks, batch.metrics.block.blocks);
        assert_eq!(
            streamed.metrics.endorsers.per_org,
            batch.metrics.endorsers.per_org
        );
        assert_eq!(
            streamed.metrics.invokers.per_org,
            batch.metrics.invokers.per_org
        );
        assert_eq!(streamed.metrics.keys.kfreq, batch.metrics.keys.kfreq);
        assert_eq!(streamed.metrics.keys.hotkeys, batch.metrics.keys.hotkeys);
        assert_eq!(
            streamed.metrics.correlation.read_conflicts,
            batch.metrics.correlation.read_conflicts
        );
        assert_eq!(
            streamed.metrics.correlation.identified,
            batch.metrics.correlation.identified
        );
        assert_eq!(
            streamed.metrics.correlation.reorderable,
            batch.metrics.correlation.reorderable
        );
        assert_eq!(
            streamed.metrics.correlation.mean_distance,
            batch.metrics.correlation.mean_distance
        );
        assert_eq!(
            streamed.case_derivation.family,
            batch.case_derivation.family
        );
        assert_eq!(
            streamed.case_derivation.distinct_cases,
            batch.case_derivation.distinct_cases
        );
        assert_eq!(
            streamed.case_derivation.case_ids,
            batch.case_derivation.case_ids
        );
        assert_eq!(streamed.event_log.len(), batch.event_log.len());
        assert_eq!(
            streamed.event_log.event_count(),
            batch.event_log.event_count()
        );
        assert_eq!(streamed.model.edges, batch.model.edges);
        assert_eq!(streamed.model.starts, batch.model.starts);
        assert_eq!(
            streamed.recommendation_names(),
            batch.recommendation_names()
        );
    }

    /// Snapshots between ingests must agree with a batch run over the same
    /// prefix, and the final state must not depend on window boundaries.
    #[test]
    fn mid_stream_snapshots_are_prefix_analyses() {
        let output = small_output();
        let blocks = output.ledger.blocks();
        let mut session = Analyzer::new().session().unwrap();
        let mut prefix = fabric_sim::ledger::Ledger::new();
        for (i, block) in blocks.iter().enumerate() {
            session.ingest_block(block);
            prefix.append(block.clone());
            if i % 7 == 0 {
                let streamed = session.snapshot().unwrap();
                let batch = BlockOptR::new().analyze_ledger(&prefix);
                assert_eq!(streamed.metrics.rates.total, batch.metrics.rates.total);
                assert_eq!(
                    streamed.metrics.correlation.identified,
                    batch.metrics.correlation.identified
                );
                assert_eq!(
                    streamed.recommendation_names(),
                    batch.recommendation_names()
                );
            }
        }
    }

    #[test]
    fn ingest_ledger_resumes_after_last_block() {
        let output = small_output();
        let mut session = Analyzer::new().session().unwrap();
        let first = session.ingest_ledger(&output.ledger);
        assert_eq!(first, output.report.committed);
        // Re-ingesting the same ledger adds nothing.
        assert_eq!(session.ingest_ledger(&output.ledger), 0);
        assert_eq!(session.len(), output.report.committed);
        assert_eq!(
            session.last_block(),
            output.ledger.blocks().last().unwrap().number
        );
    }

    #[test]
    fn empty_session_snapshot_errors() {
        let session = Analyzer::new().session().unwrap();
        assert_eq!(session.snapshot().unwrap_err(), AnalyzeError::EmptyLog);
        let analysis = session.snapshot_or_empty();
        assert!(analysis.recommendations.is_empty());
        assert_eq!(analysis.log.len(), 0);
    }

    /// The parallel-ingest equivalence guarantee: sharding the per-metric
    /// trackers across threads produces a snapshot identical to the
    /// single-threaded fold over the same ledger.
    #[test]
    fn sharded_ingest_matches_serial_observe() {
        let output = small_output();
        // Serial reference: one thread, whole ledger.
        let mut serial = Analyzer::new().threads(1).session().unwrap();
        serial.ingest_ledger(&output.ledger);
        let a = serial.snapshot().unwrap();
        // Sharded: four threads, same ledger in one batch (2 000 records,
        // far above the parallel-ingest threshold).
        let mut sharded = Analyzer::new().threads(4).session().unwrap();
        sharded.ingest_ledger(&output.ledger);
        let b = sharded.snapshot().unwrap();

        assert_eq!(a.log.len(), b.log.len());
        assert_eq!(
            a.metrics.rates.tx_per_interval,
            b.metrics.rates.tx_per_interval
        );
        assert_eq!(
            a.metrics.rates.failures_per_interval,
            b.metrics.rates.failures_per_interval
        );
        assert_eq!(
            a.metrics.block.avg_block_size,
            b.metrics.block.avg_block_size
        );
        assert_eq!(a.metrics.endorsers.per_org, b.metrics.endorsers.per_org);
        assert_eq!(a.metrics.invokers.per_org, b.metrics.invokers.per_org);
        assert_eq!(a.metrics.keys.kfreq, b.metrics.keys.kfreq);
        assert_eq!(a.metrics.keys.hotkeys, b.metrics.keys.hotkeys);
        assert_eq!(
            a.metrics.correlation.read_conflicts,
            b.metrics.correlation.read_conflicts
        );
        assert_eq!(
            a.metrics.correlation.mean_distance,
            b.metrics.correlation.mean_distance
        );
        assert_eq!(a.case_derivation.family, b.case_derivation.family);
        assert_eq!(a.case_derivation.case_ids, b.case_derivation.case_ids);
        assert_eq!(a.event_log.len(), b.event_log.len());
        assert_eq!(a.model.edges, b.model.edges);
        assert_eq!(a.recommendation_names(), b.recommendation_names());
    }

    /// A sharded whole-ledger ingest must also equal the block-by-block
    /// streaming fold (`observe_from` per block never crosses the
    /// threshold, so it is always the serial reference).
    #[test]
    fn sharded_ledger_ingest_matches_blockwise_streaming() {
        let output = small_output();
        let mut blockwise = Analyzer::new().threads(1).session().unwrap();
        for block in output.ledger.blocks() {
            blockwise.ingest_block(block);
        }
        let a = blockwise.snapshot().unwrap();
        let mut sharded = Analyzer::new().threads(4).session().unwrap();
        sharded.ingest_ledger(&output.ledger);
        let b = sharded.snapshot().unwrap();
        assert_eq!(
            a.metrics.rates.tx_per_interval,
            b.metrics.rates.tx_per_interval
        );
        assert_eq!(a.metrics.keys.hotkeys, b.metrics.keys.hotkeys);
        assert_eq!(
            a.metrics.correlation.identified,
            b.metrics.correlation.identified
        );
        assert_eq!(a.recommendation_names(), b.recommendation_names());
        assert_eq!(a.log.block_count(), b.log.block_count());
    }

    #[test]
    fn unknown_rule_ids_are_rejected() {
        let err = Analyzer::new()
            .disable_rule("actvity-reordering")
            .unwrap_err();
        match &err {
            AnalyzeError::UnknownRule { id, known } => {
                assert_eq!(id, "actvity-reordering");
                assert!(
                    known.iter().any(|k| k == "activity-reordering"),
                    "{known:?}"
                );
            }
            other => panic!("expected UnknownRule, got {other:?}"),
        }
        assert!(err.to_string().contains("unknown rule id"));
        // Threshold overrides lint the same way.
        let err = Analyzer::new()
            .rule_thresholds("not-a-rule", Thresholds::default())
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::UnknownRule { .. }));
        // Valid ids still work, including for custom registries configured
        // first.
        let tuned = Analyzer::new()
            .disable_rule("activity-reordering")
            .unwrap()
            .rule_thresholds("block-size-adaptation", Thresholds::default())
            .unwrap();
        let output = small_output();
        let analysis = tuned.analyze_ledger(&output.ledger).unwrap();
        assert!(analysis
            .recommendation_names()
            .iter()
            .all(|n| *n != "Activity reordering"));
    }

    #[test]
    fn zero_interval_is_rejected() {
        let config = MetricConfig {
            interval: sim_core::time::SimDuration::from_micros(0),
            ..Default::default()
        };
        let err = Analyzer::new().metric_config(config).session().unwrap_err();
        assert_eq!(err, AnalyzeError::ZeroInterval);
    }

    #[test]
    fn analyze_json_surfaces_parse_errors() {
        let err = Analyzer::new()
            .analyze_json("{definitely not json")
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::Json(_)), "{err:?}");
        assert!(err.to_string().contains("malformed log JSON"));
    }

    #[test]
    fn analyze_log_round_trips_through_json() {
        let log = log_of(vec![
            Rec::new(0, "writer").writes(&["k"]).build(),
            Rec::new(1, "reader")
                .reads(&["k"])
                .status(TxStatus::MvccReadConflict)
                .build(),
        ]);
        let json = export::to_json(&log);
        let analysis = Analyzer::new().analyze_json(&json).unwrap();
        assert_eq!(analysis.log.len(), 2);
        assert_eq!(analysis.metrics.correlation.read_conflicts, 1);
    }

    #[test]
    fn auto_tune_folds_into_snapshot() {
        let output = small_output();
        let log = BlockchainLog::from_ledger(&output.ledger);
        let expected = crate::autotune::auto_tune(&log).thresholds;
        let analysis = Analyzer::new()
            .auto_tune(true)
            .analyze_ledger(&output.ledger)
            .unwrap();
        assert_eq!(analysis.thresholds, expected);
        let untuned = Analyzer::new().analyze_ledger(&output.ledger).unwrap();
        assert_eq!(untuned.thresholds, Thresholds::default());
    }

    #[test]
    fn ingest_log_windows_match_whole_log() {
        let output = small_output();
        let log = BlockchainLog::from_ledger(&output.ledger);
        let batch = BlockOptR::new().analyze_log(log.clone());

        // Split the records into three arbitrary windows.
        let records = log.records();
        let third = records.len() / 3;
        let mut session = Analyzer::new().session().unwrap();
        for chunk in [
            &records[..third],
            &records[third..2 * third],
            &records[2 * third..],
        ] {
            let blocks: BTreeSet<u64> = chunk.iter().map(|r| r.block).collect();
            session
                .ingest_log(BlockchainLog::from_records(chunk.to_vec(), blocks.len()))
                .unwrap();
        }
        let streamed = session.snapshot().unwrap();
        assert_eq!(streamed.metrics.rates.total, batch.metrics.rates.total);
        assert_eq!(
            streamed.metrics.correlation.identified,
            batch.metrics.correlation.identified
        );
        assert_eq!(
            streamed.recommendation_names(),
            batch.recommendation_names()
        );
        // Blocks cut across window boundaries must not be counted twice.
        assert_eq!(streamed.log.block_count(), batch.log.block_count());
        assert_eq!(streamed.metrics.block.blocks, batch.metrics.block.blocks);
    }

    #[test]
    fn out_of_order_windows_are_rejected() {
        let early = log_of(vec![Rec::new(0, "a").build(), Rec::new(1, "a").build()]);
        let late = log_of(vec![Rec::new(7, "a").build()]);
        let mut session = Analyzer::new().session().unwrap();
        session.ingest_log(late.clone()).unwrap();
        let err = session.ingest_log(early.clone()).unwrap_err();
        assert_eq!(err, AnalyzeError::OutOfOrder { index: 0, after: 7 });
        // Nothing was ingested by the failed call.
        assert_eq!(session.len(), 1);
        // A shuffled window is rejected before mutating anything, too.
        let mut fresh = Analyzer::new().session().unwrap();
        let shuffled = BlockchainLog::from_records(
            vec![Rec::new(3, "a").build(), Rec::new(1, "a").build()],
            1,
        );
        assert!(matches!(
            fresh.ingest_log(shuffled).unwrap_err(),
            AnalyzeError::OutOfOrder { index: 1, after: 3 }
        ));
        assert!(fresh.is_empty());
        // The one-shot entry point sorts instead of rejecting.
        let analysis = Analyzer::new()
            .analyze_log(BlockchainLog::from_records(
                vec![Rec::new(3, "a").build(), Rec::new(1, "a").build()],
                1,
            ))
            .unwrap();
        assert_eq!(analysis.log.records()[0].commit_index, 1);
    }

    #[test]
    fn replaying_the_same_window_is_rejected() {
        let window = log_of(vec![Rec::new(0, "a").build(), Rec::new(1, "a").build()]);
        let mut session = Analyzer::new().session().unwrap();
        session.ingest_log(window.clone()).unwrap();
        // A retry that replays already-ingested data must not double the
        // metrics.
        let err = session.ingest_log(window).unwrap_err();
        assert_eq!(err, AnalyzeError::OutOfOrder { index: 0, after: 1 });
        assert_eq!(session.len(), 2);
    }

    #[test]
    fn blocks_after_sparse_log_keep_indices_monotone() {
        // Caller-indexed records followed by live blocks: commit indices
        // continue above the sparse indices, so conflict distances stay
        // well-defined (no underflow).
        let sparse = log_of(vec![
            Rec::new(5, "writer").writes(&["k"]).build(),
            Rec::new(17, "writer").writes(&["k"]).build(),
        ]);
        let mut session = Analyzer::new().session().unwrap();
        session.ingest_log(sparse).unwrap();

        let output = small_output();
        session.ingest_block(&output.ledger.blocks()[0]);
        let records = session.log().records();
        assert!(records
            .windows(2)
            .all(|w| w[0].commit_index < w[1].commit_index));
        assert_eq!(records[2].commit_index, 18);
        // Snapshot stays well-formed.
        let analysis = session.snapshot().unwrap();
        assert!(analysis.metrics.correlation.mean_distance >= 0.0);
    }

    #[test]
    fn wrapper_preserves_caller_commit_indices() {
        // Pre-indexed logs (e.g. a filtered slice of an export) must keep
        // their commit indices: conflict distances are defined on them.
        let log = log_of(vec![
            Rec::new(5, "writer").writes(&["k"]).build(),
            Rec::new(17, "reader")
                .reads(&["k"])
                .status(TxStatus::MvccReadConflict)
                .build(),
        ]);
        let analysis = BlockOptR::new().analyze_log(log);
        assert_eq!(analysis.log.records()[0].commit_index, 5);
        assert_eq!(analysis.log.records()[1].commit_index, 17);
        let conflict = &analysis.metrics.correlation.conflicts[0];
        assert_eq!(conflict.failed_index, 17);
        assert_eq!(conflict.writer_index, 5);
        assert_eq!(conflict.distance, 12);
    }

    /// The windowed suffix of a full log: the records of the `n` highest
    /// block numbers, with their original commit indices.
    fn last_blocks_suffix(log: &BlockchainLog, n: usize) -> BlockchainLog {
        let blocks: BTreeSet<u64> = log.records().iter().map(|r| r.block).collect();
        let cutoff = *blocks.iter().rev().nth(n - 1).expect("more than n blocks");
        let suffix: Vec<_> = log
            .records()
            .iter()
            .filter(|r| r.block >= cutoff)
            .cloned()
            .collect();
        let distinct: BTreeSet<u64> = suffix.iter().map(|r| r.block).collect();
        let count = distinct.len();
        BlockchainLog::from_records(suffix, count)
    }

    /// The tentpole invariant: a long-running windowed session's snapshot
    /// is identical — metrics, conflicts, case derivation, model, and
    /// recommendations — to a fresh analysis of only the retained suffix.
    #[test]
    fn windowed_snapshot_equals_fresh_suffix_analysis() {
        let output = small_output();
        let n = 4;
        let mut windowed = Analyzer::new()
            .window(WindowPolicy::LastBlocks(n))
            .session()
            .unwrap();
        for block in output.ledger.blocks() {
            windowed.ingest_block(block);
        }
        assert!(
            windowed.evicted() > 0,
            "the ledger spans more than n blocks"
        );
        let streamed = windowed.snapshot().unwrap();

        let full = BlockchainLog::from_ledger(&output.ledger);
        let mut fresh = Analyzer::new().session().unwrap();
        fresh.ingest_log(last_blocks_suffix(&full, n)).unwrap();
        let batch = fresh.snapshot().unwrap();

        assert_eq!(format!("{streamed:?}"), format!("{batch:?}"));
        assert_eq!(windowed.footprint(), fresh.footprint());
    }

    /// Memory-boundedness: with `LastBlocks(n)`, every tracker's state size
    /// stays flat while the session ingests ≥ 10× n blocks — each
    /// footprint field never exceeds its running maximum over the first
    /// few windows, and the final footprint equals a fresh session's over
    /// the suffix.
    #[test]
    fn windowed_state_stays_flat_over_ten_windows() {
        let n = 3;
        let cv = ControlVariables {
            transactions: 4_000,
            // Uniform count-cut blocks, so "flat" is a sharp assertion:
            // the window's content does not drift over the run.
            block_count: 25,
            ..Default::default()
        };
        let output = workload::synthetic::generate(&cv).run(cv.network_config());
        let blocks = output.ledger.blocks();
        assert!(
            blocks.len() >= 10 * n,
            "need ≥ 10 windows, got {}",
            blocks.len()
        );

        let mut session = Analyzer::new()
            .window(WindowPolicy::LastBlocks(n))
            .session()
            .unwrap();
        let mut prefix = fabric_sim::ledger::Ledger::new();
        let mut peak_window = 0usize;
        for (i, block) in blocks.iter().enumerate() {
            session.ingest_block(block);
            prefix.append(block.clone());
            let window_blocks = &blocks[i.saturating_sub(n - 1)..=i];
            let window_records: usize = window_blocks
                .iter()
                .map(fabric_sim::ledger::Block::len)
                .sum();
            // Every tracker entry is attributable to a record or one of its
            // key accesses, so the window's own content is a hard cap.
            let window_slots: usize = window_records
                + window_blocks
                    .iter()
                    .flat_map(|b| &b.txs)
                    .map(|tx| tx.rwset.all_keys().len())
                    .sum::<usize>();
            peak_window = peak_window.max(window_records);
            let fp = session.footprint();
            assert!(
                fp.records <= window_records,
                "retained more than the window"
            );
            for (name, v) in [
                ("failed_keys", fp.failed_keys),
                ("hotkey_entries", fp.hotkey_entries),
                ("conflicts", fp.conflicts),
                ("writer_entries", fp.writer_entries),
                ("activity_entries", fp.activity_entries),
                ("delta_deps", fp.delta_deps),
                ("case_events", fp.case_events),
                ("send_times", fp.send_times),
            ] {
                assert!(
                    v <= window_slots,
                    "{name} = {v} exceeds the window's content ({window_records} records, \
                     {window_slots} slots) after block {i} — state is leaking past eviction"
                );
            }
            assert!(fp.blocks <= n);
            // The strongest flatness statement: at checkpoints, the whole
            // footprint equals that of a fresh session which never saw
            // anything but the current window — so nothing from the other
            // 10× n blocks lingers anywhere.
            if i >= n && i % 17 == 0 {
                let full = BlockchainLog::from_ledger(&prefix);
                let mut fresh = Analyzer::new().session().unwrap();
                fresh.ingest_log(last_blocks_suffix(&full, n)).unwrap();
                assert_eq!(fp, fresh.footprint(), "after block {i}");
            }
        }
        assert_eq!(session.footprint().blocks, n);
        assert!(session.len() <= peak_window);
        assert!(session.evicted() > session.len() * 5, "evicted the bulk");

        // And the end state is exactly a fresh session over the suffix.
        let full = BlockchainLog::from_ledger(&output.ledger);
        let mut fresh = Analyzer::new().session().unwrap();
        fresh.ingest_log(last_blocks_suffix(&full, n)).unwrap();
        assert_eq!(session.footprint(), fresh.footprint());
        assert_eq!(
            format!("{:?}", session.snapshot().unwrap()),
            format!("{:?}", fresh.snapshot().unwrap())
        );
    }

    /// Sharded (multi-threaded) ingest under eviction must match the
    /// serial fold exactly.
    #[test]
    fn sharded_windowed_ingest_matches_serial() {
        let output = small_output();
        let policy = WindowPolicy::LastBlocks(6);
        let mut serial = Analyzer::new().threads(1).window(policy).session().unwrap();
        serial.ingest_ledger(&output.ledger);
        let mut sharded = Analyzer::new().threads(4).window(policy).session().unwrap();
        sharded.ingest_ledger(&output.ledger);
        assert_eq!(serial.evicted(), sharded.evicted());
        assert_eq!(serial.footprint(), sharded.footprint());
        assert_eq!(
            format!("{:?}", serial.snapshot().unwrap()),
            format!("{:?}", sharded.snapshot().unwrap())
        );
    }

    /// Duration-based policies evict by commit-timestamp age; the decay
    /// policy is the same mechanism at 10 half-lives.
    #[test]
    fn duration_and_decay_policies_evict_by_age() {
        let output = small_output();
        let full = BlockchainLog::from_ledger(&output.ledger);
        let span = full.window_secs();
        assert!(span > 0.0);
        let keep = sim_core::time::SimDuration::from_secs_f64(span / 4.0);
        let mut session = Analyzer::new()
            .window(WindowPolicy::LastDuration(keep))
            .session()
            .unwrap();
        for block in output.ledger.blocks() {
            session.ingest_block(block);
        }
        assert!(session.evicted() > 0);
        let last = session
            .log()
            .records()
            .iter()
            .map(|r| r.commit_ts)
            .max()
            .unwrap();
        for r in session.log().records() {
            assert!(last.since(r.commit_ts) <= keep, "record older than window");
        }
        // Decay with half-life h evicts at 10·h.
        let half_life = sim_core::time::SimDuration::from_secs_f64(span / 40.0);
        let mut decayed = Analyzer::new()
            .window(WindowPolicy::ExponentialDecay { half_life })
            .session()
            .unwrap();
        for block in output.ledger.blocks() {
            decayed.ingest_block(block);
        }
        let horizon = half_life.mul(WindowPolicy::DECAY_HORIZON_HALF_LIVES as u64);
        for r in decayed.log().records() {
            assert!(last.since(r.commit_ts) <= horizon);
        }
        assert!(decayed.evicted() > 0);
    }

    /// Windowed sessions reject replay logs whose block numbers decrease
    /// (block-count eviction is defined on nondecreasing blocks);
    /// unbounded sessions keep accepting them.
    #[test]
    fn windowed_ingest_rejects_decreasing_block_numbers() {
        let bad = BlockchainLog::from_records(
            vec![
                Rec::new(0, "a").block(5).build(),
                Rec::new(1, "a").block(3).build(),
            ],
            2,
        );
        let mut windowed = Analyzer::new()
            .window(WindowPolicy::LastBlocks(2))
            .session()
            .unwrap();
        let err = windowed.ingest_log(bad.clone()).unwrap_err();
        assert_eq!(err, AnalyzeError::BlockOrder { block: 3, after: 5 });
        assert!(err.to_string().contains("block numbers decrease"));
        assert!(windowed.is_empty(), "rejected before any state changed");
        // Across batches too.
        let mut windowed = Analyzer::new()
            .window(WindowPolicy::LastBlocks(2))
            .session()
            .unwrap();
        windowed
            .ingest_log(log_of(vec![Rec::new(0, "a").block(5).build()]))
            .unwrap();
        assert!(matches!(
            windowed
                .ingest_log(log_of(vec![Rec::new(1, "a").block(4).build()]))
                .unwrap_err(),
            AnalyzeError::BlockOrder { block: 4, after: 5 }
        ));
        // Unbounded sessions are unaffected (pre-existing behaviour).
        let mut unbounded = Analyzer::new().session().unwrap();
        assert_eq!(unbounded.ingest_log(bad).unwrap(), 2);
    }

    /// Regression: an empty first batch on a duration/decay-windowed
    /// session must be a no-op, not a panic on the missing last-commit
    /// anchor.
    #[test]
    fn empty_batches_on_windowed_sessions_are_noops() {
        for policy in [
            WindowPolicy::LastDuration(sim_core::time::SimDuration::from_secs(1)),
            WindowPolicy::ExponentialDecay {
                half_life: sim_core::time::SimDuration::from_secs(1),
            },
            WindowPolicy::LastBlocks(2),
        ] {
            let mut session = Analyzer::new().window(policy).session().unwrap();
            assert_eq!(session.ingest_log(BlockchainLog::default()).unwrap(), 0);
            assert!(session.is_empty());
            // And still works normally afterwards.
            let output = small_output();
            session.ingest_block(&output.ledger.blocks()[0]);
            assert!(session.snapshot().is_ok());
        }
    }

    #[test]
    fn window_policy_parsing() {
        assert_eq!(
            WindowPolicy::parse("unbounded"),
            Ok(WindowPolicy::Unbounded)
        );
        assert_eq!(
            WindowPolicy::parse("last-blocks:64"),
            Ok(WindowPolicy::LastBlocks(64))
        );
        assert_eq!(
            WindowPolicy::parse("last-secs:2.5"),
            Ok(WindowPolicy::LastDuration(
                sim_core::time::SimDuration::from_secs_f64(2.5)
            ))
        );
        assert!(matches!(
            WindowPolicy::parse("half-life:60"),
            Ok(WindowPolicy::ExponentialDecay { .. })
        ));
        for bad in [
            "last-blocks:0",
            "last-secs:-1",
            "half-life:x",
            "bogus",
            "bogus:3",
        ] {
            assert!(WindowPolicy::parse(bad).is_err(), "{bad}");
        }
        // Round-trip through Display.
        for policy in [
            WindowPolicy::Unbounded,
            WindowPolicy::LastBlocks(10),
            WindowPolicy::LastDuration(sim_core::time::SimDuration::from_secs(3)),
        ] {
            assert_eq!(WindowPolicy::parse(&policy.to_string()), Ok(policy));
        }
    }

    /// Regression (small-log hysteresis): at `total = 10` the 5 % tie band
    /// used to truncate to zero, so the documented family-flip hysteresis
    /// never engaged on small windows. With the band floored at one
    /// record, a one-record coverage lead no longer evicts the cached
    /// family.
    #[test]
    fn family_flip_hysteresis_engages_on_small_logs() {
        // Batch 1: four records covered by both families (A wins the
        // deterministic tie-break) → cached family "A".
        let both: Vec<TxRecord> = (0..4)
            .map(|i| {
                Rec::new(i, "act")
                    .args(vec![format!("A{i}").into(), format!("B{i}").into()])
                    .build()
            })
            .collect();
        let mut session = Analyzer::new().session().unwrap();
        session.ingest_log(log_of(both)).unwrap();
        assert_eq!(session.snapshot().unwrap().case_derivation.family, "A");

        // Batch 2: one B-only record plus five with no candidates.
        // Total 10: coverage A = 4, B = 5 — a one-record lead, inside the
        // 5 % band (max(1, ⌊0.5⌋) = 1), so the cached family must survive.
        let mut tail: Vec<TxRecord> = vec![Rec::new(4, "act").args(vec!["B9".into()]).build()];
        for i in 5..10 {
            tail.push(Rec::new(i, "act").args(vec!["nodigits".into()]).build());
        }
        session.ingest_log(log_of(tail)).unwrap();
        assert_eq!(session.len(), 10);
        assert_eq!(
            session.snapshot().unwrap().case_derivation.family,
            "A",
            "a one-record lead must not flip the family on a 10-record log"
        );
    }

    /// One chunk of a partitioned log, with its own distinct-block tally
    /// (what an export of just that slice would declare).
    fn chunk_log(records: &[TxRecord]) -> BlockchainLog {
        let blocks: BTreeSet<u64> = records.iter().map(|r| r.block).collect();
        BlockchainLog::from_records(records.to_vec(), blocks.len())
    }

    /// Snapshot + footprint + eviction counter, canonically rendered — the
    /// byte-equality witness for merge tests (the raw `Session` Debug goes
    /// through `HashMap`s whose iteration order is instance-dependent).
    fn merge_witness(session: &Session) -> String {
        format!(
            "{:?}|{:?}|{}",
            session.snapshot().unwrap(),
            session.footprint(),
            session.evicted()
        )
    }

    /// The merge monoid law: any partition of a stream across k sessions,
    /// merged in any association order, byte-equals a single session
    /// ingesting the whole stream in one batch.
    #[test]
    fn merged_shards_equal_single_batch_ingest() {
        let output = small_output();
        let full = BlockchainLog::from_ledger(&output.ledger);
        let mut reference = Analyzer::new().session().unwrap();
        reference.ingest_log(full.clone()).unwrap();
        let expected = merge_witness(&reference);

        let records = full.records();
        let cuts = [records.len() / 4, records.len() / 2, 4 * records.len() / 5];
        let shard = |lo: usize, hi: usize| {
            let mut s = Analyzer::new().session().unwrap();
            s.ingest_log(chunk_log(&records[lo..hi])).unwrap();
            s
        };
        // Left-assoc: ((a·b)·c)·d
        let mut left = shard(0, cuts[0]);
        left.merge(shard(cuts[0], cuts[1])).unwrap();
        left.merge(shard(cuts[1], cuts[2])).unwrap();
        left.merge(shard(cuts[2], records.len())).unwrap();
        assert_eq!(merge_witness(&left), expected);
        // Right-assoc: a·(b·(c·d))
        let mut tail = shard(cuts[1], cuts[2]);
        tail.merge(shard(cuts[2], records.len())).unwrap();
        let mut mid = shard(cuts[0], cuts[1]);
        mid.merge(tail).unwrap();
        let mut right = shard(0, cuts[0]);
        right.merge(mid).unwrap();
        assert_eq!(merge_witness(&right), expected);
    }

    /// The empty session is the merge identity, on both sides.
    #[test]
    fn empty_session_is_the_merge_identity() {
        let output = small_output();
        let full = BlockchainLog::from_ledger(&output.ledger);
        let mut loaded = Analyzer::new().session().unwrap();
        loaded.ingest_log(full.clone()).unwrap();
        let expected = merge_witness(&loaded);

        // Right identity: folding in an empty session is a no-op.
        loaded.merge(Analyzer::new().session().unwrap()).unwrap();
        assert_eq!(merge_witness(&loaded), expected);
        // Left identity: an empty receiver adopts the other state.
        let mut fresh = Analyzer::new().session().unwrap();
        fresh.merge(loaded).unwrap();
        assert_eq!(merge_witness(&fresh), expected);
    }

    #[test]
    fn merge_validates_configuration_and_stream_order() {
        let output = small_output();
        let full = BlockchainLog::from_ledger(&output.ledger);
        let records = full.records();
        let mut head = Analyzer::new().session().unwrap();
        head.ingest_log(chunk_log(&records[..records.len() / 2]))
            .unwrap();

        // Mismatched metric interval.
        let coarse = Analyzer::new()
            .metric_config(MetricConfig {
                interval: sim_core::time::SimDuration::from_secs(5),
                ..Default::default()
            })
            .session()
            .unwrap();
        let err = head.clone().merge(coarse).unwrap_err();
        assert!(matches!(err, AnalyzeError::MergeMismatch(_)));
        assert!(err.to_string().contains("metric intervals differ"));
        // Mismatched window policy.
        let windowed = Analyzer::new()
            .window(WindowPolicy::LastBlocks(4))
            .session()
            .unwrap();
        let err = head.clone().merge(windowed).unwrap_err();
        assert!(err.to_string().contains("window policies differ"));
        // Overlapping streams are rejected before any state changes.
        let mut overlap = Analyzer::new().session().unwrap();
        overlap
            .ingest_log(chunk_log(&records[records.len() / 4..]))
            .unwrap();
        let before = merge_witness(&head);
        assert!(matches!(
            head.merge(overlap).unwrap_err(),
            AnalyzeError::OutOfOrder { .. }
        ));
        assert_eq!(merge_witness(&head), before, "failed merge mutated state");
    }

    /// Windowed merges re-evict: both the main path (other below its
    /// eviction threshold) and the adoption path (other already evicted)
    /// must reproduce a single-batch windowed ingest byte-for-byte.
    #[test]
    fn windowed_merges_equal_single_batch_ingest() {
        let output = small_output();
        let full = BlockchainLog::from_ledger(&output.ledger);
        let records = full.records();
        let policy = WindowPolicy::LastBlocks(3);
        let analyzer = Analyzer::new().window(policy);
        let mut reference = analyzer.session().unwrap();
        reference.ingest_log(full.clone()).unwrap();
        assert!(reference.evicted() > 0, "the log spans > 3 blocks");
        let expected = merge_witness(&reference);

        // Adoption path: the tail shard spans far more than 3 blocks, so
        // it evicts on its own and the merge adopts its state.
        let cut = records.len() / 5;
        let mut merged = analyzer.session().unwrap();
        merged.ingest_log(chunk_log(&records[..cut])).unwrap();
        let mut tail = analyzer.session().unwrap();
        tail.ingest_log(chunk_log(&records[cut..])).unwrap();
        assert!(tail.evicted() > 0, "tail shard evicts by itself");
        merged.merge(tail).unwrap();
        assert_eq!(merge_witness(&merged), expected);

        // Main path: the tail shard alone stays within the window, so the
        // merge itself must evict the aged-out prefix.
        let suffix_start = {
            let blocks: BTreeSet<u64> = records.iter().map(|r| r.block).collect();
            let cutoff = *blocks.iter().rev().nth(1).expect("several blocks");
            records.iter().position(|r| r.block >= cutoff).unwrap()
        };
        let mut merged = analyzer.session().unwrap();
        merged
            .ingest_log(chunk_log(&records[..suffix_start]))
            .unwrap();
        let mut tail = analyzer.session().unwrap();
        tail.ingest_log(chunk_log(&records[suffix_start..]))
            .unwrap();
        assert_eq!(tail.evicted(), 0, "two blocks fit the window");
        merged.merge(tail).unwrap();
        assert_eq!(merge_witness(&merged), expected);
    }

    /// Snapshots detach cheaply, merge like sessions, and can resume
    /// ingesting.
    #[test]
    fn detached_snapshots_merge_and_resume() {
        let output = small_output();
        let full = BlockchainLog::from_ledger(&output.ledger);
        let records = full.records();
        let mid = records.len() / 2;
        let mut reference = Analyzer::new().session().unwrap();
        reference.ingest_log(full.clone()).unwrap();

        let mut head = Analyzer::new().session().unwrap();
        head.ingest_log(chunk_log(&records[..mid])).unwrap();
        let mut tail = Analyzer::new().session().unwrap();
        tail.ingest_log(chunk_log(&records[mid..])).unwrap();

        let mut folded = head.detach();
        folded.merge(tail.detach()).unwrap();
        assert_eq!(folded.footprint(), reference.footprint());
        assert_eq!(
            format!("{:?}", folded.analysis().unwrap()),
            format!("{:?}", reference.snapshot().unwrap())
        );
        // A snapshot turns back into a live session.
        let resumed = folded.into_session();
        assert_eq!(resumed.len(), reference.len());
        assert_eq!(merge_witness(&resumed), merge_witness(&reference));
    }

    /// The footprint's byte estimate is deterministic arithmetic over the
    /// counts, so equal footprints mean equal estimates — and a non-empty
    /// session reports a non-zero resident size.
    #[test]
    fn footprint_byte_estimate_tracks_counts() {
        let output = small_output();
        let mut session = Analyzer::new().session().unwrap();
        assert_eq!(session.footprint().approx_bytes(), 0);
        session.ingest_ledger(&output.ledger);
        let fp = session.footprint();
        assert!(fp.approx_bytes() >= fp.records * 320);
    }

    #[test]
    fn forked_sessions_diverge_independently() {
        let output = small_output();
        let blocks = output.ledger.blocks();
        let mut session = Analyzer::new().session().unwrap();
        let mid = blocks.len() / 2;
        for block in &blocks[..mid] {
            session.ingest_block(block);
        }
        let fork = session.clone();
        for block in &blocks[mid..] {
            session.ingest_block(block);
        }
        assert_eq!(session.len(), output.report.committed);
        assert_eq!(
            fork.len(),
            blocks[..mid].iter().map(|b| b.len()).sum::<usize>()
        );
        // The fork still snapshots its own prefix.
        let prefix_analysis = fork.snapshot().unwrap();
        assert_eq!(prefix_analysis.log.len(), fork.len());
    }
}
