//! Resilience rules: turning a degradation report into retry / policy
//! tuning actions.
//!
//! The paper's nine rules ([`RuleSet::paper`](crate::recommend::rules::RuleSet::paper))
//! diagnose *steady-state* inefficiencies from the transaction log. Under
//! injected faults ([`fabric_sim::fault::FaultSpec`]) a different family of
//! problems appears — endorsement fan-outs that never complete, retry
//! budgets that run dry, backoff schedules that hammer a congested network
//! — and the evidence for them lives in the run's
//! [`Degradation`](fabric_sim::report::Degradation) section, not in the
//! committed-transaction log. This module mirrors the rule-registry shape
//! for that family:
//!
//! * [`ResilienceRule`] is a stateless detector over a
//!   [`ResilienceCtx`] (the simulation report, the client's current
//!   [`RetryPolicy`], the network configuration);
//! * [`ResilienceRuleSet::paper`] registers the built-in catalogue:
//!   retry-budget tuning, endorsement-policy relaxation under sustained
//!   outage, and backoff widening under timeout storms;
//! * each firing lowers directly to a [`PlannedAction`] (a typed
//!   [`Action`]), so
//!   [`OptimizationPlan::from_spec`](crate::plan::OptimizationPlan::from_spec)
//!   can append resilience actions to the paper plan and the closed loop
//!   re-measures them like any other optimization.

use crate::action::{Action, NetworkChange, RetryChange};
use crate::plan::PlannedAction;
use fabric_sim::config::NetworkConfig;
use fabric_sim::fault::{RetryPolicy, NO_ENDORSEMENT_REASON, RETRY_EXHAUSTED_REASON};
use fabric_sim::report::SimReport;
use std::fmt;
use std::sync::Arc;

/// Everything a resilience rule may look at for one measured run.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceCtx<'a> {
    /// The (primary-seed) simulation report, including its
    /// [`degradation`](SimReport::degradation) section.
    pub report: &'a SimReport,
    /// The retry policy the run executed under.
    pub retry: &'a RetryPolicy,
    /// The network configuration the run executed under.
    pub config: &'a NetworkConfig,
}

/// A stateless detector over one run's degradation evidence. Fires at most
/// one action per evaluation (resilience knobs are scalar; there is no
/// per-activity fan-out like the log rules have).
pub trait ResilienceRule: fmt::Debug + Send + Sync {
    /// Stable kebab-case identifier.
    fn id(&self) -> &str;

    /// Evaluate against one run; `None` when the evidence is absent.
    fn detect(&self, ctx: &ResilienceCtx<'_>) -> Option<PlannedAction>;
}

/// An ordered registry of [`ResilienceRule`]s, mirroring
/// [`RuleSet`](crate::recommend::rules::RuleSet): `Default` is the
/// built-in catalogue, rules are `Arc`-shared so cloning is cheap, and
/// registering an existing id replaces in place.
#[derive(Debug, Clone)]
pub struct ResilienceRuleSet {
    rules: Vec<Arc<dyn ResilienceRule>>,
}

impl Default for ResilienceRuleSet {
    fn default() -> Self {
        ResilienceRuleSet::paper()
    }
}

impl ResilienceRuleSet {
    /// A registry with no rules.
    pub fn empty() -> ResilienceRuleSet {
        ResilienceRuleSet { rules: Vec::new() }
    }

    /// The built-in resilience catalogue, in escalation order: first make
    /// the client retry enough ([`RetryBudget`]), then stop it from
    /// retrying too *hot* ([`BackoffWidening`]), and only then weaken the
    /// endorsement policy itself ([`EndorsementRelaxation`]) — the one
    /// action that trades integrity margin for availability.
    pub fn paper() -> ResilienceRuleSet {
        ResilienceRuleSet::empty()
            .with_rule(Arc::new(RetryBudget))
            .with_rule(Arc::new(BackoffWidening))
            .with_rule(Arc::new(EndorsementRelaxation))
    }

    /// Register a rule (builder style). A rule with the same id replaces
    /// the existing one, keeping its position.
    pub fn with_rule(mut self, rule: Arc<dyn ResilienceRule>) -> ResilienceRuleSet {
        match self.rules.iter_mut().find(|r| r.id() == rule.id()) {
            Some(slot) => *slot = rule,
            None => self.rules.push(rule),
        }
        self
    }

    /// Ids of all registered rules, in registration order.
    pub fn ids(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.id()).collect()
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the registry has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Run every rule and collect the fired actions in registration order.
    pub fn evaluate(&self, ctx: &ResilienceCtx<'_>) -> Vec<PlannedAction> {
        self.rules.iter().filter_map(|r| r.detect(ctx)).collect()
    }
}

/// The share of early aborts attributed to `reason`, over all requests.
fn abort_share(report: &SimReport, reason: &str) -> f64 {
    if report.requests == 0 {
        return 0.0;
    }
    *report.early_abort_reasons.get(reason).unwrap_or(&0) as f64 / report.requests as f64
}

/// **Retry-budget tuning.** Two shapes of under-provisioned client:
///
/// * the wait-forever client (no [`RetryPolicy::endorse_timeout`]) loses a
///   visible share of transactions to dead endorsers (the
///   [`NO_ENDORSEMENT_REASON`] breakdown entry) — enable a timeout and a
///   small retry budget;
/// * a retrying client still exhausts its budget
///   ([`Degradation::retry_exhausted`](fabric_sim::report::Degradation::retry_exhausted))
///   — double the attempt cap.
#[derive(Debug, Clone, Copy)]
pub struct RetryBudget;

/// Minimum share of requests lost to unanswered endorsements before the
/// rule arms a timeout on a wait-forever client.
const NO_RESULT_SHARE: f64 = 0.01;

impl ResilienceRule for RetryBudget {
    fn id(&self) -> &str {
        "retry-budget"
    }

    fn detect(&self, ctx: &ResilienceCtx<'_>) -> Option<PlannedAction> {
        let deg = &ctx.report.degradation;
        let change = if ctx.retry.endorse_timeout.is_none() {
            if abort_share(ctx.report, NO_ENDORSEMENT_REASON) < NO_RESULT_SHARE {
                return None;
            }
            // A wait-forever client under an outage: give it a timeout
            // roughly one order above the healthy endorse round-trip and a
            // modest budget to ride out short windows.
            RetryChange {
                endorse_timeout: Some(1.0),
                max_attempts: Some(4),
                backoff_base: Some(0.25),
                backoff_multiplier: None,
            }
        } else if deg.retry_exhausted > 0 {
            RetryChange {
                endorse_timeout: None,
                max_attempts: Some(ctx.retry.max_attempts.max(1) * 2),
                backoff_base: None,
                backoff_multiplier: None,
            }
        } else {
            return None;
        };
        Some(PlannedAction {
            source: "Retry budget tuning".to_string(),
            action: Action::TuneRetry(change),
        })
    }
}

/// **Backoff widening.** A timeout storm — timed-out fan-outs rivalling
/// the committed volume — while the backoff schedule is still tight means
/// retries re-enter the same congested or dead window they just timed out
/// of. Widen the schedule: raise the base toward the timeout itself and
/// ensure exponential growth.
#[derive(Debug, Clone, Copy)]
pub struct BackoffWidening;

/// Timeouts-per-request ratio that counts as a storm.
const STORM_RATIO: f64 = 0.5;

impl ResilienceRule for BackoffWidening {
    fn id(&self) -> &str {
        "backoff-widening"
    }

    fn detect(&self, ctx: &ResilienceCtx<'_>) -> Option<PlannedAction> {
        let deg = &ctx.report.degradation;
        if ctx.report.requests == 0 || ctx.retry.endorse_timeout.is_none() {
            return None;
        }
        let ratio = deg.timeouts as f64 / ctx.report.requests as f64;
        if ratio < STORM_RATIO {
            return None;
        }
        let timeout = ctx.retry.endorse_timeout.unwrap_or(1.0);
        let widened_base = (ctx.retry.backoff_base * 2.0).max(timeout / 2.0);
        let already_wide =
            ctx.retry.backoff_base >= widened_base && ctx.retry.backoff_multiplier >= 2.0;
        if already_wide {
            return None;
        }
        Some(PlannedAction {
            source: "Backoff widening".to_string(),
            action: Action::TuneRetry(RetryChange {
                endorse_timeout: None,
                max_attempts: None,
                backoff_base: Some(widened_base),
                backoff_multiplier: Some(ctx.retry.backoff_multiplier.max(2.0)),
            }),
        })
    }
}

/// **Endorsement-policy relaxation.** When a fault window shows a
/// *sustained* outage — an outage window whose in-window success rate
/// collapses, or a retry budget that keeps running dry — and the policy
/// still demands more than one endorser, requiring one fewer signature
/// shrinks the set of peers whose death can strand a transaction.
/// Deliberately last in the catalogue: it trades integrity margin for
/// availability (paper §2.1's trust assumption weakens by one org).
#[derive(Debug, Clone, Copy)]
pub struct EndorsementRelaxation;

/// In-window success rate (percent) below which an outage window counts as
/// a sustained availability failure.
const SUSTAINED_OUTAGE_PCT: f64 = 50.0;

impl ResilienceRule for EndorsementRelaxation {
    fn id(&self) -> &str {
        "endorsement-relaxation"
    }

    fn detect(&self, ctx: &ResilienceCtx<'_>) -> Option<PlannedAction> {
        if ctx.config.endorsement_policy.min_endorsers() <= 1 {
            return None;
        }
        let deg = &ctx.report.degradation;
        let sustained_window = deg.windows.iter().any(|w| {
            w.label.starts_with("outage")
                && w.submitted > 0
                && w.success_rate_pct < SUSTAINED_OUTAGE_PCT
        });
        // A drained retry budget is the same evidence when the client
        // *did* retry: the outage outlasted every attempt.
        let budget_drained =
            deg.retry_exhausted > 0 || abort_share(ctx.report, RETRY_EXHAUSTED_REASON) > 0.0;
        if !sustained_window && !budget_drained {
            return None;
        }
        Some(PlannedAction {
            source: "Endorsement policy relaxation".to_string(),
            action: Action::ReconfigureNetwork(NetworkChange::RelaxEndorsementPolicy),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::report::{Degradation, FaultWindowStats};

    fn report_with(requests: usize, deg: Degradation) -> SimReport {
        let ledger = fabric_sim::ledger::Ledger::new();
        let mut r = SimReport::from_ledger(&ledger, requests, sim_core::time::SimTime::ZERO);
        r.degradation = deg;
        r
    }

    #[test]
    fn paper_catalogue_registers_three_rules_in_escalation_order() {
        let rules = ResilienceRuleSet::paper();
        assert_eq!(
            rules.ids(),
            vec!["retry-budget", "backoff-widening", "endorsement-relaxation"]
        );
        assert_eq!(rules.len(), 3);
        assert!(!rules.is_empty());
    }

    #[test]
    fn quiet_run_fires_nothing() {
        let report = report_with(100, Degradation::default());
        let retry = RetryPolicy::default();
        let config = NetworkConfig::default();
        let ctx = ResilienceCtx {
            report: &report,
            retry: &retry,
            config: &config,
        };
        assert!(ResilienceRuleSet::paper().evaluate(&ctx).is_empty());
    }

    #[test]
    fn wait_forever_client_under_outage_gets_a_timeout() {
        let mut report = report_with(100, Degradation::default());
        report
            .early_abort_reasons
            .insert(NO_ENDORSEMENT_REASON.to_string(), 10);
        let retry = RetryPolicy::default();
        let config = NetworkConfig::default();
        let ctx = ResilienceCtx {
            report: &report,
            retry: &retry,
            config: &config,
        };
        let fired = ResilienceRuleSet::paper().evaluate(&ctx);
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].source, "Retry budget tuning");
        let change = fired[0].action.retry_change().unwrap();
        assert!(change.endorse_timeout.is_some());
        assert!(change.max_attempts.unwrap_or(0) > 1);
    }

    #[test]
    fn drained_budget_doubles_attempts_and_relaxes_policy() {
        let report = report_with(
            100,
            Degradation {
                retries: 40,
                timeouts: 45,
                retry_exhausted: 5,
                ..Degradation::default()
            },
        );
        let retry = RetryPolicy {
            endorse_timeout: Some(0.5),
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let config = NetworkConfig::default();
        let ctx = ResilienceCtx {
            report: &report,
            retry: &retry,
            config: &config,
        };
        let fired = ResilienceRuleSet::paper().evaluate(&ctx);
        let sources: Vec<&str> = fired.iter().map(|a| a.source.as_str()).collect();
        assert!(sources.contains(&"Retry budget tuning"), "{sources:?}");
        assert!(
            sources.contains(&"Endorsement policy relaxation"),
            "{sources:?}"
        );
        let budget = fired
            .iter()
            .find(|a| a.source == "Retry budget tuning")
            .unwrap();
        assert_eq!(budget.action.retry_change().unwrap().max_attempts, Some(6));
    }

    #[test]
    fn timeout_storm_widens_backoff() {
        let report = report_with(
            100,
            Degradation {
                retries: 60,
                timeouts: 80,
                ..Degradation::default()
            },
        );
        let retry = RetryPolicy {
            endorse_timeout: Some(1.0),
            max_attempts: 8,
            backoff_base: 0.05,
            backoff_multiplier: 1.0,
            jitter: 0.0,
        };
        let config = NetworkConfig::default();
        let ctx = ResilienceCtx {
            report: &report,
            retry: &retry,
            config: &config,
        };
        let fired = ResilienceRuleSet::paper().evaluate(&ctx);
        let widen = fired
            .iter()
            .find(|a| a.source == "Backoff widening")
            .expect("storm detected");
        let change = widen.action.retry_change().unwrap();
        assert!(change.backoff_base.unwrap() >= 0.5, "{change:?}");
        assert_eq!(change.backoff_multiplier, Some(2.0));
    }

    #[test]
    fn sustained_outage_window_relaxes_policy_only_above_one_endorser() {
        let deg = Degradation {
            windows: vec![FaultWindowStats {
                label: "outage org1 0.50s+1.50s".to_string(),
                submitted: 40,
                successes: 4,
                success_rate_pct: 10.0,
                avg_latency_s: 2.0,
            }],
            ..Degradation::default()
        };
        let report = report_with(100, deg);
        let retry = RetryPolicy::default();
        let config = NetworkConfig::default();
        let ctx = ResilienceCtx {
            report: &report,
            retry: &retry,
            config: &config,
        };
        let fired = ResilienceRuleSet::paper().evaluate(&ctx);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].source, "Endorsement policy relaxation");

        // With a single-endorser policy there is nothing left to relax.
        let weak = NetworkConfig {
            endorsement_policy: fabric_sim::policy::EndorsementPolicy::out_of(1, 2),
            ..NetworkConfig::default()
        };
        let ctx = ResilienceCtx {
            report: &report,
            retry: &retry,
            config: &weak,
        };
        assert!(ResilienceRuleSet::paper().evaluate(&ctx).is_empty());
    }

    #[test]
    fn custom_rule_replaces_by_id() {
        #[derive(Debug)]
        struct Quiet;
        impl ResilienceRule for Quiet {
            fn id(&self) -> &str {
                "retry-budget"
            }
            fn detect(&self, _: &ResilienceCtx<'_>) -> Option<PlannedAction> {
                None
            }
        }
        let rules = ResilienceRuleSet::paper().with_rule(Arc::new(Quiet));
        assert_eq!(rules.len(), 3, "same id replaces in place");
        assert_eq!(rules.ids()[0], "retry-budget");
    }
}
