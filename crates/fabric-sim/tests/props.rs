//! Property tests for the Fabric substrate: endorsement-policy algebra,
//! block cutting, scheduling, and MVCC validation invariants.

use fabric_sim::config::SchedulerKind;
use fabric_sim::ledger::TxStatus;
use fabric_sim::orderer::{ArrivalOutcome, BlockCutter};
use fabric_sim::policy::EndorsementPolicy;
use fabric_sim::rwset::{ReadWriteSet, Version};
use fabric_sim::scheduler::{schedule_block, SchedTx};
use fabric_sim::state::WorldState;
use fabric_sim::types::{OrgId, Value};
use fabric_sim::validator::{validate_block, TxToValidate};
use proptest::prelude::*;
use sim_core::time::{SimDuration, SimTime};
use std::collections::BTreeSet;

fn arb_policy() -> impl Strategy<Value = EndorsementPolicy> {
    prop_oneof![
        Just(EndorsementPolicy::p1()),
        Just(EndorsementPolicy::p2()),
        Just(EndorsementPolicy::p3(2)),
        Just(EndorsementPolicy::p3(4)),
        Just(EndorsementPolicy::p4()),
        (1usize..4, 2usize..6).prop_map(|(k, n)| EndorsementPolicy::out_of(k.min(n), n)),
    ]
}

/// A small random rwset over a tiny key space (to force conflicts).
fn arb_rwset() -> impl Strategy<Value = ReadWriteSet> {
    (
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec(0u8..6, 0..3),
    )
        .prop_map(|(reads, writes)| {
            let mut rw = ReadWriteSet::new();
            for r in reads {
                rw.record_read(format!("k{r}"), Some(Version::new(0, 0)));
            }
            for w in writes {
                rw.record_write(format!("k{w}"), Some(Value::Int(w as i64)));
            }
            rw
        })
}

proptest! {
    /// Every minimal satisfying set satisfies the policy, and removing any
    /// member breaks it (true minimality).
    #[test]
    fn minimal_sets_are_minimal(policy in arb_policy()) {
        for set in policy.minimal_satisfying_sets() {
            prop_assert!(policy.satisfied_by(&set));
            for org in &set {
                let mut smaller = set.clone();
                smaller.remove(org);
                prop_assert!(!policy.satisfied_by(&smaller), "{policy}: {set:?} minus {org}");
            }
        }
    }

    /// Satisfaction is monotone: adding organizations never breaks it.
    #[test]
    fn satisfaction_is_monotone(policy in arb_policy(), extra in 0u16..8) {
        for set in policy.minimal_satisfying_sets() {
            let mut bigger: BTreeSet<OrgId> = set.clone();
            bigger.insert(OrgId(extra));
            prop_assert!(policy.satisfied_by(&bigger));
        }
    }

    /// Mandatory orgs appear in every minimal satisfying set.
    #[test]
    fn mandatory_orgs_are_everywhere(policy in arb_policy()) {
        let mandatory = policy.mandatory_orgs();
        for set in policy.minimal_satisfying_sets() {
            for org in &mandatory {
                prop_assert!(set.contains(org));
            }
        }
    }

    /// The block cutter conserves transactions, respects the count bound and
    /// never reorders.
    #[test]
    fn cutter_conserves_and_bounds(
        count in 1usize..20,
        arrivals in prop::collection::vec(1u64..500, 1..120)
    ) {
        let mut cutter = BlockCutter::new(count, 1 << 30, SimDuration::from_secs(1));
        let mut t = SimTime::ZERO;
        let mut cut_txs: Vec<usize> = Vec::new();
        for (i, gap) in arrivals.iter().enumerate() {
            t += SimDuration::from_micros(*gap);
            match cutter.on_arrival(t, i, 1) {
                ArrivalOutcome::CutNow(cut) => {
                    prop_assert_eq!(cut.txs.len(), count, "count cut is exact");
                    cut_txs.extend(cut.txs);
                }
                ArrivalOutcome::ArmTimer { deadline, .. } => {
                    prop_assert_eq!(deadline, t + SimDuration::from_secs(1));
                }
                ArrivalOutcome::Buffered => {}
            }
        }
        if let Some(cut) = cutter.flush(t) {
            prop_assert!(cut.txs.len() <= count);
            cut_txs.extend(cut.txs);
        }
        prop_assert_eq!(cut_txs.len(), arrivals.len(), "conservation");
        let sorted: Vec<usize> = (0..arrivals.len()).collect();
        prop_assert_eq!(cut_txs, sorted, "arrival order preserved");
    }

    /// Schedulers always emit a permutation, and Fabric++ never aborts a
    /// transaction that has no write-conflicts with anyone.
    #[test]
    fn schedulers_emit_permutations(
        rwsets in prop::collection::vec(arb_rwset(), 1..30),
        kind in prop_oneof![
            Just(SchedulerKind::Vanilla),
            Just(SchedulerKind::FabricPlusPlus),
            Just(SchedulerKind::FabricSharp),
        ]
    ) {
        let txs: Vec<SchedTx<'_>> = rwsets
            .iter()
            .map(|rw| SchedTx { rwset: rw, endorse_spread: SimDuration::ZERO })
            .collect();
        let out = schedule_block(kind, &txs);
        let mut order = out.order.clone();
        order.sort_unstable();
        let expected: Vec<usize> = (0..rwsets.len()).collect();
        prop_assert_eq!(order, expected);
        // An isolated tx (keys disjoint from all others) is never aborted.
        for (i, rw) in rwsets.iter().enumerate() {
            let isolated = rwsets.iter().enumerate().all(|(j, other)| {
                j == i || rw.all_keys().is_disjoint(&other.all_keys())
            });
            if isolated {
                prop_assert!(!out.aborted.contains(&i), "{kind:?} aborted isolated tx");
            }
        }
    }

    /// Validation soundness: a successful transaction's reads all matched
    /// the pre-state, and only successful writes changed the state.
    #[test]
    fn validation_soundness(rwsets in prop::collection::vec(arb_rwset(), 1..25)) {
        let mut state = WorldState::new();
        for k in 0..6 {
            state.seed(format!("k{k}"), Value::Int(0));
        }
        let pre = state.clone();
        let txs: Vec<TxToValidate<'_>> = rwsets
            .iter()
            .map(|rw| TxToValidate {
                rwset: rw,
                endorse_mismatch: false,
                sched_aborted: false,
                sched_policy_failed: false,
            })
            .collect();
        let verdicts = validate_block(&mut state, 1, &txs, 0);
        prop_assert_eq!(verdicts.len(), rwsets.len());

        // Replay manually and compare.
        let mut replay = pre.clone();
        for (i, rw) in rwsets.iter().enumerate() {
            let fresh = rw
                .reads
                .iter()
                .all(|r| replay.version_of(&r.key) == r.version);
            if verdicts[i].status == TxStatus::Success {
                prop_assert!(fresh, "committed tx {} had stale reads", i);
                replay.apply(&rw.writes, Version::new(1, i as u32));
            }
        }
        for (key, vv) in replay.iter() {
            prop_assert_eq!(Some(&state.get(key).unwrap().value), Some(&vv.value));
        }
    }

    /// First transaction touching each key in a block always succeeds when
    /// its reads were fresh at genesis.
    #[test]
    fn first_reader_wins(keys in prop::collection::vec(0u8..4, 1..20)) {
        let mut state = WorldState::new();
        for k in 0..4 {
            state.seed(format!("k{k}"), Value::Int(0));
        }
        let rwsets: Vec<ReadWriteSet> = keys
            .iter()
            .map(|k| {
                let mut rw = ReadWriteSet::new();
                rw.record_read(format!("k{k}"), Some(Version::new(0, 0)));
                rw.record_write(format!("k{k}"), Some(Value::Int(1)));
                rw
            })
            .collect();
        let txs: Vec<TxToValidate<'_>> = rwsets
            .iter()
            .map(|rw| TxToValidate {
                rwset: rw,
                endorse_mismatch: false,
                sched_aborted: false,
                sched_policy_failed: false,
            })
            .collect();
        let verdicts = validate_block(&mut state, 1, &txs, 0);
        let mut seen: BTreeSet<u8> = BTreeSet::new();
        for (i, k) in keys.iter().enumerate() {
            let first = seen.insert(*k);
            if first {
                prop_assert_eq!(verdicts[i].status, TxStatus::Success);
            } else {
                prop_assert_eq!(verdicts[i].status, TxStatus::MvccReadConflict);
                prop_assert!(verdicts[i].intra_block);
            }
        }
    }
}
