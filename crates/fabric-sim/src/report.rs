//! Run-level measurements.
//!
//! [`SimReport`] carries the three numbers every figure in the paper plots —
//! *success throughput (tps)*, *average latency (s)* and *percentage of
//! successful transactions* — plus the supporting detail (failure breakdown,
//! block statistics, resource utilizations) used by the experiment harness
//! and the tests.

use crate::ledger::{CutReason, Ledger, TxStatus};
use serde::{Deserialize, Serialize};
use sim_core::sketch::QuantileSketch;
use sim_core::stats::Summary;
use sim_core::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Transactions the workload submitted.
    pub requests: usize,
    /// Proposals the chaincode rejected during endorsement (process-model
    /// pruning's early aborts); these never reach the ledger.
    pub early_aborted: usize,
    /// Early aborts broken down by the contract's abort reason (the first
    /// rejecting endorser's message).
    pub early_abort_reasons: BTreeMap<String, usize>,
    /// Transactions committed to the ledger (valid + invalid).
    pub committed: usize,
    /// Valid transactions.
    pub successes: usize,
    /// MVCC read conflicts.
    pub mvcc_conflicts: usize,
    /// …of which the conflicting write was in the same block.
    pub intra_block_conflicts: usize,
    /// …of which the conflicting write was in an earlier block.
    pub inter_block_conflicts: usize,
    /// Phantom read conflicts.
    pub phantom_conflicts: usize,
    /// Endorsement policy failures.
    pub endorsement_failures: usize,
    /// Measurement window: first client send → last block commit, seconds.
    pub duration_s: f64,
    /// Successful transactions per second over the measurement window.
    pub success_throughput: f64,
    /// Mean end-to-end latency of successful transactions, seconds.
    pub avg_latency_s: f64,
    /// Latency distribution of successful transactions (seconds), derived
    /// from [`latency_sketch`](Self::latency_sketch).
    pub latency: Summary,
    /// The mergeable per-run latency sketch the summary above is derived
    /// from — O([`sketch`](sim_core::sketch)) instead of O(successes):
    /// exact (bit-equal to `Summary::of` over the raw latencies) up to
    /// [`EXACT_CAP`](sim_core::sketch::EXACT_CAP) values, rank-bounded
    /// beyond.
    /// Multi-seed aggregation (the planner's measured reports) folds these
    /// per-seed sketches instead of re-collecting raw latencies.
    pub latency_sketch: QuantileSketch,
    /// `successes / committed`, in percent.
    pub success_rate_pct: f64,
    /// Number of blocks committed.
    pub blocks: usize,
    /// Mean transactions per block (`Bsizeavg`).
    pub avg_block_size: f64,
    /// Blocks by cut reason.
    pub cut_reasons: BTreeMap<String, usize>,
    /// Client-fleet utilization in `[0, 1]`.
    pub client_utilization: f64,
    /// Endorser-fleet utilization in `[0, 1]`.
    pub endorser_utilization: f64,
    /// Ordering-service utilization in `[0, 1]`.
    pub orderer_utilization: f64,
    /// Validation-pipeline utilization in `[0, 1]`.
    pub validator_utilization: f64,
    /// Endorsements per peer, as `(peer name, count)`.
    pub endorsements_per_peer: Vec<(String, u64)>,
    /// Total DES events the engine dispatched during the run (the
    /// numerator of the events/s throughput figure).
    pub events: u64,
    /// Client-resilience measurements under injected faults; trivial (all
    /// zeros, no windows) for healthy runs.
    pub degradation: Degradation,
}

/// How the run degraded under injected faults and what the client's retry
/// arm did about it. Everything here is zero/empty for a healthy run, so a
/// no-fault report serializes exactly one extra all-default section.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    /// Endorsement fan-outs the client re-proposed after a timeout.
    pub retries: usize,
    /// Endorsement timeouts that fired (each is either retried or final).
    pub timeouts: usize,
    /// Transactions abandoned after exhausting the retry budget (these are
    /// counted under `early_aborted` with the typed retry-exhausted reason).
    pub retry_exhausted: usize,
    /// Proposals lost before reaching an endorser.
    pub dropped_proposals: usize,
    /// Endorsement replies lost in transit.
    pub dropped_endorsements: usize,
    /// Transactions that committed successfully but needed more than one
    /// attempt — gracefully degraded rather than failed.
    pub degraded_success: usize,
    /// Per-fault-window outcome statistics.
    pub windows: Vec<FaultWindowStats>,
}

impl Degradation {
    /// True when nothing fault-related happened (healthy run).
    pub fn is_trivial(&self) -> bool {
        self.retries == 0
            && self.timeouts == 0
            && self.retry_exhausted == 0
            && self.dropped_proposals == 0
            && self.dropped_endorsements == 0
            && self.degraded_success == 0
            && self.windows.is_empty()
    }
}

/// Outcome of the transactions submitted while one fault window was open.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultWindowStats {
    /// Human-readable window description (kind, target, span).
    pub label: String,
    /// Requests whose send time fell inside the window.
    pub submitted: usize,
    /// …of which committed with `Success`.
    pub successes: usize,
    /// `successes / submitted` in percent (0 when nothing was submitted).
    pub success_rate_pct: f64,
    /// Mean end-to-end latency of the window's successes, seconds.
    pub avg_latency_s: f64,
}

impl SimReport {
    /// Derive the ledger-borne part of the report (counts, rates, latency).
    ///
    /// `first_send` anchors the measurement window; utilization and fleet
    /// fields are filled in by the simulation driver afterwards.
    pub fn from_ledger(ledger: &Ledger, requests: usize, first_send: SimTime) -> SimReport {
        let committed = ledger.tx_count();
        let successes = ledger.count_status(TxStatus::Success);
        let mvcc = ledger.count_status(TxStatus::MvccReadConflict);
        let phantom = ledger.count_status(TxStatus::PhantomReadConflict);
        let epf = ledger.count_status(TxStatus::EndorsementPolicyFailure);

        let last_commit = ledger
            .blocks()
            .last()
            .map(|b| b.commit_ts)
            .unwrap_or(first_send);
        let duration_s = last_commit.since(first_send).as_secs_f64().max(1e-9);

        // Stream latencies through the mergeable sketch instead of
        // collecting the raw vector: O(sketch) storage, and the summary is
        // bit-equal to `Summary::of` while the run fits the exact cap.
        let mut latency_sketch = QuantileSketch::new();
        for t in ledger.transactions().filter(|t| t.status.is_success()) {
            latency_sketch.insert(t.latency().as_secs_f64());
        }
        let latency = latency_sketch.summary();

        let mut cut_reasons: BTreeMap<String, usize> = BTreeMap::new();
        for b in ledger.blocks() {
            *cut_reasons
                .entry(format!("{:?}", b.cut_reason).to_lowercase())
                .or_insert(0) += 1;
        }

        SimReport {
            requests,
            early_aborted: 0,
            early_abort_reasons: BTreeMap::new(),
            committed,
            successes,
            mvcc_conflicts: mvcc,
            intra_block_conflicts: 0,
            inter_block_conflicts: 0,
            phantom_conflicts: phantom,
            endorsement_failures: epf,
            duration_s,
            success_throughput: successes as f64 / duration_s,
            avg_latency_s: latency.mean,
            latency,
            latency_sketch,
            success_rate_pct: if committed == 0 {
                0.0
            } else {
                successes as f64 / committed as f64 * 100.0
            },
            blocks: ledger.blocks().len(),
            avg_block_size: ledger.avg_block_size(),
            cut_reasons,
            client_utilization: 0.0,
            endorser_utilization: 0.0,
            orderer_utilization: 0.0,
            validator_utilization: 0.0,
            endorsements_per_peer: Vec::new(),
            events: 0,
            degradation: Degradation::default(),
        }
    }

    /// Total failed (committed-but-invalid) transactions.
    pub fn failures(&self) -> usize {
        self.mvcc_conflicts + self.phantom_conflicts + self.endorsement_failures
    }

    /// One-line figure-style summary:
    /// `tput=… tps lat=… s success=… %`.
    pub fn figure_row(&self) -> String {
        format!(
            "tput={:7.1} tps  lat={:6.2} s  success={:5.1} %",
            self.success_throughput, self.avg_latency_s, self.success_rate_pct
        )
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "requests            : {}", self.requests)?;
        // Categories retracted back to zero (windowed sessions remove the
        // key via `metrics::decrement`, but merged or hand-built maps may
        // leave a zero entry) are skipped so the breakdown matches the
        // remove-at-zero invariant of the tracker layer.
        let reasons: Vec<String> = self
            .early_abort_reasons
            .iter()
            .filter(|(_, &count)| count > 0)
            .map(|(reason, count)| format!("{reason}: {count}"))
            .collect();
        if reasons.is_empty() {
            writeln!(f, "early aborted       : {}", self.early_aborted)?;
        } else {
            writeln!(
                f,
                "early aborted       : {} ({})",
                self.early_aborted,
                reasons.join(", ")
            )?;
        }
        writeln!(f, "committed           : {}", self.committed)?;
        writeln!(
            f,
            "successes           : {} ({:.1} %)",
            self.successes, self.success_rate_pct
        )?;
        writeln!(
            f,
            "mvcc conflicts      : {} (intra {}, inter {})",
            self.mvcc_conflicts, self.intra_block_conflicts, self.inter_block_conflicts
        )?;
        writeln!(f, "phantom conflicts   : {}", self.phantom_conflicts)?;
        writeln!(f, "endorsement failures: {}", self.endorsement_failures)?;
        writeln!(f, "duration            : {:.2} s", self.duration_s)?;
        writeln!(
            f,
            "success throughput  : {:.1} tps",
            self.success_throughput
        )?;
        writeln!(
            f,
            "latency             : avg {:.3} s (p50 {:.3} / p95 {:.3} / p99 {:.3})",
            self.avg_latency_s, self.latency.p50, self.latency.p95, self.latency.p99
        )?;
        writeln!(
            f,
            "blocks              : {} (avg size {:.1})",
            self.blocks, self.avg_block_size
        )?;
        write!(
            f,
            "utilization         : clients {:.0} % endorsers {:.0} % orderer {:.0} % validator {:.0} %",
            self.client_utilization * 100.0,
            self.endorser_utilization * 100.0,
            self.orderer_utilization * 100.0,
            self.validator_utilization * 100.0
        )?;
        if !self.degradation.is_trivial() {
            let d = &self.degradation;
            writeln!(f)?;
            writeln!(
                f,
                "degradation         : retries {} timeouts {} exhausted {}",
                d.retries, d.timeouts, d.retry_exhausted
            )?;
            writeln!(
                f,
                "  dropped           : proposals {} endorsements {}",
                d.dropped_proposals, d.dropped_endorsements
            )?;
            write!(f, "  degraded success  : {}", d.degraded_success)?;
            for w in &d.windows {
                writeln!(f)?;
                write!(
                    f,
                    "  window [{}]: {}/{} ok ({:.1} %) avg latency {:.3} s",
                    w.label, w.successes, w.submitted, w.success_rate_pct, w.avg_latency_s
                )?;
            }
        }
        writeln!(f)
    }
}

/// Helper: human-readable cut-reason key used in [`SimReport::cut_reasons`].
pub fn cut_reason_key(reason: CutReason) -> String {
    format!("{reason:?}").to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{Block, TransactionEnvelope};
    use crate::rwset::ReadWriteSet;
    use crate::types::{ClientId, OrgId, PeerId, TxId, TxType};

    fn env(id: u64, status: TxStatus, latency_ms: u64) -> TransactionEnvelope {
        TransactionEnvelope {
            id: TxId(id),
            client_ts: SimTime::from_millis(0),
            submit_ts: SimTime::from_millis(1),
            commit_ts: SimTime::from_millis(latency_ms),
            contract: "cc".into(),
            activity: "a".into(),
            args: vec![].into(),
            endorsers: vec![PeerId {
                org: OrgId(0),
                index: 0,
            }],
            invoker: ClientId {
                org: OrgId(0),
                index: 0,
            },
            rwset: ReadWriteSet::new(),
            status,
            tx_type: TxType::Read,
        }
    }

    fn ledger_with(statuses: &[(TxStatus, u64)]) -> Ledger {
        let mut l = Ledger::new();
        l.append(Block {
            number: 1,
            cut_reason: CutReason::Count,
            cut_ts: SimTime::from_millis(50),
            commit_ts: SimTime::from_millis(1000),
            txs: statuses
                .iter()
                .enumerate()
                .map(|(i, &(s, lat))| env(i as u64, s, lat))
                .collect(),
        });
        l
    }

    #[test]
    fn report_counts_statuses() {
        let l = ledger_with(&[
            (TxStatus::Success, 100),
            (TxStatus::Success, 200),
            (TxStatus::MvccReadConflict, 300),
            (TxStatus::PhantomReadConflict, 300),
            (TxStatus::EndorsementPolicyFailure, 300),
        ]);
        let r = SimReport::from_ledger(&l, 5, SimTime::ZERO);
        assert_eq!(r.committed, 5);
        assert_eq!(r.successes, 2);
        assert_eq!(r.failures(), 3);
        assert!((r.success_rate_pct - 40.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_uses_commit_window() {
        let l = ledger_with(&[(TxStatus::Success, 100)]);
        let r = SimReport::from_ledger(&l, 1, SimTime::ZERO);
        // 1 success over 1.0 s (commit_ts of the block).
        assert!((r.success_throughput - 1.0).abs() < 1e-6);
        assert!((r.duration_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_only_over_successes() {
        let l = ledger_with(&[(TxStatus::Success, 100), (TxStatus::MvccReadConflict, 900)]);
        let r = SimReport::from_ledger(&l, 2, SimTime::ZERO);
        assert!((r.avg_latency_s - 0.1).abs() < 1e-9);
        assert_eq!(r.latency.count, 1);
    }

    #[test]
    fn latency_sketch_rides_along_and_matches_summary() {
        let l = ledger_with(&[
            (TxStatus::Success, 100),
            (TxStatus::Success, 300),
            (TxStatus::MvccReadConflict, 900),
        ]);
        let r = SimReport::from_ledger(&l, 3, SimTime::ZERO);
        assert_eq!(r.latency_sketch.count(), 2, "successes only");
        assert!(r.latency_sketch.is_exact(), "small runs stay exact");
        assert_eq!(
            format!("{:?}", r.latency_sketch.summary()),
            format!("{:?}", r.latency)
        );
    }

    #[test]
    fn empty_ledger_is_safe() {
        let l = Ledger::new();
        let r = SimReport::from_ledger(&l, 0, SimTime::ZERO);
        assert_eq!(r.committed, 0);
        assert_eq!(r.success_rate_pct, 0.0);
        assert_eq!(r.blocks, 0);
    }

    #[test]
    fn figure_row_formats() {
        let l = ledger_with(&[(TxStatus::Success, 100)]);
        let r = SimReport::from_ledger(&l, 1, SimTime::ZERO);
        let row = r.figure_row();
        assert!(row.contains("tps") && row.contains("success"));
    }

    #[test]
    fn display_is_complete() {
        let l = ledger_with(&[(TxStatus::Success, 100)]);
        let r = SimReport::from_ledger(&l, 1, SimTime::ZERO);
        let text = r.to_string();
        assert!(text.contains("success throughput"));
        assert!(text.contains("latency"));
        assert!(text.contains("p99"), "percentiles surfaced: {text}");
        assert!(text.contains("blocks"));
    }

    #[test]
    fn cut_reason_keys_are_lowercase() {
        assert_eq!(cut_reason_key(CutReason::Count), "count");
        assert_eq!(cut_reason_key(CutReason::Timeout), "timeout");
    }

    #[test]
    fn zero_count_abort_reasons_are_hidden_from_the_breakdown() {
        let l = ledger_with(&[(TxStatus::Success, 100)]);
        let mut r = SimReport::from_ledger(&l, 3, SimTime::ZERO);
        r.early_aborted = 2;
        // A windowed session retracts observations as blocks slide out; a
        // category decremented to zero must not linger in the breakdown.
        r.early_abort_reasons.insert("stale".to_string(), 0);
        r.early_abort_reasons.insert("nope".to_string(), 2);
        let text = r.to_string();
        assert!(text.contains("early aborted       : 2 (nope: 2)"), "{text}");
        assert!(!text.contains("stale"), "{text}");

        // All categories retracted: breakdown collapses to the plain line.
        r.early_abort_reasons.insert("nope".to_string(), 0);
        let text = r.to_string();
        let line = text
            .lines()
            .find(|l| l.starts_with("early aborted"))
            .expect("early-aborted line present");
        assert_eq!(line, "early aborted       : 2", "no empty breakdown");
    }

    #[test]
    fn abort_reason_breakdown_orders_categories_deterministically() {
        use crate::fault::RETRY_EXHAUSTED_REASON;
        let l = ledger_with(&[(TxStatus::Success, 100)]);
        let mut r = SimReport::from_ledger(&l, 9, SimTime::ZERO);
        r.early_aborted = 6;
        r.early_abort_reasons.insert("zz-last".to_string(), 1);
        r.early_abort_reasons
            .insert(RETRY_EXHAUSTED_REASON.to_string(), 3);
        r.early_abort_reasons.insert("aa-first".to_string(), 2);
        let text = r.to_string();
        // BTreeMap iteration: lexicographic, so the rendered breakdown is
        // stable regardless of insertion order, with the retry-exhausted
        // reason slotted alphabetically.
        let expected = format!("(aa-first: 2, {RETRY_EXHAUSTED_REASON}: 3, zz-last: 1)");
        assert!(text.contains(&expected), "{text}");
    }

    #[test]
    fn degradation_section_renders_only_under_faults() {
        let l = ledger_with(&[(TxStatus::Success, 100)]);
        let mut r = SimReport::from_ledger(&l, 1, SimTime::ZERO);
        assert!(r.degradation.is_trivial());
        assert!(!r.to_string().contains("degradation"));

        r.degradation.retries = 4;
        r.degradation.timeouts = 5;
        r.degradation.retry_exhausted = 1;
        r.degradation.degraded_success = 3;
        r.degradation.windows.push(FaultWindowStats {
            label: "outage org0 0.0s+2.0s".to_string(),
            submitted: 10,
            successes: 7,
            success_rate_pct: 70.0,
            avg_latency_s: 0.5,
        });
        let text = r.to_string();
        assert!(text.contains("degradation         : retries 4 timeouts 5 exhausted 1"));
        assert!(text.contains("degraded success  : 3"));
        assert!(text.contains("window [outage org0 0.0s+2.0s]: 7/10 ok (70.0 %)"));
    }
}
