//! Client workers and endorser selection.
//!
//! Clients are Caliper-style workers: each organization runs
//! `clients_per_org` workers, transactions are assigned round-robin within
//! the invoking organization, and each worker serializes its CPU work
//! (proposal building, response verification, transaction assembly) through
//! a FIFO queue — which is exactly what saturates when one organization
//! invokes 70 % of the load and what the *client resource boost*
//! recommendation fixes.
//!
//! Endorser selection follows Fabric client SDK practice: pick a *minimal*
//! set of organizations satisfying the endorsement policy, then the
//! least-loaded peer inside each chosen org. The `endorser_skew` knob biases
//! the org choice (Table 2's "endorser dist skew"), concentrating load on the
//! first half of the organizations.

use crate::policy::EndorsementPolicy;
use crate::types::{ClientId, OrgId, PeerId};
use sim_core::dist::DiscreteWeighted;
use sim_core::rng::SimRng;
use sim_core::server::QueueServer;
use sim_core::time::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// Per-organization fleet of client workers with round-robin dispatch.
#[derive(Debug)]
pub struct WorkerFleet {
    workers: Vec<Vec<QueueServer>>,
    next: Vec<usize>,
}

impl WorkerFleet {
    /// `orgs` organizations with `per_org` workers each.
    pub fn new(orgs: usize, per_org: usize) -> Self {
        assert!(orgs >= 1 && per_org >= 1);
        WorkerFleet {
            workers: (0..orgs)
                .map(|_| (0..per_org).map(|_| QueueServer::new()).collect())
                .collect(),
            next: vec![0; orgs],
        }
    }

    /// Grow one organization's fleet (the *client resource boost*).
    pub fn scale_org(&mut self, org: OrgId, factor: usize) {
        let fleet = &mut self.workers[org.0 as usize];
        let target = fleet.len() * factor.max(1);
        while fleet.len() < target {
            fleet.push(QueueServer::new());
        }
    }

    /// Pick the next worker of `org` round-robin.
    pub fn assign(&mut self, org: OrgId) -> ClientId {
        let o = org.0 as usize;
        let idx = self.next[o] % self.workers[o].len();
        self.next[o] += 1;
        ClientId {
            org,
            index: idx as u16,
        }
    }

    /// Queue CPU work on a specific worker; returns `(start, done)`.
    pub fn submit(
        &mut self,
        worker: ClientId,
        arrival: SimTime,
        service: SimDuration,
    ) -> (SimTime, SimTime) {
        self.workers[worker.org.0 as usize][worker.index as usize].submit(arrival, service)
    }

    /// Aggregate busy time of every worker (for utilization reporting).
    pub fn total_busy(&self) -> SimDuration {
        let mut acc = SimDuration::ZERO;
        for fleet in &self.workers {
            for w in fleet {
                acc += w.busy_time();
            }
        }
        acc
    }

    /// Total number of workers.
    pub fn total_workers(&self) -> usize {
        self.workers.iter().map(Vec::len).sum()
    }
}

/// Per-organization endorsing peers with least-loaded dispatch.
#[derive(Debug)]
pub struct EndorserFleet {
    peers: Vec<Vec<QueueServer>>,
    endorsement_counts: Vec<Vec<u64>>,
}

impl EndorserFleet {
    /// `orgs` organizations with `per_org` endorsing peers each.
    pub fn new(orgs: usize, per_org: usize) -> Self {
        assert!(orgs >= 1 && per_org >= 1);
        EndorserFleet {
            peers: (0..orgs)
                .map(|_| (0..per_org).map(|_| QueueServer::new()).collect())
                .collect(),
            endorsement_counts: vec![vec![0; per_org]; orgs],
        }
    }

    /// Queue an endorsement on the least-loaded peer of `org`.
    /// Returns `(peer, start, done)`.
    pub fn submit(
        &mut self,
        org: OrgId,
        arrival: SimTime,
        service: SimDuration,
    ) -> (PeerId, SimTime, SimTime) {
        let fleet = &mut self.peers[org.0 as usize];
        let idx = (0..fleet.len())
            .min_by_key(|&i| (fleet[i].free_at(), i))
            .expect("fleet is non-empty");
        let (start, done) = fleet[idx].submit(arrival, service);
        self.endorsement_counts[org.0 as usize][idx] += 1;
        (
            PeerId {
                org,
                index: idx as u16,
            },
            start,
            done,
        )
    }

    /// Endorsements performed by each peer, flattened as `(peer, count)`.
    pub fn endorsement_counts(&self) -> Vec<(PeerId, u64)> {
        let mut out = Vec::new();
        for (o, counts) in self.endorsement_counts.iter().enumerate() {
            for (i, &c) in counts.iter().enumerate() {
                out.push((
                    PeerId {
                        org: OrgId(o as u16),
                        index: i as u16,
                    },
                    c,
                ));
            }
        }
        out
    }

    /// Aggregate busy time across all endorsing peers.
    pub fn total_busy(&self) -> SimDuration {
        let mut acc = SimDuration::ZERO;
        for fleet in &self.peers {
            for p in fleet {
                acc += p.busy_time();
            }
        }
        acc
    }

    /// Total number of endorsing peers.
    pub fn total_peers(&self) -> usize {
        self.peers.iter().map(Vec::len).sum()
    }
}

/// Chooses which organizations endorse each transaction.
#[derive(Debug)]
pub struct EndorserSelector {
    minimal_sets: Vec<BTreeSet<OrgId>>,
    weights: DiscreteWeighted,
}

impl EndorserSelector {
    /// Build a selector for `policy` with the given skew.
    ///
    /// Each organization `i` carries weight `(1 + skew)^(-i)` and a minimal
    /// satisfying set is weighted by the *product* of its members' weights.
    /// Skew 0 spreads transactions uniformly across the minimal sets; skew 6
    /// reproduces the paper's Experiment 2, where "two of the organizations
    /// endorse far more often than the other two" under policy P2.
    pub fn new(policy: &EndorsementPolicy, _total_orgs: usize, skew: f64) -> Self {
        let minimal_sets = policy.minimal_satisfying_sets();
        assert!(
            !minimal_sets.is_empty(),
            "endorsement policy is unsatisfiable"
        );
        let base = 1.0 + skew.max(0.0);
        let org_weight = |o: &OrgId| -> f64 { base.powi(-(o.0 as i32)) };
        let set_weights: Vec<f64> = minimal_sets
            .iter()
            .map(|s| s.iter().map(org_weight).product())
            .collect();
        EndorserSelector {
            weights: DiscreteWeighted::new(&set_weights),
            minimal_sets,
        }
    }

    /// Sample an endorsing organization set for one transaction.
    pub fn choose(&self, rng: &mut SimRng) -> &BTreeSet<OrgId> {
        &self.minimal_sets[self.weights.sample(rng)]
    }

    /// The minimal satisfying sets the selector draws from.
    pub fn minimal_sets(&self) -> &[BTreeSet<OrgId>] {
        &self.minimal_sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_round_robin_within_org() {
        let mut f = WorkerFleet::new(2, 3);
        let picks: Vec<u16> = (0..5).map(|_| f.assign(OrgId(0)).index).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
        assert_eq!(f.assign(OrgId(1)).index, 0, "separate counter per org");
        assert_eq!(f.total_workers(), 6);
    }

    #[test]
    fn scaling_doubles_one_org_only() {
        let mut f = WorkerFleet::new(2, 5);
        f.scale_org(OrgId(0), 2);
        assert_eq!(f.total_workers(), 15);
        let picks: Vec<u16> = (0..10).map(|_| f.assign(OrgId(0)).index).collect();
        assert_eq!(picks, (0..10).collect::<Vec<u16>>());
    }

    #[test]
    fn worker_queueing_serializes_cpu() {
        let mut f = WorkerFleet::new(1, 1);
        let w = f.assign(OrgId(0));
        let (_, d1) = f.submit(w, SimTime::ZERO, SimDuration::from_millis(10));
        let (s2, _) = f.submit(w, SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(s2, d1, "same worker serializes");
        assert_eq!(f.total_busy(), SimDuration::from_millis(20));
    }

    #[test]
    fn endorsers_least_loaded_first() {
        let mut e = EndorserFleet::new(1, 2);
        let (p1, _, _) = e.submit(OrgId(0), SimTime::ZERO, SimDuration::from_millis(10));
        let (p2, _, _) = e.submit(OrgId(0), SimTime::ZERO, SimDuration::from_millis(10));
        assert_ne!(p1.index, p2.index, "second endorsement goes to idle peer");
        let counts = e.endorsement_counts();
        assert_eq!(counts.iter().map(|(_, c)| *c).sum::<u64>(), 2);
        assert_eq!(e.total_peers(), 2);
        assert_eq!(e.total_busy(), SimDuration::from_millis(20));
    }

    #[test]
    fn selector_without_skew_spreads_p4_evenly() {
        let policy = EndorsementPolicy::p4();
        let sel = EndorserSelector::new(&policy, 4, 0.0);
        assert_eq!(sel.minimal_sets().len(), 6);
        let mut rng = SimRng::seed_from_u64(1);
        let mut org_hits = [0usize; 4];
        for _ in 0..60_000 {
            for org in sel.choose(&mut rng) {
                org_hits[org.0 as usize] += 1;
            }
        }
        for &h in &org_hits {
            assert!(
                (27_000..33_000).contains(&h),
                "each org ≈ half of draws: {org_hits:?}"
            );
        }
    }

    #[test]
    fn selector_with_skew_biases_first_half() {
        let policy = EndorsementPolicy::p2();
        let sel = EndorserSelector::new(&policy, 4, 6.0);
        let mut rng = SimRng::seed_from_u64(2);
        let mut org_hits = [0usize; 4];
        for _ in 0..50_000 {
            for org in sel.choose(&mut rng) {
                org_hits[org.0 as usize] += 1;
            }
        }
        // P2 = And(Or(1,2), Or(3,4)): every set has one of {Org1,Org2} and
        // one of {Org3,Org4}. With skew 6 the product weighting makes Org1
        // and Org3 endorse far more often than Org2 and Org4 (Experiment 2).
        assert_eq!(org_hits[0] + org_hits[1], 50_000);
        assert_eq!(org_hits[2] + org_hits[3], 50_000);
        assert!(
            org_hits[0] > org_hits[1] * 4,
            "Org1 dominates Org2: {org_hits:?}"
        );
        assert!(
            org_hits[2] > org_hits[3] * 4,
            "Org3 dominates Org4: {org_hits:?}"
        );
    }

    #[test]
    fn selector_mandatory_org_always_chosen() {
        let policy = EndorsementPolicy::p1();
        let sel = EndorserSelector::new(&policy, 4, 0.0);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(sel.choose(&mut rng).contains(&OrgId(0)), "Org1 mandatory");
        }
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn unsatisfiable_policy_rejected() {
        // OutOf(3, two orgs) can never be satisfied.
        let policy = EndorsementPolicy::out_of(3, 2);
        let _ = EndorserSelector::new(&policy, 2, 0.0);
    }
}
