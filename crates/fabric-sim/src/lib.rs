//! # fabric-sim
//!
//! A deterministic discrete-event simulator of Hyperledger Fabric's
//! **execute-order-validate (EOV)** transaction pipeline — the substrate on
//! which the BlockOptR evaluation runs (the paper used a real Fabric 2.2
//! cluster; see `DESIGN.md` for the substitution argument).
//!
//! The simulated pipeline mirrors Fabric §2.1 of the paper:
//!
//! 1. **Execution** — clients build proposals and send them to endorsing
//!    peers selected to satisfy the configured [`policy::EndorsementPolicy`].
//!    Each endorser executes the chaincode ([`contract::Contract`]) against
//!    its *currently committed* world state, producing a versioned
//!    [`rwset::ReadWriteSet`].
//! 2. **Ordering** — clients submit endorsed transactions to the ordering
//!    service, which cuts blocks on *block count*, *block timeout*, or *block
//!    bytes* (whichever triggers first) and runs a Raft-style consensus delay.
//!    Pluggable [`scheduler`] strategies reproduce the Fabric++ and
//!    FabricSharp reordering baselines.
//! 3. **Validation** — peers validate endorsement signatures/consistency and
//!    re-check every read against the current world state (MVCC). Stale reads
//!    become `MVCC_READ_CONFLICT`s, changed range results become
//!    `PHANTOM_READ_CONFLICT`s, and mismatched endorsements become
//!    `ENDORSEMENT_POLICY_FAILURE`s. *Every* transaction — valid or not — is
//!    appended to the immutable [`ledger::Ledger`].
//!
//! Endorsers, clients, the orderer and the validator are finite-rate queueing
//! servers, so saturation lengthens the endorse→commit window, which feeds
//! back into more MVCC conflicts — the effect the paper's block-size and
//! rate-control experiments measure.

pub mod client;
pub mod config;
pub mod contract;
pub mod fault;
pub mod ledger;
pub mod orderer;
pub mod policy;
pub mod policy_parse;
pub mod report;
pub mod rwset;
pub mod scheduler;
pub mod sim;
pub mod state;
pub mod types;
pub mod validator;

pub use config::{NetworkConfig, ResourceProfile, SchedulerKind};
pub use contract::{Contract, ExecStatus, TxContext};
pub use fault::{
    DropSpec, FaultSpec, LatencySpike, OutageWindow, RetryPolicy, StallWindow,
    NO_ENDORSEMENT_REASON, RETRY_EXHAUSTED_REASON,
};
pub use ledger::{Block, CutReason, Ledger, TransactionEnvelope, TxStatus};
pub use policy::EndorsementPolicy;
pub use policy_parse::parse_policy;
pub use report::{Degradation, FaultWindowStats, SimReport};
pub use rwset::{RangeRead, ReadItem, ReadWriteSet, Version, WriteItem};
pub use sim::{Simulation, TxRequest};
pub use state::WorldState;
pub use types::{ClientId, Key, OrgId, PeerId, TxId, TxType, Value};
