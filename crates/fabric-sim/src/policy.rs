//! Endorsement policies.
//!
//! Fabric endorsement policies are boolean expressions over organization
//! principals. The paper's experiments use four (§5.1):
//!
//! * `P1 = And(Org1, Or(Org2, Org3, Org4))`
//! * `P2 = And(Or(Org1, Org2), Or(Org3, Org4))`
//! * `P3 = Majority(Org1, …, OrgN)`
//! * `P4 = OutOf(2, Org1, Org2, Org3, Org4)`
//!
//! Clients pick a *minimal satisfying set* of organizations to endorse each
//! transaction; mandatory principals (like `Org1` in P1) therefore receive
//! every transaction and can become bottlenecks — the effect behind the
//! *endorser restructuring* recommendation.

use crate::types::OrgId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A boolean endorsement expression over organizations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndorsementPolicy {
    /// A single organization principal.
    Org(OrgId),
    /// All sub-policies must be satisfied.
    And(Vec<EndorsementPolicy>),
    /// At least one sub-policy must be satisfied.
    Or(Vec<EndorsementPolicy>),
    /// At least `k` of the sub-policies must be satisfied.
    OutOf(usize, Vec<EndorsementPolicy>),
}

impl EndorsementPolicy {
    /// Paper policy `P1 = And(Org1, Or(Org2, Org3, Org4))`.
    pub fn p1() -> Self {
        use EndorsementPolicy::*;
        And(vec![
            Org(OrgId(0)),
            Or(vec![Org(OrgId(1)), Org(OrgId(2)), Org(OrgId(3))]),
        ])
    }

    /// Paper policy `P2 = And(Or(Org1, Org2), Or(Org3, Org4))`.
    pub fn p2() -> Self {
        use EndorsementPolicy::*;
        And(vec![
            Or(vec![Org(OrgId(0)), Org(OrgId(1))]),
            Or(vec![Org(OrgId(2)), Org(OrgId(3))]),
        ])
    }

    /// Paper policy `P3 = Majority(Org1, …, OrgN)`: strictly more than half.
    pub fn p3(n: usize) -> Self {
        use EndorsementPolicy::*;
        let orgs: Vec<_> = (0..n).map(|i| Org(OrgId(i as u16))).collect();
        OutOf(n / 2 + 1, orgs)
    }

    /// Paper policy `P4 = OutOf(2, Org1, Org2, Org3, Org4)`.
    pub fn p4() -> Self {
        use EndorsementPolicy::*;
        OutOf(
            2,
            vec![Org(OrgId(0)), Org(OrgId(1)), Org(OrgId(2)), Org(OrgId(3))],
        )
    }

    /// Generalized `OutOf(k, Org1..OrgN)`.
    pub fn out_of(k: usize, n: usize) -> Self {
        use EndorsementPolicy::*;
        OutOf(k, (0..n).map(|i| Org(OrgId(i as u16))).collect())
    }

    /// Whether endorsements from `orgs` satisfy the policy.
    pub fn satisfied_by(&self, orgs: &BTreeSet<OrgId>) -> bool {
        match self {
            EndorsementPolicy::Org(o) => orgs.contains(o),
            EndorsementPolicy::And(ps) => ps.iter().all(|p| p.satisfied_by(orgs)),
            EndorsementPolicy::Or(ps) => ps.iter().any(|p| p.satisfied_by(orgs)),
            EndorsementPolicy::OutOf(k, ps) => {
                ps.iter().filter(|p| p.satisfied_by(orgs)).count() >= *k
            }
        }
    }

    /// All organizations mentioned anywhere in the policy.
    pub fn orgs(&self) -> BTreeSet<OrgId> {
        let mut out = BTreeSet::new();
        self.collect_orgs(&mut out);
        out
    }

    fn collect_orgs(&self, out: &mut BTreeSet<OrgId>) {
        match self {
            EndorsementPolicy::Org(o) => {
                out.insert(*o);
            }
            EndorsementPolicy::And(ps)
            | EndorsementPolicy::Or(ps)
            | EndorsementPolicy::OutOf(_, ps) => {
                for p in ps {
                    p.collect_orgs(out);
                }
            }
        }
    }

    /// All *minimal* satisfying organization sets (no satisfying proper
    /// subset). Policies in practice mention ≤ a handful of orgs, so the
    /// power-set sweep is cheap and exact.
    pub fn minimal_satisfying_sets(&self) -> Vec<BTreeSet<OrgId>> {
        let orgs: Vec<OrgId> = self.orgs().into_iter().collect();
        let n = orgs.len();
        assert!(n <= 16, "policy mentions too many orgs for exact expansion");
        let mut satisfying: Vec<BTreeSet<OrgId>> = Vec::new();
        for mask in 1u32..(1 << n) {
            let set: BTreeSet<OrgId> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| orgs[i])
                .collect();
            if self.satisfied_by(&set) {
                satisfying.push(set);
            }
        }
        satisfying
            .iter()
            .filter(|s| {
                !satisfying
                    .iter()
                    .any(|other| other.len() < s.len() && other.is_subset(s))
                    && !satisfying
                        .iter()
                        .any(|other| other.len() == s.len() && *other != **s && other.is_subset(s))
            })
            .cloned()
            .collect()
    }

    /// Organizations present in *every* satisfying set — the mandatory
    /// endorsers that become bottlenecks (e.g. `Org1` under P1).
    pub fn mandatory_orgs(&self) -> BTreeSet<OrgId> {
        let sets = self.minimal_satisfying_sets();
        let mut iter = sets.into_iter();
        let Some(first) = iter.next() else {
            return BTreeSet::new();
        };
        iter.fold(first, |acc, s| acc.intersection(&s).copied().collect())
    }

    /// The smallest number of organizations that can satisfy the policy.
    pub fn min_endorsers(&self) -> usize {
        self.minimal_satisfying_sets()
            .iter()
            .map(BTreeSet::len)
            .min()
            .unwrap_or(0)
    }
}

impl fmt::Display for EndorsementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndorsementPolicy::Org(o) => write!(f, "{o}"),
            EndorsementPolicy::And(ps) => {
                f.write_str("And(")?;
                join(f, ps)?;
                f.write_str(")")
            }
            EndorsementPolicy::Or(ps) => {
                f.write_str("Or(")?;
                join(f, ps)?;
                f.write_str(")")
            }
            EndorsementPolicy::OutOf(k, ps) => {
                write!(f, "OutOf({k},")?;
                join(f, ps)?;
                f.write_str(")")
            }
        }
    }
}

fn join(f: &mut fmt::Formatter<'_>, ps: &[EndorsementPolicy]) -> fmt::Result {
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            f.write_str(",")?;
        }
        write!(f, "{p}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u16]) -> BTreeSet<OrgId> {
        ids.iter().map(|&i| OrgId(i)).collect()
    }

    #[test]
    fn p1_requires_org1_plus_one_other() {
        let p = EndorsementPolicy::p1();
        assert!(p.satisfied_by(&set(&[0, 1])));
        assert!(p.satisfied_by(&set(&[0, 3])));
        assert!(!p.satisfied_by(&set(&[0])), "Org1 alone insufficient");
        assert!(!p.satisfied_by(&set(&[1, 2, 3])), "Org1 is mandatory");
    }

    #[test]
    fn p1_mandatory_is_org1() {
        assert_eq!(EndorsementPolicy::p1().mandatory_orgs(), set(&[0]));
        assert_eq!(EndorsementPolicy::p1().min_endorsers(), 2);
    }

    #[test]
    fn p2_needs_one_from_each_pair() {
        let p = EndorsementPolicy::p2();
        assert!(p.satisfied_by(&set(&[0, 2])));
        assert!(p.satisfied_by(&set(&[1, 3])));
        assert!(!p.satisfied_by(&set(&[0, 1])));
        assert!(p.mandatory_orgs().is_empty());
        assert_eq!(p.minimal_satisfying_sets().len(), 4);
    }

    #[test]
    fn p3_majority_threshold() {
        let p = EndorsementPolicy::p3(4);
        assert!(p.satisfied_by(&set(&[0, 1, 2])));
        assert!(!p.satisfied_by(&set(&[0, 1])));
        let p2 = EndorsementPolicy::p3(2);
        assert!(p2.satisfied_by(&set(&[0, 1])));
        assert!(!p2.satisfied_by(&set(&[0])), "majority of 2 is both");
    }

    #[test]
    fn p4_any_two_of_four() {
        let p = EndorsementPolicy::p4();
        assert!(p.satisfied_by(&set(&[2, 3])));
        assert!(!p.satisfied_by(&set(&[2])));
        assert_eq!(p.minimal_satisfying_sets().len(), 6, "C(4,2) = 6");
        assert!(p.mandatory_orgs().is_empty());
    }

    #[test]
    fn minimal_sets_exclude_supersets() {
        let p = EndorsementPolicy::p1();
        let sets = p.minimal_satisfying_sets();
        assert_eq!(sets.len(), 3, "Org1 paired with each of Org2..Org4");
        assert!(sets.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn orgs_lists_every_principal() {
        assert_eq!(EndorsementPolicy::p2().orgs(), set(&[0, 1, 2, 3]));
        assert_eq!(EndorsementPolicy::p3(2).orgs(), set(&[0, 1]));
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(
            EndorsementPolicy::p1().to_string(),
            "And(Org1,Or(Org2,Org3,Org4))"
        );
        assert_eq!(
            EndorsementPolicy::p4().to_string(),
            "OutOf(2,Org1,Org2,Org3,Org4)"
        );
    }

    #[test]
    fn single_org_policy() {
        let p = EndorsementPolicy::Org(OrgId(1));
        assert!(p.satisfied_by(&set(&[1])));
        assert!(!p.satisfied_by(&set(&[0])));
        assert_eq!(p.min_endorsers(), 1);
        assert_eq!(p.mandatory_orgs(), set(&[1]));
    }

    #[test]
    fn out_of_generalized() {
        let p = EndorsementPolicy::out_of(3, 5);
        assert!(p.satisfied_by(&set(&[0, 2, 4])));
        assert!(!p.satisfied_by(&set(&[0, 2])));
        assert_eq!(p.min_endorsers(), 3);
    }
}
