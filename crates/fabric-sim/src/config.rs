//! Network and resource configuration.
//!
//! [`NetworkConfig`] collects everything an experiment can turn: topology,
//! endorsement policy, block-cutting parameters, the block scheduler, client
//! fleet sizing, and the [`ResourceProfile`] service times that calibrate the
//! queueing model against the paper's 6-node Kubernetes testbed
//! (4 vCPU / 9.8 GB VMs, §5).

use crate::policy::EndorsementPolicy;
use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;

/// Which block scheduler the ordering service runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerKind {
    /// Vanilla Fabric: FIFO arrival order within the block.
    #[default]
    Vanilla,
    /// Fabric++-style intra-block conflict-graph reordering with early abort
    /// of transactions that cannot be serialized within the block.
    FabricPlusPlus,
    /// FabricSharp-style OCC reordering (also resolves some inter-block
    /// conflicts), with its documented endorsement-freshness side effect.
    FabricSharp,
}

impl SchedulerKind {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Vanilla => "fabric",
            SchedulerKind::FabricPlusPlus => "fabric++",
            SchedulerKind::FabricSharp => "fabricsharp",
        }
    }
}

/// Service times of the simulated resources.
///
/// Calibrated so the default network sustains roughly 200–250 tps — the
/// regime the paper's testbed exhibits (send rate 300 gives ~85 % success
/// with multi-second latencies; rate control to 100 tps restores ~98 %).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// Client CPU to build/sign one proposal and verify/assemble responses.
    pub client_per_tx: SimDuration,
    /// One-way network delay between any two components.
    pub net_delay: SimDuration,
    /// Base chaincode execution time per endorsement.
    pub endorse_exec_base: SimDuration,
    /// Additional execution time per state access (reads, writes, scan rows).
    pub endorse_exec_per_access: SimDuration,
    /// Fixed ordering-service work per block (leader assembly + Raft round).
    pub order_block_fixed: SimDuration,
    /// Ordering-service work per transaction in a block.
    pub order_per_tx: SimDuration,
    /// Raft replication/broadcast latency per block (not a throughput cost).
    pub raft_delay: SimDuration,
    /// Fixed validation + ledger-write work per block on a peer.
    pub validate_block_fixed: SimDuration,
    /// Validation work per transaction (signature + MVCC checks + state write).
    pub validate_per_tx: SimDuration,
    /// Validation work per read-set item (point reads and range-scan rows) —
    /// large range scans are expensive to re-check at validation.
    pub validate_per_item: SimDuration,
    /// Extra validation work per endorsement signature on a transaction.
    pub validate_per_endorsement: SimDuration,
}

impl ResourceProfile {
    /// Client service time for the `Submit` phase (building and signing one
    /// proposal) — the front 60 % of [`client_per_tx`](Self::client_per_tx).
    pub fn proposal_time(&self) -> SimDuration {
        self.client_per_tx.mul_f64(0.6)
    }

    /// Client service time for the `Assemble` phase (verifying endorsements
    /// and assembling the envelope) — the remaining 40 % of
    /// [`client_per_tx`](Self::client_per_tx).
    pub fn assemble_time(&self) -> SimDuration {
        self.client_per_tx.mul_f64(0.4)
    }
}

impl Default for ResourceProfile {
    fn default() -> Self {
        ResourceProfile {
            client_per_tx: SimDuration::from_micros(40_000),
            net_delay: SimDuration::from_micros(2_500),
            endorse_exec_base: SimDuration::from_micros(12_000),
            endorse_exec_per_access: SimDuration::from_micros(350),
            order_block_fixed: SimDuration::from_micros(300_000),
            order_per_tx: SimDuration::from_micros(250),
            raft_delay: SimDuration::from_micros(60_000),
            validate_block_fixed: SimDuration::from_micros(90_000),
            validate_per_tx: SimDuration::from_micros(1_500),
            validate_per_item: SimDuration::from_micros(300),
            validate_per_endorsement: SimDuration::from_micros(400),
        }
    }
}

/// Full configuration of a simulated Fabric network + client fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of organizations in the consortium.
    pub orgs: usize,
    /// Total endorsing-peer budget, split evenly across organizations
    /// (the paper's fixed 5-worker-node cluster hosts all peers, so adding
    /// organizations thins each org's share).
    pub total_endorser_peers: usize,
    /// Client workers per organization (Caliper runs 10 workers total by
    /// default; the *client resource boost* optimization raises one org's
    /// count).
    pub clients_per_org: usize,
    /// Client resource boost: multiply one organization's client fleet by
    /// the given factor (the paper's Table 4 setting doubles the clients of
    /// the recommended organization).
    pub client_boost: Option<(u16, usize)>,
    /// The channel's endorsement policy.
    pub endorsement_policy: EndorsementPolicy,
    /// Endorser-selection skew (Table 2's "endorser dist skew"): 0 spreads
    /// endorsements uniformly over the policy's minimal satisfying sets;
    /// larger values concentrate them on low-index organizations.
    pub endorser_skew: f64,
    /// Maximum transactions per block (`block_count`).
    pub block_count: usize,
    /// Maximum time the orderer waits before cutting a partial block.
    pub block_timeout: SimDuration,
    /// Maximum serialized bytes per block.
    pub block_bytes: u64,
    /// Block scheduler (vanilla / Fabric++ / FabricSharp).
    pub scheduler: SchedulerKind,
    /// Resource calibration.
    pub resources: ResourceProfile,
    /// Root RNG seed; every run with the same seed and config is identical.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            orgs: 2,
            total_endorser_peers: 10,
            clients_per_org: 5,
            client_boost: None,
            endorsement_policy: EndorsementPolicy::p3(2),
            endorser_skew: 0.0,
            block_count: 100,
            block_timeout: SimDuration::from_secs(1),
            block_bytes: 2 * 1024 * 1024,
            scheduler: SchedulerKind::Vanilla,
            resources: ResourceProfile::default(),
            seed: 42,
        }
    }
}

impl NetworkConfig {
    /// Endorsing peers available to each organization (total budget divided
    /// evenly; at least one per org).
    pub fn endorsers_per_org(&self) -> usize {
        (self.total_endorser_peers / self.orgs.max(1)).max(1)
    }

    /// Total client workers across all organizations.
    pub fn total_clients(&self) -> usize {
        self.clients_per_org * self.orgs
    }

    /// Builder-style override of the endorsement policy.
    pub fn with_policy(mut self, policy: EndorsementPolicy) -> Self {
        self.endorsement_policy = policy;
        self
    }

    /// Builder-style override of the block count.
    pub fn with_block_count(mut self, count: usize) -> Self {
        self.block_count = count;
        self
    }

    /// Builder-style override of the org count (policy unchanged).
    pub fn with_orgs(mut self, orgs: usize) -> Self {
        self.orgs = orgs;
        self
    }

    /// Builder-style override of the scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_network_is_two_org_majority() {
        let c = NetworkConfig::default();
        assert_eq!(c.orgs, 2);
        assert_eq!(c.endorsers_per_org(), 5);
        assert_eq!(c.total_clients(), 10, "matches Caliper's 10 workers");
        assert_eq!(c.block_count, 100);
        assert_eq!(c.scheduler, SchedulerKind::Vanilla);
    }

    #[test]
    fn peer_budget_splits_across_orgs() {
        let c = NetworkConfig::default().with_orgs(4);
        assert_eq!(c.endorsers_per_org(), 2, "same cluster, thinner share");
        let c8 = NetworkConfig {
            orgs: 16,
            ..NetworkConfig::default()
        };
        assert_eq!(c8.endorsers_per_org(), 1, "never drops below one");
    }

    #[test]
    fn builders_override_fields() {
        let c = NetworkConfig::default()
            .with_policy(EndorsementPolicy::p4())
            .with_block_count(300)
            .with_scheduler(SchedulerKind::FabricPlusPlus)
            .with_seed(7);
        assert_eq!(c.endorsement_policy, EndorsementPolicy::p4());
        assert_eq!(c.block_count, 300);
        assert_eq!(c.scheduler, SchedulerKind::FabricPlusPlus);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn scheduler_labels() {
        assert_eq!(SchedulerKind::Vanilla.label(), "fabric");
        assert_eq!(SchedulerKind::FabricPlusPlus.label(), "fabric++");
        assert_eq!(SchedulerKind::FabricSharp.label(), "fabricsharp");
    }

    #[test]
    fn config_serializes_round_trip() {
        let c = NetworkConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: NetworkConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
