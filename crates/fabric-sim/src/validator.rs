//! Block validation and commit (the V of EOV).
//!
//! Validation walks a block's transactions in their scheduled order and, for
//! each one:
//!
//! 1. checks endorsement consistency (mismatched endorser read-write sets or
//!    scheduler-imposed policy failures → `ENDORSEMENT_POLICY_FAILURE`);
//! 2. honors scheduler early-aborts (`MVCC_READ_CONFLICT` without state
//!    application);
//! 3. re-checks every point read's version against the *current* world state
//!    (stale → `MVCC_READ_CONFLICT`);
//! 4. re-executes every range scan (changed key set → `PHANTOM_READ_CONFLICT`,
//!    changed versions → `MVCC_READ_CONFLICT`);
//! 5. on success, applies the write set at version `(block, position)`.
//!
//! Because writes apply immediately, a later transaction in the same block
//! that read a key an earlier one wrote fails — Fabric's *intra-block*
//! conflict; conflicts against earlier blocks are *inter-block* (the paper's
//! §2.1 distinction, which drives the proximity-correlation metric).

use crate::ledger::TxStatus;
use crate::rwset::ReadWriteSet;
use crate::state::WorldState;
use serde::{Deserialize, Serialize};

/// Per-transaction validation input flags.
#[derive(Debug, Clone)]
pub struct TxToValidate<'a> {
    /// The proposal read-write set.
    pub rwset: &'a ReadWriteSet,
    /// Endorser read-write sets disagreed when the client assembled the tx.
    pub endorse_mismatch: bool,
    /// The block scheduler aborted this transaction.
    pub sched_aborted: bool,
    /// The block scheduler flagged this transaction's endorsements.
    pub sched_policy_failed: bool,
}

/// Validation verdict plus conflict-locality classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Commit status.
    pub status: TxStatus,
    /// For read conflicts: the stale key's fresh version was written in the
    /// same block (`true`) or an earlier block (`false`).
    pub intra_block: bool,
}

/// Validate and commit one block's transactions, in order.
///
/// `stale_tolerance_blocks` is 0 for vanilla Fabric and Fabric++; FabricSharp
/// tolerates reads that are stale by at most one block (its OCC reordering
/// commits them under an equivalent serial schedule).
pub fn validate_block(
    state: &mut WorldState,
    block_number: u64,
    txs: &[TxToValidate<'_>],
    stale_tolerance_blocks: u64,
) -> Vec<Verdict> {
    let mut verdicts = Vec::with_capacity(txs.len());
    for (pos, tx) in txs.iter().enumerate() {
        let verdict = validate_one(state, block_number, tx, stale_tolerance_blocks);
        if verdict.status == TxStatus::Success {
            state.apply(
                &tx.rwset.writes,
                crate::rwset::Version::new(block_number, pos as u32),
            );
        }
        verdicts.push(verdict);
    }
    verdicts
}

fn validate_one(
    state: &WorldState,
    block_number: u64,
    tx: &TxToValidate<'_>,
    tolerance: u64,
) -> Verdict {
    if tx.endorse_mismatch || tx.sched_policy_failed {
        return Verdict {
            status: TxStatus::EndorsementPolicyFailure,
            intra_block: false,
        };
    }
    if tx.sched_aborted {
        return Verdict {
            status: TxStatus::MvccReadConflict,
            intra_block: true,
        };
    }

    // Point reads.
    for read in &tx.rwset.reads {
        let current = state.version_of(&read.key);
        if current == read.version {
            continue;
        }
        // Stale but present in both: FabricSharp tolerates small staleness —
        // the conflicting write must be in the immediately preceding
        // tolerance window AND the observed version at most `tolerance`
        // versions behind it (one reorderable hop).
        if let (Some(cur), Some(seen)) = (current, read.version) {
            if tolerance > 0
                && cur.block < block_number
                && block_number - cur.block <= tolerance
                && cur.block.saturating_sub(seen.block) <= tolerance
            {
                continue;
            }
            return Verdict {
                status: TxStatus::MvccReadConflict,
                intra_block: cur.block == block_number,
            };
        }
        // Appeared or disappeared: never tolerated.
        let intra = current.map(|c| c.block == block_number).unwrap_or(false);
        return Verdict {
            status: TxStatus::MvccReadConflict,
            intra_block: intra,
        };
    }

    // Range scans: re-execute and compare.
    for rr in &tx.rwset.range_reads {
        let fresh: Vec<(&String, crate::rwset::Version)> = state
            .range(&rr.start, &rr.end)
            .map(|(k, vv)| (k, vv.version))
            .collect();
        if fresh.len() != rr.observed.len()
            || fresh
                .iter()
                .zip(rr.observed.iter())
                .any(|((fk, _), (ok, _))| *fk != ok)
        {
            return Verdict {
                status: TxStatus::PhantomReadConflict,
                intra_block: false,
            };
        }
        for ((_, fresh_v), (_, seen_v)) in fresh.iter().zip(rr.observed.iter()) {
            if fresh_v != seen_v {
                let tolerated = tolerance > 0
                    && fresh_v.block < block_number
                    && block_number - fresh_v.block <= tolerance;
                if !tolerated {
                    return Verdict {
                        status: TxStatus::MvccReadConflict,
                        intra_block: fresh_v.block == block_number,
                    };
                }
            }
        }
    }

    Verdict {
        status: TxStatus::Success,
        intra_block: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::Version;
    use crate::types::Value;

    fn read_tx(key: &str, version: Option<Version>) -> ReadWriteSet {
        let mut rw = ReadWriteSet::new();
        rw.record_read(key.to_string(), version);
        rw
    }

    fn update_tx(key: &str, version: Option<Version>, value: i64) -> ReadWriteSet {
        let mut rw = read_tx(key, version);
        rw.record_write(key.to_string(), Some(Value::Int(value)));
        rw
    }

    fn plain(rwset: &ReadWriteSet) -> TxToValidate<'_> {
        TxToValidate {
            rwset,
            endorse_mismatch: false,
            sched_aborted: false,
            sched_policy_failed: false,
        }
    }

    fn seeded() -> WorldState {
        let mut s = WorldState::new();
        s.seed("k".into(), Value::Int(0));
        s
    }

    #[test]
    fn fresh_read_commits() {
        let mut state = seeded();
        let rw = update_tx("k", Some(Version::new(0, 0)), 1);
        let v = validate_block(&mut state, 1, &[plain(&rw)], 0);
        assert_eq!(v[0].status, TxStatus::Success);
        assert_eq!(state.version_of("k"), Some(Version::new(1, 0)));
        assert_eq!(state.get("k").unwrap().value, Value::Int(1));
    }

    #[test]
    fn intra_block_conflict_second_updater_fails() {
        let mut state = seeded();
        let a = update_tx("k", Some(Version::new(0, 0)), 1);
        let b = update_tx("k", Some(Version::new(0, 0)), 2);
        let v = validate_block(&mut state, 1, &[plain(&a), plain(&b)], 0);
        assert_eq!(v[0].status, TxStatus::Success);
        assert_eq!(v[1].status, TxStatus::MvccReadConflict);
        assert!(v[1].intra_block, "conflicting write is in the same block");
        assert_eq!(
            state.get("k").unwrap().value,
            Value::Int(1),
            "loser not applied"
        );
    }

    #[test]
    fn inter_block_conflict_classified() {
        let mut state = seeded();
        let a = update_tx("k", Some(Version::new(0, 0)), 1);
        validate_block(&mut state, 1, &[plain(&a)], 0);
        // Endorsed before block 1 committed, validated in block 2.
        let stale = read_tx("k", Some(Version::new(0, 0)));
        let v = validate_block(&mut state, 2, &[plain(&stale)], 0);
        assert_eq!(v[0].status, TxStatus::MvccReadConflict);
        assert!(!v[0].intra_block);
    }

    #[test]
    fn sharp_tolerates_one_block_staleness() {
        let mut state = seeded();
        let a = update_tx("k", Some(Version::new(0, 0)), 1);
        validate_block(&mut state, 1, &[plain(&a)], 1);
        let stale = read_tx("k", Some(Version::new(0, 0)));
        let v = validate_block(&mut state, 2, &[plain(&stale)], 1);
        assert_eq!(v[0].status, TxStatus::Success, "1-block stale tolerated");
        // But two blocks of staleness is too much.
        let b = update_tx("k", Some(Version::new(1, 0)), 2);
        validate_block(&mut state, 3, &[plain(&b)], 1);
        let very_stale = read_tx("k", Some(Version::new(0, 0)));
        let v = validate_block(&mut state, 4, &[plain(&very_stale)], 1);
        assert_eq!(v[0].status, TxStatus::MvccReadConflict);
    }

    #[test]
    fn missing_key_appearing_is_conflict_even_for_sharp() {
        let mut state = WorldState::new();
        let creator = {
            let mut rw = ReadWriteSet::new();
            rw.record_write("new".into(), Some(Value::Int(1)));
            rw
        };
        validate_block(&mut state, 1, &[plain(&creator)], 1);
        let read_absent = read_tx("new", None);
        let v = validate_block(&mut state, 2, &[plain(&read_absent)], 1);
        assert_eq!(v[0].status, TxStatus::MvccReadConflict);
    }

    #[test]
    fn phantom_detected_on_key_set_change() {
        let mut state = WorldState::new();
        state.seed("r/a".into(), Value::Unit);
        // Scan observed only r/a.
        let mut scan = ReadWriteSet::new();
        scan.record_range(
            "r/".into(),
            "r/~".into(),
            vec![("r/a".into(), Version::new(0, 0))],
        );
        // Meanwhile a new key appears in the range.
        let mut insert = ReadWriteSet::new();
        insert.record_write("r/b".into(), Some(Value::Unit));
        validate_block(&mut state, 1, &[plain(&insert)], 0);
        let v = validate_block(&mut state, 2, &[plain(&scan)], 0);
        assert_eq!(v[0].status, TxStatus::PhantomReadConflict);
    }

    #[test]
    fn range_version_change_is_mvcc_not_phantom() {
        let mut state = WorldState::new();
        state.seed("r/a".into(), Value::Int(0));
        let mut scan = ReadWriteSet::new();
        scan.record_range(
            "r/".into(),
            "r/~".into(),
            vec![("r/a".into(), Version::new(0, 0))],
        );
        let upd = update_tx("r/a", Some(Version::new(0, 0)), 5);
        validate_block(&mut state, 1, &[plain(&upd)], 0);
        let v = validate_block(&mut state, 2, &[plain(&scan)], 0);
        assert_eq!(v[0].status, TxStatus::MvccReadConflict);
        assert!(!v[0].intra_block);
    }

    #[test]
    fn endorse_mismatch_is_policy_failure() {
        let mut state = seeded();
        let rw = read_tx("k", Some(Version::new(0, 0)));
        let tx = TxToValidate {
            rwset: &rw,
            endorse_mismatch: true,
            sched_aborted: false,
            sched_policy_failed: false,
        };
        let v = validate_block(&mut state, 1, &[tx], 0);
        assert_eq!(v[0].status, TxStatus::EndorsementPolicyFailure);
    }

    #[test]
    fn scheduler_abort_is_mvcc_without_application() {
        let mut state = seeded();
        let rw = update_tx("k", Some(Version::new(0, 0)), 9);
        let tx = TxToValidate {
            rwset: &rw,
            endorse_mismatch: false,
            sched_aborted: true,
            sched_policy_failed: false,
        };
        let v = validate_block(&mut state, 1, &[tx], 0);
        assert_eq!(v[0].status, TxStatus::MvccReadConflict);
        assert_eq!(state.get("k").unwrap().value, Value::Int(0), "not applied");
    }

    #[test]
    fn deleted_key_read_is_conflict() {
        let mut state = seeded();
        let mut deleter = ReadWriteSet::new();
        deleter.record_read("k".into(), Some(Version::new(0, 0)));
        deleter.record_write("k".into(), None);
        validate_block(&mut state, 1, &[plain(&deleter)], 0);
        let stale = read_tx("k", Some(Version::new(0, 0)));
        let v = validate_block(&mut state, 2, &[plain(&stale)], 1);
        assert_eq!(
            v[0].status,
            TxStatus::MvccReadConflict,
            "Some→None not tolerated even by sharp"
        );
    }

    #[test]
    fn read_only_blocks_leave_state_untouched() {
        let mut state = seeded();
        let rw = read_tx("k", Some(Version::new(0, 0)));
        let v = validate_block(&mut state, 1, &[plain(&rw), plain(&rw)], 0);
        assert!(v.iter().all(|x| x.status == TxStatus::Success));
        assert_eq!(state.version_of("k"), Some(Version::new(0, 0)));
    }
}
