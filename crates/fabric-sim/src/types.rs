//! Identifiers and values shared across the simulated network.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A world-state key. Keys are plain strings, namespaced per chaincode by a
/// `"namespace/"` prefix (Fabric scopes each chaincode's state the same way).
pub type Key = String;

/// An interned identifier: contract, activity, and namespace names are
/// shared `Arc<str>`s, so schedule rewrites, request clones, and committed
/// transaction envelopes copy a pointer instead of re-allocating the same
/// handful of strings millions of times (the simulator's hot path).
pub type Name = std::sync::Arc<str>;

/// Intern a name: repeated calls with equal strings return clones of one
/// shared allocation. The table is process-wide and only ever grows —
/// workloads draw from a small fixed vocabulary of contract and activity
/// names, so this stays tiny. Call sites that already hold an `Arc<str>`
/// should clone it directly instead.
pub fn intern(name: &str) -> Name {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<BTreeSet<Name>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut names = table.lock().expect("intern table lock");
    match names.get(name) {
        Some(existing) => existing.clone(),
        None => {
            let fresh: Name = std::sync::Arc::from(name);
            names.insert(fresh.clone());
            fresh
        }
    }
}

/// Build the namespaced world-state key `"{namespace}/{key}"` with a single
/// exactly-sized allocation (the per-access `format!` this replaces showed
/// up in simulator profiles).
pub fn qualified_key(namespace: &str, key: &str) -> Key {
    let mut out = String::with_capacity(namespace.len() + 1 + key.len());
    out.push_str(namespace);
    out.push('/');
    out.push_str(key);
    out
}

/// An organization in the consortium (`Org1`, `Org2`, …: 1-based display).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct OrgId(pub u16);

impl OrgId {
    /// Display name used by policies and logs (`Org1` for index 0).
    pub fn name(self) -> String {
        format!("Org{}", self.0 + 1)
    }
}

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Org{}", self.0 + 1)
    }
}

/// An endorsing peer, identified by its organization and index within it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PeerId {
    /// Owning organization.
    pub org: OrgId,
    /// Peer index within the organization.
    pub index: u16,
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}.{}", self.index, self.org)
    }
}

/// A client worker (Caliper-style), identified by its organization and index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId {
    /// Organization the client is registered with.
    pub org: OrgId,
    /// Worker index within the organization.
    pub index: u16,
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}.{}", self.index, self.org)
    }
}

/// A transaction identifier, unique within a simulation run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TxId(pub u64);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// Transaction type, derived from the read-write set exactly as the paper's
/// attribute (8): `read`, `write`, `update`, `range read`, `delete`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TxType {
    /// Only reads, no writes, no range scans.
    Read,
    /// Writes keys it did not read (blind write / insert).
    Write,
    /// Reads and writes an overlapping key set.
    Update,
    /// Contains at least one range scan (and no writes/deletes).
    RangeRead,
    /// Deletes at least one key.
    Delete,
}

impl fmt::Display for TxType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxType::Read => "read",
            TxType::Write => "write",
            TxType::Update => "update",
            TxType::RangeRead => "range_read",
            TxType::Delete => "delete",
        };
        f.write_str(s)
    }
}

/// A world-state value.
///
/// Contracts store counters, strings, records and arrays of records; the
/// variants cover everything the six evaluation contracts need while keeping
/// values comparable and serializable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Unit marker (e.g. "key exists" flags).
    Unit,
    /// Signed integer (counters, vote tallies, play counts).
    Int(i64),
    /// UTF-8 string (status fields, metadata).
    Str(String),
    /// Ordered list (e.g. the LAP per-employee application array).
    List(Vec<Value>),
    /// String-keyed record (e.g. a loan application structure).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Integer view, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// List view, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Map view, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Rough serialized size in bytes, used for block-bytes cutting.
    pub fn approx_size(&self) -> u64 {
        match self {
            Value::Unit => 1,
            Value::Int(_) => 8,
            Value::Str(s) => s.len() as u64,
            Value::List(items) => 8 + items.iter().map(Value::approx_size).sum::<u64>(),
            Value::Map(m) => {
                8 + m
                    .iter()
                    .map(|(k, v)| k.len() as u64 + v.approx_size())
                    .sum::<u64>()
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => f.write_str(s),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{k}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn org_and_peer_display() {
        assert_eq!(OrgId(0).to_string(), "Org1");
        assert_eq!(OrgId(3).name(), "Org4");
        let p = PeerId {
            org: OrgId(1),
            index: 2,
        };
        assert_eq!(p.to_string(), "peer2.Org2");
        let c = ClientId {
            org: OrgId(0),
            index: 7,
        };
        assert_eq!(c.to_string(), "client7.Org1");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Str("hi".into()).as_str(), Some("hi"));
        let l = Value::List(vec![Value::Int(1)]);
        assert_eq!(l.as_list().map(|s| s.len()), Some(1));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), Value::Int(1));
        assert!(Value::Map(m).as_map().is_some());
    }

    #[test]
    fn value_sizes_are_monotone() {
        let small = Value::Str("ab".into());
        let big = Value::List(vec![small.clone(), Value::Int(1), Value::Str("xyz".into())]);
        assert!(big.approx_size() > small.approx_size());
        assert_eq!(Value::Unit.approx_size(), 1);
    }

    #[test]
    fn value_display_is_compact() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Int(3));
        let v = Value::List(vec![Value::Map(m), Value::Str("s".into())]);
        assert_eq!(v.to_string(), "[{k:3},s]");
    }

    #[test]
    fn tx_type_display_matches_paper_vocabulary() {
        assert_eq!(TxType::Read.to_string(), "read");
        assert_eq!(TxType::RangeRead.to_string(), "range_read");
        assert_eq!(TxType::Update.to_string(), "update");
        assert_eq!(TxType::Write.to_string(), "write");
        assert_eq!(TxType::Delete.to_string(), "delete");
    }

    #[test]
    fn intern_shares_one_allocation() {
        let a = intern("play");
        let b = intern("play");
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        let c = intern("pause");
        assert_eq!(&*c, "pause");
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn qualified_key_matches_format() {
        assert_eq!(qualified_key("kv", "counter"), "kv/counter");
        assert_eq!(qualified_key("", "k"), "/k");
        assert_eq!(qualified_key("ns", ""), "ns/");
    }

    #[test]
    fn value_from_conversions() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(String::from("t")), Value::Str("t".into()));
    }
}
