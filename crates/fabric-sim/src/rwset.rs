//! Read-write sets with MVCC versions.
//!
//! Endorsers record every state access during simulated chaincode execution.
//! The validator later re-checks the recorded versions against the committed
//! world state — the mechanism behind Fabric's MVCC read conflicts and
//! phantom read conflicts (paper §2.1).

use crate::types::{Key, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The MVCC version of a committed value: the block height and the position
/// of the writing transaction within that block (Fabric's `(blockNum, txNum)`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Version {
    /// Block height of the write.
    pub block: u64,
    /// Index of the writing transaction within the block.
    pub tx: u32,
}

impl Version {
    /// Construct a version.
    pub fn new(block: u64, tx: u32) -> Self {
        Version { block, tx }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.tx)
    }
}

/// One key read, with the version observed at execution time
/// (`None` when the key did not exist).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReadItem {
    /// Key that was read.
    pub key: Key,
    /// Version observed (None = key absent).
    pub version: Option<Version>,
}

/// One key written (`None` value = delete).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WriteItem {
    /// Key being written.
    pub key: Key,
    /// New value, or `None` for a delete.
    pub value: Option<Value>,
}

impl WriteItem {
    /// Whether this write is a deletion.
    pub fn is_delete(&self) -> bool {
        self.value.is_none()
    }
}

/// A range scan: the half-open key interval and the exact result observed at
/// execution time. Validation re-runs the scan; a different key set is a
/// phantom read conflict, a changed version of a returned key is a plain MVCC
/// read conflict.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RangeRead {
    /// Inclusive start of the scanned interval.
    pub start: Key,
    /// Exclusive end of the scanned interval.
    pub end: Key,
    /// `(key, version)` pairs the scan returned during execution.
    pub observed: Vec<(Key, Version)>,
}

/// The complete read-write set produced by one endorsement execution.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReadWriteSet {
    /// Point reads with observed versions.
    pub reads: Vec<ReadItem>,
    /// Writes (and deletes) in execution order.
    pub writes: Vec<WriteItem>,
    /// Range scans with observed result sets.
    pub range_reads: Vec<RangeRead>,
}

impl ReadWriteSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a point read (first-read-wins: Fabric keeps the first observed
    /// version if a key is read twice in one execution).
    pub fn record_read(&mut self, key: Key, version: Option<Version>) {
        if !self.reads.iter().any(|r| r.key == key) {
            self.reads.push(ReadItem { key, version });
        }
    }

    /// Record a write; a later write to the same key replaces the earlier
    /// (last-write-wins within a transaction, as in Fabric's write set).
    pub fn record_write(&mut self, key: Key, value: Option<Value>) {
        if let Some(existing) = self.writes.iter_mut().find(|w| w.key == key) {
            existing.value = value;
        } else {
            self.writes.push(WriteItem { key, value });
        }
    }

    /// Record a range scan result.
    pub fn record_range(&mut self, start: Key, end: Key, observed: Vec<(Key, Version)>) {
        self.range_reads.push(RangeRead {
            start,
            end,
            observed,
        });
    }

    /// Distinct keys read (point reads only).
    pub fn read_keys(&self) -> BTreeSet<&str> {
        self.reads.iter().map(|r| r.key.as_str()).collect()
    }

    /// Distinct keys written (including deletes).
    pub fn write_keys(&self) -> BTreeSet<&str> {
        self.writes.iter().map(|w| w.key.as_str()).collect()
    }

    /// Distinct keys accessed in any way (reads, writes, range results).
    pub fn all_keys(&self) -> BTreeSet<&str> {
        let mut keys = self.read_keys();
        keys.extend(self.writes.iter().map(|w| w.key.as_str()));
        for rr in &self.range_reads {
            keys.extend(rr.observed.iter().map(|(k, _)| k.as_str()));
        }
        keys
    }

    /// Whether this transaction writes anything.
    pub fn has_writes(&self) -> bool {
        !self.writes.is_empty()
    }

    /// Whether this transaction deletes anything.
    pub fn has_deletes(&self) -> bool {
        self.writes.iter().any(WriteItem::is_delete)
    }

    /// Whether the point-read and write key sets overlap (an "update").
    pub fn reads_overlap_writes(&self) -> bool {
        let writes = self.write_keys();
        self.reads.iter().any(|r| writes.contains(r.key.as_str()))
    }

    /// Rough serialized size in bytes (keys + values + versions), used for
    /// block-bytes cutting.
    pub fn approx_size(&self) -> u64 {
        let reads: u64 = self.reads.iter().map(|r| r.key.len() as u64 + 12).sum();
        let writes: u64 = self
            .writes
            .iter()
            .map(|w| w.key.len() as u64 + w.value.as_ref().map_or(1, Value::approx_size))
            .sum();
        let ranges: u64 = self
            .range_reads
            .iter()
            .map(|rr| {
                rr.start.len() as u64
                    + rr.end.len() as u64
                    + rr.observed
                        .iter()
                        .map(|(k, _)| k.len() as u64 + 12)
                        .sum::<u64>()
            })
            .sum();
        reads + writes + ranges
    }

    /// Derive the paper's transaction-type attribute from the access pattern.
    ///
    /// Priority mirrors the paper's vocabulary: `delete` > `range read` >
    /// `update` (read∩write ≠ ∅) > `write` (blind write) > `read`.
    pub fn tx_type(&self) -> crate::types::TxType {
        use crate::types::TxType;
        if self.has_deletes() {
            TxType::Delete
        } else if !self.range_reads.is_empty() && !self.has_writes() {
            TxType::RangeRead
        } else if self.reads_overlap_writes() {
            TxType::Update
        } else if self.has_writes() {
            TxType::Write
        } else {
            TxType::Read
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TxType;

    fn v(b: u64, t: u32) -> Option<Version> {
        Some(Version::new(b, t))
    }

    #[test]
    fn first_read_wins() {
        let mut rw = ReadWriteSet::new();
        rw.record_read("k".into(), v(1, 0));
        rw.record_read("k".into(), v(2, 0));
        assert_eq!(rw.reads.len(), 1);
        assert_eq!(rw.reads[0].version, v(1, 0));
    }

    #[test]
    fn last_write_wins() {
        let mut rw = ReadWriteSet::new();
        rw.record_write("k".into(), Some(Value::Int(1)));
        rw.record_write("k".into(), Some(Value::Int(2)));
        assert_eq!(rw.writes.len(), 1);
        assert_eq!(rw.writes[0].value, Some(Value::Int(2)));
    }

    #[test]
    fn type_derivation_read() {
        let mut rw = ReadWriteSet::new();
        rw.record_read("a".into(), v(0, 0));
        assert_eq!(rw.tx_type(), TxType::Read);
    }

    #[test]
    fn type_derivation_update_vs_write() {
        let mut rw = ReadWriteSet::new();
        rw.record_read("a".into(), v(0, 0));
        rw.record_write("a".into(), Some(Value::Int(1)));
        assert_eq!(rw.tx_type(), TxType::Update);

        let mut blind = ReadWriteSet::new();
        blind.record_read("a".into(), v(0, 0));
        blind.record_write("b".into(), Some(Value::Int(1)));
        assert_eq!(blind.tx_type(), TxType::Write);
    }

    #[test]
    fn type_derivation_range_and_delete() {
        let mut rw = ReadWriteSet::new();
        rw.record_range("a".into(), "z".into(), vec![]);
        assert_eq!(rw.tx_type(), TxType::RangeRead);

        rw.record_write("k".into(), None);
        assert_eq!(rw.tx_type(), TxType::Delete, "delete outranks range read");
    }

    #[test]
    fn range_read_with_write_is_update_like() {
        // A scan plus a write to a scanned key: classified by write overlap.
        let mut rw = ReadWriteSet::new();
        rw.record_range(
            "a".into(),
            "z".into(),
            vec![("b".into(), Version::new(0, 0))],
        );
        rw.record_write("b".into(), Some(Value::Int(9)));
        assert_eq!(rw.tx_type(), TxType::Write, "no point-read overlap");
    }

    #[test]
    fn key_sets_are_distinct_and_complete() {
        let mut rw = ReadWriteSet::new();
        rw.record_read("r1".into(), None);
        rw.record_write("w1".into(), Some(Value::Unit));
        rw.record_range(
            "a".into(),
            "z".into(),
            vec![("s1".into(), Version::new(0, 0))],
        );
        assert_eq!(rw.read_keys().len(), 1);
        assert_eq!(rw.write_keys().len(), 1);
        let all = rw.all_keys();
        assert!(all.contains("r1") && all.contains("w1") && all.contains("s1"));
    }

    #[test]
    fn approx_size_grows_with_content() {
        let mut small = ReadWriteSet::new();
        small.record_read("k".into(), v(0, 0));
        let mut big = small.clone();
        big.record_write("key2".into(), Some(Value::Str("payload".into())));
        assert!(big.approx_size() > small.approx_size());
    }

    #[test]
    fn version_ordering_follows_block_then_tx() {
        assert!(Version::new(1, 5) < Version::new(2, 0));
        assert!(Version::new(2, 1) < Version::new(2, 2));
        assert_eq!(Version::new(3, 4).to_string(), "3:4");
    }
}
