//! The chaincode execution interface.
//!
//! A [`Contract`] is a deterministic function from `(activity, args, state)`
//! to a [`ReadWriteSet`]. Endorsers call [`Contract::execute`] with a
//! [`TxContext`] that wraps the committed world state *at endorsement time*;
//! every accessed key is recorded with its observed version, exactly like
//! Fabric's shim records `GetState`/`PutState`/`GetStateByRange` calls.
//!
//! Contracts can *early-abort* a transaction (`ExecStatus::Abort`) — the
//! mechanism used by the paper's *process model pruning* optimization, where
//! anomalous transactions are rejected during endorsement so they skip the
//! expensive ordering and validation phases (§3).

use crate::rwset::ReadWriteSet;
use crate::state::WorldState;
use crate::types::{Key, Value};

/// Outcome of a simulated chaincode execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecStatus {
    /// Execution succeeded; the read-write set may be submitted for ordering.
    Ok,
    /// The contract rejected the transaction during endorsement (early abort).
    /// The string is the contract's reason, surfaced in simulation reports.
    Abort(String),
}

impl ExecStatus {
    /// Whether execution succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, ExecStatus::Ok)
    }
}

/// Execution context handed to a contract: a read view of the committed
/// world state plus the accumulating read-write set.
///
/// Writes are buffered in the read-write set (they do **not** become visible
/// to subsequent reads within the same execution — matching Fabric, where
/// `GetState` reads committed state only).
pub struct TxContext<'a> {
    state: &'a WorldState,
    /// The cached `"namespace/"` prefix: qualifying a key is one exactly-
    /// sized allocation, with no per-access namespace formatting.
    prefix: String,
    rwset: ReadWriteSet,
}

impl<'a> TxContext<'a> {
    /// A context over `state`, scoping keys under `namespace`.
    pub fn new(state: &'a WorldState, namespace: &str) -> Self {
        let mut prefix = String::with_capacity(namespace.len() + 1);
        prefix.push_str(namespace);
        prefix.push('/');
        TxContext {
            state,
            prefix,
            rwset: ReadWriteSet::new(),
        }
    }

    fn qualify(&self, key: &str) -> Key {
        let mut out = String::with_capacity(self.prefix.len() + key.len());
        out.push_str(&self.prefix);
        out.push_str(key);
        out
    }

    /// Current namespace (chaincode name).
    pub fn namespace(&self) -> &str {
        &self.prefix[..self.prefix.len() - 1]
    }

    /// Switch namespace for a cross-contract invocation
    /// (`invokeChaincode` in Fabric merges the callee's accesses into the
    /// caller's read-write set on the same channel).
    pub fn set_namespace(&mut self, namespace: &str) {
        self.prefix.clear();
        self.prefix.reserve(namespace.len() + 1);
        self.prefix.push_str(namespace);
        self.prefix.push('/');
    }

    /// Read a key from committed state, recording the observed version.
    pub fn get_state(&mut self, key: &str) -> Option<Value> {
        let qk = self.qualify(key);
        let found = self.state.get(&qk);
        self.rwset.record_read(qk, found.map(|vv| vv.version));
        found.map(|vv| vv.value.clone())
    }

    /// Buffer a write.
    pub fn put_state(&mut self, key: &str, value: Value) {
        let qk = self.qualify(key);
        self.rwset.record_write(qk, Some(value));
    }

    /// Buffer a delete.
    pub fn delete_state(&mut self, key: &str) {
        let qk = self.qualify(key);
        self.rwset.record_write(qk, None);
    }

    /// Range scan `[start, end)` over committed state, recording the observed
    /// result set for phantom detection. Returns `(unqualified key, value)`.
    pub fn get_state_by_range(&mut self, start: &str, end: &str) -> Vec<(String, Value)> {
        self.get_state_by_range_limited(start, end, usize::MAX)
    }

    /// Paginated range scan: at most `limit` rows (Fabric's paginated
    /// `GetStateByRangeWithPagination`). Only the returned page is recorded
    /// in the read set.
    pub fn get_state_by_range_limited(
        &mut self,
        start: &str,
        end: &str,
        limit: usize,
    ) -> Vec<(String, Value)> {
        let qstart = self.qualify(start);
        let qend = self.qualify(end);
        let mut observed = Vec::new();
        let mut out = Vec::new();
        for (k, vv) in self.state.range(&qstart, &qend).take(limit) {
            observed.push((k.clone(), vv.version));
            let short = k.strip_prefix(&self.prefix).unwrap_or(k).to_string();
            out.push((short, vv.value.clone()));
        }
        self.rwset.record_range(qstart, qend, observed);
        out
    }

    /// Number of state accesses so far (used to scale simulated execution
    /// cost with contract work).
    pub fn access_count(&self) -> usize {
        self.rwset.reads.len()
            + self.rwset.writes.len()
            + self
                .rwset
                .range_reads
                .iter()
                .map(|r| r.observed.len().max(1))
                .sum::<usize>()
    }

    /// Finish execution and take the accumulated read-write set.
    pub fn into_rwset(self) -> ReadWriteSet {
        self.rwset
    }
}

/// A deterministic smart contract.
pub trait Contract: Send + Sync {
    /// Chaincode name; doubles as the world-state namespace.
    fn name(&self) -> &str;

    /// Registry identifier — unlike [`name`](Contract::name), distinct for
    /// every *variant* of a chaincode (a pruned rewrite shares its base
    /// contract's namespace but not its identity). Contract registries key
    /// lookups on this, so a serialized scenario can name the exact
    /// implementation to install. Defaults to the chaincode name.
    fn id(&self) -> &str {
        self.name()
    }

    /// Execute `activity(args)` against the given context.
    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus;

    /// The activity names this contract exposes (for documentation and
    /// workload validation).
    fn activities(&self) -> Vec<&'static str>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::Version;

    fn seeded_state() -> WorldState {
        let mut s = WorldState::new();
        s.seed("cc/a".into(), Value::Int(10));
        s.seed("cc/b".into(), Value::Int(20));
        s.seed("other/a".into(), Value::Int(99));
        s
    }

    #[test]
    fn reads_are_namespaced_and_versioned() {
        let state = seeded_state();
        let mut ctx = TxContext::new(&state, "cc");
        assert_eq!(ctx.get_state("a"), Some(Value::Int(10)));
        assert_eq!(ctx.get_state("missing"), None);
        let rw = ctx.into_rwset();
        assert_eq!(rw.reads.len(), 2);
        assert_eq!(rw.reads[0].key, "cc/a");
        assert_eq!(rw.reads[0].version, Some(Version::new(0, 0)));
        assert_eq!(rw.reads[1].version, None, "absent key records None");
    }

    #[test]
    fn writes_are_buffered_not_visible() {
        let state = seeded_state();
        let mut ctx = TxContext::new(&state, "cc");
        ctx.put_state("a", Value::Int(11));
        // Fabric semantics: GetState still sees committed state.
        assert_eq!(ctx.get_state("a"), Some(Value::Int(10)));
        let rw = ctx.into_rwset();
        assert_eq!(rw.writes[0].key, "cc/a");
        assert_eq!(rw.writes[0].value, Some(Value::Int(11)));
    }

    #[test]
    fn namespace_isolation() {
        let state = seeded_state();
        let mut ctx = TxContext::new(&state, "nsX");
        assert_eq!(ctx.get_state("a"), None, "other namespace invisible");
    }

    #[test]
    fn cross_contract_invocation_merges_rwset() {
        let state = seeded_state();
        let mut ctx = TxContext::new(&state, "cc");
        ctx.get_state("a");
        ctx.set_namespace("other");
        assert_eq!(ctx.get_state("a"), Some(Value::Int(99)));
        let rw = ctx.into_rwset();
        let keys: Vec<_> = rw.reads.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, vec!["cc/a", "other/a"]);
    }

    #[test]
    fn range_records_observed_set_and_strips_prefix() {
        let state = seeded_state();
        let mut ctx = TxContext::new(&state, "cc");
        let rows = ctx.get_state_by_range("a", "z");
        assert_eq!(
            rows.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        let rw = ctx.into_rwset();
        assert_eq!(rw.range_reads.len(), 1);
        assert_eq!(rw.range_reads[0].observed.len(), 2);
        assert_eq!(rw.range_reads[0].start, "cc/a");
    }

    #[test]
    fn delete_buffers_tombstone() {
        let state = seeded_state();
        let mut ctx = TxContext::new(&state, "cc");
        ctx.delete_state("b");
        let rw = ctx.into_rwset();
        assert!(rw.writes[0].is_delete());
    }

    #[test]
    fn access_count_reflects_work() {
        let state = seeded_state();
        let mut ctx = TxContext::new(&state, "cc");
        ctx.get_state("a");
        ctx.put_state("c", Value::Unit);
        ctx.get_state_by_range("a", "z");
        assert_eq!(ctx.access_count(), 1 + 1 + 2);
    }

    #[test]
    fn exec_status_helpers() {
        assert!(ExecStatus::Ok.is_ok());
        assert!(!ExecStatus::Abort("why".into()).is_ok());
    }
}
