//! Deterministic fault injection and client-resilience policy.
//!
//! The paper's Table-4 loop measures healthy networks, but its
//! recommendations matter most when peers fail. This module makes failure a
//! *declared, replayable* dimension of a scenario: a [`FaultSpec`] describes
//! availability holes (endorser outage windows, latency spikes, orderer
//! stalls, probabilistic message drops) and a [`RetryPolicy`] describes how
//! the simulated client arm reacts (endorsement timeout, bounded retries,
//! exponential backoff with deterministic jitter).
//!
//! Both types are plain data: times are **f64 seconds** relative to the
//! simulation origin, so spec validation can reject negative or non-finite
//! values *before* they are clamped by [`SimDuration::from_secs_f64`]. The
//! default for both types is a strict no-op — a spec without a `fault` or
//! `retry` field simulates byte-identically to one predating this module
//! (golden-enforced in `tests/fault_injection.rs`).
//!
//! Randomized effects draw from dedicated seed-derived streams
//! ([`DROP_STREAM`], [`BACKOFF_STREAM`]) so enabling them never perturbs the
//! endorser-selection or arrival streams.

use serde::{Deserialize, Serialize};
use sim_core::rng::SimRng;
use sim_core::time::{SimDuration, SimTime};

use crate::types::{OrgId, PeerId};

/// RNG stream label for probabilistic proposal/endorsement drops
/// (derived from the network seed via [`SimRng::derive`]).
pub const DROP_STREAM: u64 = 0xFA17D;

/// RNG stream label for backoff jitter draws.
pub const BACKOFF_STREAM: u64 = 0x0BAC_C0FF;

/// The typed abort reason recorded when a transaction exhausts its retry
/// budget without assembling a full endorsement set.
pub const RETRY_EXHAUSTED_REASON: &str = "endorsement retry budget exhausted";

/// The abort reason recorded when an endorsement fan-out completes with at
/// least one peer never answering (down or dropped) and no chaincode abort
/// to attribute it to — the wait-forever client's outage signature.
pub const NO_ENDORSEMENT_REASON: &str = "no endorsement result";

/// An availability hole for one endorsing peer, or a whole organization.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageWindow {
    /// Organization index (`0`-based, must be `< NetworkConfig::orgs`).
    pub org: u16,
    /// Peer index within the organization; `None` takes the whole org down.
    pub peer: Option<u16>,
    /// Window start, seconds from the simulation origin.
    pub start: f64,
    /// Window length in seconds (must be positive).
    pub duration: f64,
}

/// A window during which every network hop is slowed by a multiplier.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySpike {
    /// Window start, seconds from the simulation origin.
    pub start: f64,
    /// Window length in seconds (must be positive).
    pub duration: f64,
    /// Factor applied to `resources.net_delay` while active (must be ≥ 1).
    pub multiplier: f64,
}

/// A window during which the ordering service accepts no work; cuts that
/// arrive inside the window are serviced when the stall lifts.
#[derive(Debug, Clone, PartialEq)]
pub struct StallWindow {
    /// Window start, seconds from the simulation origin.
    pub start: f64,
    /// Window length in seconds (must be positive).
    pub duration: f64,
}

/// Probabilistic message loss on the client↔endorser path, drawn from the
/// dedicated [`DROP_STREAM`] so results stay seed-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DropSpec {
    /// Probability in `[0, 1)` that a proposal never reaches its endorser.
    pub proposal_rate: f64,
    /// Probability in `[0, 1)` that an endorsement reply is lost in transit.
    pub endorsement_rate: f64,
}

/// Declarative fault plan for one simulation run. The default carries no
/// faults and is guaranteed not to change simulation output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Endorser availability holes.
    pub endorser_outages: Vec<OutageWindow>,
    /// Network-wide latency degradation windows.
    pub latency_spikes: Vec<LatencySpike>,
    /// Ordering-service stall windows (must not overlap each other).
    pub orderer_stalls: Vec<StallWindow>,
    /// Probabilistic proposal/endorsement loss, if any.
    pub drop: Option<DropSpec>,
}

impl FaultSpec {
    /// True when this spec cannot affect a run: no windows and no
    /// effective drop rates. A no-op spec schedules no fault events and
    /// draws nothing from the fault RNG streams.
    pub fn is_noop(&self) -> bool {
        self.endorser_outages.is_empty()
            && self.latency_spikes.is_empty()
            && self.orderer_stalls.is_empty()
            && self
                .drop
                .as_ref()
                .is_none_or(|d| d.proposal_rate <= 0.0 && d.endorsement_rate <= 0.0)
    }
}

/// How the simulated client arm reacts to missing endorsements. The default
/// (`endorse_timeout: None`) reproduces the pre-fault engine exactly: the
/// client waits for the fan-out forever and never retries.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Client-side deadline in seconds for one endorsement fan-out; `None`
    /// disables the timeout arm entirely.
    pub endorse_timeout: Option<f64>,
    /// Total proposal attempts per transaction (first try included, ≥ 1).
    pub max_attempts: usize,
    /// Backoff before the first retry, in seconds.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff on each further retry (≥ 1).
    pub backoff_multiplier: f64,
    /// Jitter fraction in `[0, 1)`: each backoff is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter)` on the dedicated
    /// [`BACKOFF_STREAM`].
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            endorse_timeout: None,
            max_attempts: 1,
            backoff_base: 0.05,
            backoff_multiplier: 2.0,
            jitter: 0.0,
        }
    }
}

impl RetryPolicy {
    /// True when the timeout arm is disabled, i.e. the client behaves
    /// exactly like the pre-fault engine.
    pub fn is_noop(&self) -> bool {
        self.endorse_timeout.is_none()
    }

    /// The endorsement deadline as a simulation duration, if enabled.
    pub fn endorse_timeout_duration(&self) -> Option<SimDuration> {
        self.endorse_timeout.map(SimDuration::from_secs_f64)
    }

    /// Deterministic backoff before retry number `retry_index` (1-based).
    /// Draws from `rng` only when jitter is configured.
    pub fn backoff(&self, retry_index: u32, rng: &mut SimRng) -> SimDuration {
        let base = self.backoff_base.max(0.0);
        let mult = self.backoff_multiplier.max(1.0);
        let mut secs = base * mult.powi(retry_index.saturating_sub(1).min(i32::MAX as u32) as i32);
        if self.jitter > 0.0 {
            secs *= 1.0 + self.jitter * (2.0 * rng.f64() - 1.0);
        }
        SimDuration::from_secs_f64(secs)
    }
}

// ---------------------------------------------------------------------------
// Serialization. All of these are hand-written so missing sub-fields fall
// back to defaults — derived struct deserialization requires every field,
// which would break forward compatibility of user-authored fault JSON.
// ---------------------------------------------------------------------------

impl Serialize for OutageWindow {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("org".to_string(), self.org.to_value()),
            ("peer".to_string(), self.peer.to_value()),
            ("start".to_string(), self.start.to_value()),
            ("duration".to_string(), self.duration.to_value()),
        ])
    }
}

impl Deserialize for OutageWindow {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        if !matches!(v, serde::value::Value::Object(_)) {
            return Err(serde::de::Error::expected("object (OutageWindow)", v));
        }
        let field = |name: &'static str| {
            v.field(name)
                .ok_or_else(|| serde::de::Error::missing_field(name))
        };
        Ok(OutageWindow {
            org: Deserialize::from_value(field("org")?)?,
            peer: match v.field("peer") {
                Some(p) => Deserialize::from_value(p)?,
                None => None,
            },
            start: Deserialize::from_value(field("start")?)?,
            duration: Deserialize::from_value(field("duration")?)?,
        })
    }
}

impl Serialize for LatencySpike {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("start".to_string(), self.start.to_value()),
            ("duration".to_string(), self.duration.to_value()),
            ("multiplier".to_string(), self.multiplier.to_value()),
        ])
    }
}

impl Deserialize for LatencySpike {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        if !matches!(v, serde::value::Value::Object(_)) {
            return Err(serde::de::Error::expected("object (LatencySpike)", v));
        }
        let field = |name: &'static str| {
            v.field(name)
                .ok_or_else(|| serde::de::Error::missing_field(name))
        };
        Ok(LatencySpike {
            start: Deserialize::from_value(field("start")?)?,
            duration: Deserialize::from_value(field("duration")?)?,
            multiplier: Deserialize::from_value(field("multiplier")?)?,
        })
    }
}

impl Serialize for StallWindow {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("start".to_string(), self.start.to_value()),
            ("duration".to_string(), self.duration.to_value()),
        ])
    }
}

impl Deserialize for StallWindow {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        if !matches!(v, serde::value::Value::Object(_)) {
            return Err(serde::de::Error::expected("object (StallWindow)", v));
        }
        let field = |name: &'static str| {
            v.field(name)
                .ok_or_else(|| serde::de::Error::missing_field(name))
        };
        Ok(StallWindow {
            start: Deserialize::from_value(field("start")?)?,
            duration: Deserialize::from_value(field("duration")?)?,
        })
    }
}

impl Serialize for DropSpec {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("proposal_rate".to_string(), self.proposal_rate.to_value()),
            (
                "endorsement_rate".to_string(),
                self.endorsement_rate.to_value(),
            ),
        ])
    }
}

impl Deserialize for DropSpec {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        if !matches!(v, serde::value::Value::Object(_)) {
            return Err(serde::de::Error::expected("object (DropSpec)", v));
        }
        let rate = |name: &'static str| -> Result<f64, serde::de::Error> {
            match v.field(name) {
                Some(r) => Deserialize::from_value(r),
                None => Ok(0.0),
            }
        };
        Ok(DropSpec {
            proposal_rate: rate("proposal_rate")?,
            endorsement_rate: rate("endorsement_rate")?,
        })
    }
}

impl Serialize for FaultSpec {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            (
                "endorser_outages".to_string(),
                self.endorser_outages.to_value(),
            ),
            ("latency_spikes".to_string(), self.latency_spikes.to_value()),
            ("orderer_stalls".to_string(), self.orderer_stalls.to_value()),
            ("drop".to_string(), self.drop.to_value()),
        ])
    }
}

impl Deserialize for FaultSpec {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        if !matches!(v, serde::value::Value::Object(_)) {
            return Err(serde::de::Error::expected("object (FaultSpec)", v));
        }
        // Every sub-field is optional: `{"fault": {}}` is the no-op spec.
        Ok(FaultSpec {
            endorser_outages: match v.field("endorser_outages") {
                Some(x) => Deserialize::from_value(x)?,
                None => Vec::new(),
            },
            latency_spikes: match v.field("latency_spikes") {
                Some(x) => Deserialize::from_value(x)?,
                None => Vec::new(),
            },
            orderer_stalls: match v.field("orderer_stalls") {
                Some(x) => Deserialize::from_value(x)?,
                None => Vec::new(),
            },
            drop: match v.field("drop") {
                Some(x) => Deserialize::from_value(x)?,
                None => None,
            },
        })
    }
}

impl Serialize for RetryPolicy {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            (
                "endorse_timeout".to_string(),
                self.endorse_timeout.to_value(),
            ),
            ("max_attempts".to_string(), self.max_attempts.to_value()),
            ("backoff_base".to_string(), self.backoff_base.to_value()),
            (
                "backoff_multiplier".to_string(),
                self.backoff_multiplier.to_value(),
            ),
            ("jitter".to_string(), self.jitter.to_value()),
        ])
    }
}

impl Deserialize for RetryPolicy {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        if !matches!(v, serde::value::Value::Object(_)) {
            return Err(serde::de::Error::expected("object (RetryPolicy)", v));
        }
        let defaults = RetryPolicy::default();
        Ok(RetryPolicy {
            endorse_timeout: match v.field("endorse_timeout") {
                Some(x) => Deserialize::from_value(x)?,
                None => defaults.endorse_timeout,
            },
            max_attempts: match v.field("max_attempts") {
                Some(x) => Deserialize::from_value(x)?,
                None => defaults.max_attempts,
            },
            backoff_base: match v.field("backoff_base") {
                Some(x) => Deserialize::from_value(x)?,
                None => defaults.backoff_base,
            },
            backoff_multiplier: match v.field("backoff_multiplier") {
                Some(x) => Deserialize::from_value(x)?,
                None => defaults.backoff_multiplier,
            },
            jitter: match v.field("jitter") {
                Some(x) => Deserialize::from_value(x)?,
                None => defaults.jitter,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Compiled runtime form used by the engine.
// ---------------------------------------------------------------------------

/// What one compiled fault window does while active.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultEffect {
    /// Every endorser of the organization is unavailable.
    OrgDown(OrgId),
    /// One specific endorsing peer is unavailable.
    PeerDown(PeerId),
    /// Network delays are multiplied by the factor.
    LatencySpike(f64),
    /// The ordering service accepts no work.
    OrdererStall,
}

impl FaultEffect {
    fn hits(&self, peer: PeerId) -> bool {
        match *self {
            FaultEffect::OrgDown(org) => org == peer.org,
            FaultEffect::PeerDown(p) => p == peer,
            _ => false,
        }
    }
}

/// One fault window lowered to simulation time.
#[derive(Debug, Clone)]
pub(crate) struct CompiledWindow {
    pub(crate) effect: FaultEffect,
    pub(crate) start: SimTime,
    pub(crate) end: SimTime,
}

/// The engine-side fault state: the compiled windows plus a live activity
/// flag per window, toggled by the `FaultStart`/`FaultEnd` DES events. At
/// any event-dispatch instant `t`, `active[i]` equals the static window
/// test `start <= t < end` because `FaultEnd` (priority 0) and `FaultStart`
/// (priority 1) dispatch before every other phase at the same timestamp.
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultRuntime {
    windows: Vec<CompiledWindow>,
    active: Vec<bool>,
}

impl FaultRuntime {
    /// Lowers a validated spec to simulation-time windows. Negative or
    /// non-finite times must have been rejected by spec validation; this
    /// conversion saturates rather than panics.
    pub(crate) fn compile(spec: &FaultSpec) -> Self {
        fn at(secs: f64) -> SimTime {
            SimTime::ZERO + SimDuration::from_secs_f64(secs)
        }
        let mut windows = Vec::new();
        for w in &spec.endorser_outages {
            let org = OrgId(w.org);
            let effect = match w.peer {
                Some(index) => FaultEffect::PeerDown(PeerId { org, index }),
                None => FaultEffect::OrgDown(org),
            };
            windows.push(CompiledWindow {
                effect,
                start: at(w.start),
                end: at(w.start + w.duration),
            });
        }
        for s in &spec.latency_spikes {
            windows.push(CompiledWindow {
                effect: FaultEffect::LatencySpike(s.multiplier),
                start: at(s.start),
                end: at(s.start + s.duration),
            });
        }
        for s in &spec.orderer_stalls {
            windows.push(CompiledWindow {
                effect: FaultEffect::OrdererStall,
                start: at(s.start),
                end: at(s.start + s.duration),
            });
        }
        let active = vec![false; windows.len()];
        FaultRuntime { windows, active }
    }

    /// `(index, start, end)` per window, for event scheduling.
    pub(crate) fn spans(&self) -> impl Iterator<Item = (usize, SimTime, SimTime)> + '_ {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, w)| (i, w.start, w.end))
    }

    /// Marks window `idx` live (dispatched by a `FaultStart` event).
    pub(crate) fn activate(&mut self, idx: usize) {
        if let Some(flag) = self.active.get_mut(idx) {
            *flag = true;
        }
    }

    /// Marks window `idx` over (dispatched by a `FaultEnd` event).
    pub(crate) fn deactivate(&mut self, idx: usize) {
        if let Some(flag) = self.active.get_mut(idx) {
            *flag = false;
        }
    }

    /// Live view: is this peer inside any active outage right now?
    pub(crate) fn peer_down_now(&self, peer: PeerId) -> bool {
        self.windows
            .iter()
            .zip(&self.active)
            .any(|(w, &on)| on && w.effect.hits(peer))
    }

    /// Static view: will this peer be inside an outage at time `t`? Used
    /// at propose time to predict whether a fan-out can complete; agrees
    /// with [`Self::peer_down_now`] at every dispatch instant.
    pub(crate) fn peer_down_at(&self, peer: PeerId, t: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.effect.hits(peer) && w.start <= t && t < w.end)
    }

    /// Product of the multipliers of all active latency spikes, or `None`
    /// when no spike is active — callers must then use the base delay
    /// unmodified so healthy runs avoid any float round-trip.
    pub(crate) fn latency_factor(&self) -> Option<f64> {
        let mut factor = None;
        for (w, &on) in self.windows.iter().zip(&self.active) {
            if let (true, FaultEffect::LatencySpike(m)) = (on, w.effect) {
                factor = Some(factor.unwrap_or(1.0) * m);
            }
        }
        factor
    }

    /// If the orderer is stalled at `now`, the instant the stall lifts.
    pub(crate) fn orderer_release(&self, now: SimTime) -> Option<SimTime> {
        self.windows
            .iter()
            .filter(|w| matches!(w.effect, FaultEffect::OrdererStall))
            .filter(|w| w.start <= now && now < w.end)
            .map(|w| w.end)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn defaults_are_noops() {
        assert!(FaultSpec::default().is_noop());
        assert!(RetryPolicy::default().is_noop());
        assert_eq!(
            FaultRuntime::compile(&FaultSpec::default()).spans().count(),
            0
        );
    }

    #[test]
    fn zero_rate_drop_is_still_a_noop() {
        let spec = FaultSpec {
            drop: Some(DropSpec::default()),
            ..FaultSpec::default()
        };
        assert!(spec.is_noop());
        let spec = FaultSpec {
            drop: Some(DropSpec {
                proposal_rate: 0.1,
                endorsement_rate: 0.0,
            }),
            ..FaultSpec::default()
        };
        assert!(!spec.is_noop());
    }

    #[test]
    fn fault_spec_round_trips_through_json() {
        let spec = FaultSpec {
            endorser_outages: vec![OutageWindow {
                org: 1,
                peer: Some(2),
                start: 0.5,
                duration: 3.0,
            }],
            latency_spikes: vec![LatencySpike {
                start: 1.0,
                duration: 2.0,
                multiplier: 4.0,
            }],
            orderer_stalls: vec![StallWindow {
                start: 2.0,
                duration: 0.25,
            }],
            drop: Some(DropSpec {
                proposal_rate: 0.05,
                endorsement_rate: 0.1,
            }),
        };
        let json = spec.to_value().render(false);
        let back: FaultSpec =
            Deserialize::from_value(&serde_json::value_from_str(&json).expect("parse"))
                .expect("deserialize");
        assert_eq!(back, spec);
    }

    #[test]
    fn empty_object_deserializes_to_no_faults_and_default_retry() {
        let v = serde_json::value_from_str("{}").expect("parse");
        let fault: FaultSpec = Deserialize::from_value(&v).expect("fault");
        assert_eq!(fault, FaultSpec::default());
        let retry: RetryPolicy = Deserialize::from_value(&v).expect("retry");
        assert_eq!(retry, RetryPolicy::default());
    }

    #[test]
    fn retry_policy_round_trips_and_tolerates_partial_json() {
        let policy = RetryPolicy {
            endorse_timeout: Some(1.5),
            max_attempts: 4,
            backoff_base: 0.2,
            backoff_multiplier: 3.0,
            jitter: 0.1,
        };
        let json = policy.to_value().render(false);
        let back: RetryPolicy =
            Deserialize::from_value(&serde_json::value_from_str(&json).expect("parse"))
                .expect("deserialize");
        assert_eq!(back, policy);

        let partial = serde_json::value_from_str(r#"{"endorse_timeout": 2.0, "max_attempts": 3}"#)
            .expect("parse");
        let p: RetryPolicy = Deserialize::from_value(&partial).expect("partial");
        assert_eq!(p.endorse_timeout, Some(2.0));
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.backoff_base, RetryPolicy::default().backoff_base);
    }

    #[test]
    fn backoff_grows_exponentially_and_is_deterministic() {
        let policy = RetryPolicy {
            endorse_timeout: Some(1.0),
            max_attempts: 4,
            backoff_base: 0.1,
            backoff_multiplier: 2.0,
            jitter: 0.0,
        };
        let mut rng = SimRng::derive(42, BACKOFF_STREAM);
        assert_eq!(policy.backoff(1, &mut rng), SimDuration::from_secs_f64(0.1));
        assert_eq!(policy.backoff(2, &mut rng), SimDuration::from_secs_f64(0.2));
        assert_eq!(policy.backoff(3, &mut rng), SimDuration::from_secs_f64(0.4));

        let jittered = RetryPolicy {
            jitter: 0.5,
            ..policy
        };
        let mut a = SimRng::derive(7, BACKOFF_STREAM);
        let mut b = SimRng::derive(7, BACKOFF_STREAM);
        for retry in 1..4 {
            assert_eq!(
                jittered.backoff(retry, &mut a),
                jittered.backoff(retry, &mut b)
            );
        }
    }

    #[test]
    fn compiled_windows_answer_availability_queries() {
        let spec = FaultSpec {
            endorser_outages: vec![
                OutageWindow {
                    org: 0,
                    peer: None,
                    start: 1.0,
                    duration: 2.0,
                },
                OutageWindow {
                    org: 1,
                    peer: Some(3),
                    start: 0.0,
                    duration: 10.0,
                },
            ],
            latency_spikes: vec![LatencySpike {
                start: 5.0,
                duration: 1.0,
                multiplier: 3.0,
            }],
            orderer_stalls: vec![StallWindow {
                start: 2.0,
                duration: 4.0,
            }],
            drop: None,
        };
        let mut rt = FaultRuntime::compile(&spec);
        assert_eq!(rt.spans().count(), 4);

        let org0_peer = PeerId {
            org: OrgId(0),
            index: 4,
        };
        let org1_peer3 = PeerId {
            org: OrgId(1),
            index: 3,
        };
        let org1_peer0 = PeerId {
            org: OrgId(1),
            index: 0,
        };

        // Static window math: half-open [start, end).
        assert!(!rt.peer_down_at(org0_peer, secs(0.5)));
        assert!(rt.peer_down_at(org0_peer, secs(1.0)));
        assert!(rt.peer_down_at(org0_peer, secs(2.9)));
        assert!(!rt.peer_down_at(org0_peer, secs(3.0)));
        assert!(rt.peer_down_at(org1_peer3, secs(5.0)));
        assert!(!rt.peer_down_at(org1_peer0, secs(5.0)));

        // Live flags mirror the windows once toggled.
        assert!(!rt.peer_down_now(org0_peer));
        rt.activate(0);
        assert!(rt.peer_down_now(org0_peer));
        assert!(!rt.peer_down_now(org1_peer0));
        rt.deactivate(0);
        assert!(!rt.peer_down_now(org0_peer));

        assert_eq!(rt.latency_factor(), None);
        rt.activate(2);
        assert_eq!(rt.latency_factor(), Some(3.0));
        rt.deactivate(2);

        assert_eq!(rt.orderer_release(secs(1.0)), None);
        assert_eq!(rt.orderer_release(secs(3.0)), Some(secs(6.0)));
        assert_eq!(rt.orderer_release(secs(6.0)), None);
    }
}
