//! Block schedulers: vanilla FIFO, Fabric++ and FabricSharp baselines.
//!
//! The paper (§6.4) layers BlockOptR on top of two published Fabric
//! optimizations that reorder transactions inside the ordering service to
//! mitigate MVCC read conflicts:
//!
//! * **Fabric++** (Sharma et al., SIGMOD'19) builds an intra-block conflict
//!   graph and re-arranges transactions so that readers of a key precede its
//!   writers; transactions trapped in dependency cycles are aborted early.
//! * **FabricSharp** (Ruan et al., SIGMOD'20) applies OCC-style analysis that
//!   additionally rescues *recent inter-block* conflicts by committing under
//!   a reordered serializable schedule. Its documented side effects
//!   (paper's reference \[13\]): more endorsement-policy failures under load and weaker
//!   results on insert-heavy workloads (scheduling cost grows with the
//!   number of distinct fresh keys).
//!
//! Both algorithms are implemented at the same interface the paper treats
//! them as: a function from a cut block to a (reordered, aborted,
//! policy-failed) partition plus a scheduling cost that the ordering service
//! pays per block — reordering is NP-hard in general and "expensive" (§3),
//! which the cost model reflects.

use crate::config::SchedulerKind;
use crate::rwset::ReadWriteSet;
use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;
use std::collections::{BTreeSet, HashMap};

/// Scheduler view of one buffered transaction.
#[derive(Debug, Clone)]
pub struct SchedTx<'a> {
    /// The proposal's read-write set.
    pub rwset: &'a ReadWriteSet,
    /// Time between the first and last endorsement of the proposal
    /// (FabricSharp's strict freshness check rejects large spreads).
    pub endorse_spread: SimDuration,
}

/// Outcome of scheduling one block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedOutcome {
    /// Positions of the input transactions in the order they should be
    /// committed (indices into the input slice). Contains every transaction,
    /// including aborted/failed ones (they stay in the block, flagged).
    pub order: Vec<usize>,
    /// Transactions the scheduler aborted (will be flagged as MVCC read
    /// conflicts without state application).
    pub aborted: BTreeSet<usize>,
    /// Transactions rejected by strict endorsement-freshness checks
    /// (flagged as endorsement policy failures).
    pub policy_failed: BTreeSet<usize>,
    /// Extra ordering-service work this scheduler spent on the block.
    pub extra_cost: SimDuration,
}

impl SchedOutcome {
    fn passthrough(n: usize) -> Self {
        SchedOutcome {
            order: (0..n).collect(),
            aborted: BTreeSet::new(),
            policy_failed: BTreeSet::new(),
            extra_cost: SimDuration::ZERO,
        }
    }
}

/// FabricSharp rejects endorsements whose collection spread exceeds this
/// (its snapshot-consistency check is stricter than vanilla Fabric's
/// byte-equality check, which our simulator applies separately).
pub const SHARP_MAX_ENDORSE_SPREAD: SimDuration = SimDuration(120_000);

/// Of the spread-violating transactions, FabricSharp's freshness check
/// rejects one in this many (its watermark check samples the dependency
/// graph rather than re-validating every endorsement pair, so the side
/// effect is a measurable EPF increase, not a wholesale rejection).
pub const SHARP_SPREAD_REJECT_EVERY: usize = 8;

/// How many blocks of read staleness FabricSharp's OCC reordering can absorb
/// at validation time (0 for vanilla and Fabric++).
pub fn stale_tolerance_blocks(kind: SchedulerKind) -> u64 {
    match kind {
        SchedulerKind::Vanilla | SchedulerKind::FabricPlusPlus => 0,
        SchedulerKind::FabricSharp => 1,
    }
}

/// Schedule a cut block under the given scheduler.
pub fn schedule_block(kind: SchedulerKind, txs: &[SchedTx<'_>]) -> SchedOutcome {
    match kind {
        SchedulerKind::Vanilla => SchedOutcome::passthrough(txs.len()),
        SchedulerKind::FabricPlusPlus => schedule_conflict_graph(txs, false),
        SchedulerKind::FabricSharp => schedule_conflict_graph(txs, true),
    }
}

/// Conflict-graph reordering shared by Fabric++ and FabricSharp.
///
/// Edge `i → j` means *i must commit before j*: `i` reads a key that `j`
/// writes, so placing `i` first keeps `i`'s read fresh within the block.
/// Kahn's algorithm emits the order; when only cyclic nodes remain, the node
/// with the most unresolved constraints is aborted (Fabric++'s greedy cycle
/// elimination).
fn schedule_conflict_graph(txs: &[SchedTx<'_>], sharp: bool) -> SchedOutcome {
    let n = txs.len();
    let mut policy_failed: BTreeSet<usize> = BTreeSet::new();
    if sharp {
        let mut violations = 0usize;
        for (i, tx) in txs.iter().enumerate() {
            if tx.endorse_spread > SHARP_MAX_ENDORSE_SPREAD {
                violations += 1;
                if violations.is_multiple_of(SHARP_SPREAD_REJECT_EVERY) {
                    policy_failed.insert(i);
                }
            }
        }
    }

    // Index writers of each key among schedulable (non-policy-failed) txs.
    let mut writers: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, tx) in txs.iter().enumerate() {
        if policy_failed.contains(&i) {
            continue;
        }
        for w in &tx.rwset.writes {
            writers.entry(w.key.as_str()).or_default().push(i);
        }
    }

    // Build "reader-before-writer" edges. Range-read result keys count as
    // reads: a same-block writer of an observed key would invalidate the scan.
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut preds: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut edges = 0usize;
    for (i, tx) in txs.iter().enumerate() {
        if policy_failed.contains(&i) {
            continue;
        }
        let mut read_keys: Vec<&str> = tx.rwset.reads.iter().map(|r| r.key.as_str()).collect();
        for rr in &tx.rwset.range_reads {
            read_keys.extend(rr.observed.iter().map(|(k, _)| k.as_str()));
        }
        for key in read_keys {
            if let Some(ws) = writers.get(key) {
                for &j in ws {
                    if j != i && succs[i].insert(j) {
                        preds[j].insert(i);
                        edges += 1;
                    }
                }
            }
        }
    }

    // Kahn's algorithm with greedy cycle breaking.
    let mut order = Vec::with_capacity(n);
    let mut aborted: BTreeSet<usize> = BTreeSet::new();
    let mut emitted = vec![false; n];
    let mut indeg: Vec<usize> = preds.iter().map(BTreeSet::len).collect();
    let mut ready: BTreeSet<usize> = (0..n)
        .filter(|&i| indeg[i] == 0 && !policy_failed.contains(&i))
        .collect();
    let mut remaining: usize = (0..n).filter(|i| !policy_failed.contains(i)).count();

    while remaining > 0 {
        if let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            emitted[i] = true;
            remaining -= 1;
            order.push(i);
            for &j in &succs[i] {
                if !emitted[j] && !aborted.contains(&j) {
                    indeg[j] -= 1;
                    if indeg[j] == 0 && !policy_failed.contains(&j) {
                        ready.insert(j);
                    }
                }
            }
        } else {
            // Every remaining node sits on a cycle; abort the most
            // constrained one (max unresolved in-degree, ties by index).
            let victim = (0..n)
                .filter(|&i| !emitted[i] && !aborted.contains(&i) && !policy_failed.contains(&i))
                .max_by_key(|&i| (indeg[i], std::cmp::Reverse(i)))
                .expect("remaining > 0 implies an unfinished node");
            aborted.insert(victim);
            remaining -= 1;
            for &j in &succs[victim] {
                if !emitted[j] && !aborted.contains(&j) {
                    indeg[j] = indeg[j].saturating_sub(1);
                    if indeg[j] == 0 && !policy_failed.contains(&j) {
                        ready.insert(j);
                    }
                }
            }
        }
    }

    // Aborted and policy-failed transactions stay in the block (flagged), in
    // their arrival positions after the valid schedule.
    for i in 0..n {
        if aborted.contains(&i) || policy_failed.contains(&i) {
            order.push(i);
        }
    }
    debug_assert_eq!(order.len(), n);

    // Cost model: graph construction is linear in accesses, ordering in
    // edges; FabricSharp additionally maintains its OCC key index, which
    // grows with the number of distinct keys in the block (the source of its
    // insert-heavy weakness).
    let accesses: usize = txs
        .iter()
        .map(|t| t.rwset.reads.len() + t.rwset.writes.len())
        .sum();
    let distinct_keys = writers.len();
    let mut cost_us = 12 * (n as u64) + 6 * (edges as u64) + 2 * (accesses as u64);
    if sharp {
        // FabricSharp maintains a persistent OCC key index; every distinct
        // written key in the block updates it. Fresh keys (inserts) are the
        // worst case — the source of its documented insert-heavy weakness.
        cost_us += 2_500 * distinct_keys as u64;
    }
    SchedOutcome {
        order,
        aborted,
        policy_failed,
        extra_cost: SimDuration::from_micros(cost_us),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::Version;
    use crate::types::Value;

    fn rw(reads: &[&str], writes: &[&str]) -> ReadWriteSet {
        let mut s = ReadWriteSet::new();
        for r in reads {
            s.record_read(r.to_string(), Some(Version::new(1, 0)));
        }
        for w in writes {
            s.record_write(w.to_string(), Some(Value::Int(1)));
        }
        s
    }

    fn sched<'a>(rwsets: &'a [ReadWriteSet]) -> Vec<SchedTx<'a>> {
        rwsets
            .iter()
            .map(|r| SchedTx {
                rwset: r,
                endorse_spread: SimDuration::ZERO,
            })
            .collect()
    }

    #[test]
    fn vanilla_preserves_arrival_order() {
        let sets = vec![rw(&["a"], &[]), rw(&[], &["a"]), rw(&["b"], &["b"])];
        let out = schedule_block(SchedulerKind::Vanilla, &sched(&sets));
        assert_eq!(out.order, vec![0, 1, 2]);
        assert!(out.aborted.is_empty());
        assert_eq!(out.extra_cost, SimDuration::ZERO);
    }

    #[test]
    fn plusplus_puts_reader_before_writer() {
        // Arrival order: writer first, reader second — vanilla would fail the
        // reader; Fabric++ flips them.
        let sets = vec![rw(&[], &["k"]), rw(&["k"], &[])];
        let out = schedule_block(SchedulerKind::FabricPlusPlus, &sched(&sets));
        assert_eq!(out.order, vec![1, 0], "reader moved ahead of writer");
        assert!(out.aborted.is_empty());
    }

    #[test]
    fn plusplus_aborts_cycles() {
        // Two updates of the same key: each reads what the other writes → cycle.
        let sets = vec![rw(&["k"], &["k"]), rw(&["k"], &["k"])];
        let out = schedule_block(SchedulerKind::FabricPlusPlus, &sched(&sets));
        assert_eq!(out.aborted.len(), 1, "one victim breaks the 2-cycle");
        assert_eq!(out.order.len(), 2, "victim stays in the block, flagged");
    }

    #[test]
    fn plusplus_chain_is_fully_serializable() {
        // t0 reads a writes b; t1 reads b writes c; t2 reads c writes d.
        // Readers-before-writers order: t0 before nobody needs... build:
        // edge i→j if i reads key j writes: t0 reads a (nobody writes a);
        // t1 reads b, t0 writes b → t1 before t0; t2 reads c, t1 writes c →
        // t2 before t1. Expected order: t2, t1, t0 (no aborts).
        let sets = vec![rw(&["a"], &["b"]), rw(&["b"], &["c"]), rw(&["c"], &["d"])];
        let out = schedule_block(SchedulerKind::FabricPlusPlus, &sched(&sets));
        assert!(out.aborted.is_empty());
        assert_eq!(out.order, vec![2, 1, 0]);
    }

    #[test]
    fn disjoint_txs_keep_arrival_order() {
        let sets = vec![rw(&["a"], &["a"]), rw(&["b"], &["b"]), rw(&["c"], &["c"])];
        let out = schedule_block(SchedulerKind::FabricPlusPlus, &sched(&sets));
        assert_eq!(out.order, vec![0, 1, 2], "no conflicts → stable order");
        assert!(out.aborted.is_empty());
    }

    #[test]
    fn sharp_flags_a_share_of_wide_spreads() {
        // 16 spread-violating transactions → exactly 2 rejected (1 in 8).
        let sets: Vec<ReadWriteSet> = (0..16).map(|i| rw(&[&format!("k{i}")], &[])).collect();
        let mut txs = sched(&sets);
        for t in &mut txs {
            t.endorse_spread = SimDuration::from_millis(500);
        }
        let out = schedule_block(SchedulerKind::FabricSharp, &txs);
        assert_eq!(out.policy_failed.len(), 16 / SHARP_SPREAD_REJECT_EVERY);
        assert_eq!(out.order.len(), 16);
        // Tight spreads are never flagged.
        let tight = sched(&sets);
        let out2 = schedule_block(SchedulerKind::FabricSharp, &tight);
        assert!(out2.policy_failed.is_empty());
    }

    #[test]
    fn plusplus_tolerates_wide_spread() {
        let sets = vec![rw(&["a"], &[])];
        let mut txs = sched(&sets);
        txs[0].endorse_spread = SimDuration::from_secs(10);
        let out = schedule_block(SchedulerKind::FabricPlusPlus, &txs);
        assert!(out.policy_failed.is_empty());
    }

    #[test]
    fn sharp_cost_grows_with_distinct_keys() {
        // Insert-heavy: many distinct fresh keys.
        let inserts: Vec<ReadWriteSet> = (0..50).map(|i| rw(&[], &[&format!("k{i}")])).collect();
        // Update-heavy on a single key: few distinct keys.
        let updates: Vec<ReadWriteSet> = (0..50).map(|_| rw(&["h"], &["h"])).collect();
        let cost_ins = schedule_block(SchedulerKind::FabricSharp, &sched(&inserts)).extra_cost;
        let cost_upd_sharp = schedule_block(SchedulerKind::FabricSharp, &sched(&updates));
        let cost_ins_pp =
            schedule_block(SchedulerKind::FabricPlusPlus, &sched(&inserts)).extra_cost;
        assert!(
            cost_ins > cost_ins_pp,
            "sharp pays extra for distinct keys: {cost_ins} vs {cost_ins_pp}"
        );
        // Update block has ~n² edges, so its cost is edge-driven instead.
        assert!(cost_upd_sharp.extra_cost > SimDuration::ZERO);
    }

    #[test]
    fn stale_tolerance_only_for_sharp() {
        assert_eq!(stale_tolerance_blocks(SchedulerKind::Vanilla), 0);
        assert_eq!(stale_tolerance_blocks(SchedulerKind::FabricPlusPlus), 0);
        assert_eq!(stale_tolerance_blocks(SchedulerKind::FabricSharp), 1);
    }

    #[test]
    fn order_is_a_permutation() {
        let sets: Vec<ReadWriteSet> = (0..20)
            .map(|i| rw(&[&format!("k{}", i % 3)], &[&format!("k{}", (i + 1) % 3)]))
            .collect();
        for kind in [
            SchedulerKind::Vanilla,
            SchedulerKind::FabricPlusPlus,
            SchedulerKind::FabricSharp,
        ] {
            let out = schedule_block(kind, &sched(&sets));
            let mut seen = out.order.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn empty_block_is_fine() {
        let out = schedule_block(SchedulerKind::FabricPlusPlus, &[]);
        assert!(out.order.is_empty());
        assert!(out.aborted.is_empty());
    }
}
