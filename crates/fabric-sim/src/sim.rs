//! The end-to-end simulation driver.
//!
//! [`Simulation`] wires the pieces together and runs a workload (a time-
//! stamped list of [`TxRequest`]s) through the full EOV pipeline:
//!
//! ```text
//! client worker ──► endorsers (execute @ endorsement time) ──► client
//!   (proposal)        per selected org, queued FIFO           (assemble)
//!        │                                                        │
//!        ▼                                                        ▼
//!     Commit ◄── Validate ◄── validator ◄── Raft ◄── orderer (block cutter
//!   (to ledger)  (MVCC)        queue                  + scheduler + assembly)
//! ```
//!
//! The run loop is a [`sim_core::des`] model: each Fabric phase is one
//! `Phase` event kind dispatched by the (private) `Engine` handler, and every
//! stage is a finite-rate queueing server with its service times drawn from
//! the [`ResourceProfile`](crate::config::ResourceProfile). All state reads
//! happen at their simulated instant in global event order, so MVCC
//! conflict windows — endorsement time to commit time — emerge from
//! queueing dynamics rather than being injected. Block cutting is two
//! racing events: a size/byte-triggered cut versus a timeout timer that is
//! cancelled when the size cut wins and re-armed on the first arrival of a
//! fresh buffer.

use crate::client::{EndorserFleet, EndorserSelector, WorkerFleet};
use crate::config::NetworkConfig;
use crate::contract::{Contract, ExecStatus, TxContext};
use crate::ledger::{Block, CutReason, Ledger, TransactionEnvelope, TxStatus};
use crate::orderer::{ArrivalOutcome, BlockCutter, Cut};
use crate::report::SimReport;
use crate::rwset::ReadWriteSet;
use crate::scheduler::{schedule_block, stale_tolerance_blocks, SchedTx};
use crate::state::WorldState;
use crate::types::{qualified_key, ClientId, Name, OrgId, PeerId, TxId, Value};
use crate::validator::{validate_block, TxToValidate, Verdict};
use sim_core::des::{self, DesQueue, EventKind, Handler, TimerId};
use sim_core::rng::SimRng;
use sim_core::server::QueueServer;
use sim_core::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One workload transaction to inject.
///
/// Names and arguments are shared ([`Name`] = `Arc<str>`, `Arc<[Value]>`):
/// workload generators build each distinct name once, and cloning a request
/// — which schedule rewrites and the multi-seed plan executor do wholesale —
/// copies three pointers instead of re-allocating strings and argument
/// vectors.
///
/// Requests serialize, so a whole schedule can be exported as JSON and
/// replayed later (the declarative `ScenarioSpec` layer relies on this).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TxRequest {
    /// When the client creates the proposal.
    pub send_time: SimTime,
    /// Target chaincode (must be registered on the simulation).
    pub contract: Name,
    /// Smart-contract function to invoke.
    pub activity: Name,
    /// Function arguments (contracts must be deterministic in these).
    pub args: Arc<[Value]>,
    /// Organization whose client invokes the transaction.
    pub invoker_org: OrgId,
}

/// Everything a finished run produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The committed chain (the input to BlockOptR).
    pub ledger: Ledger,
    /// Aggregate measurements.
    pub report: SimReport,
}

/// The Fabric pipeline phases, as DES event kinds.
///
/// Priorities follow the pipeline: at one simulated instant, events
/// dispatch in the order work flows through the network — a client submits
/// before a proposal fans out, endorsements execute before assembly, and
/// validation applies state before the commit seals the block. The one
/// deliberate exception: the block-timeout timer outranks an envelope
/// arriving at the very same instant, so `block_timeout` is a hard upper
/// bound on block age — an envelope landing exactly on the deadline opens
/// the *next* block rather than sneaking into the expiring one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// A client creates and signs a proposal.
    Submit,
    /// The signed proposal fans out to the selected endorsers.
    Propose,
    /// One endorser executes the chaincode (subject carries the slot).
    Endorse,
    /// The client verifies endorsements and assembles the envelope.
    Assemble,
    /// The envelope reaches the ordering service (may trigger a size cut).
    Order,
    /// The block-timeout timer fires (the losing racer is cancelled).
    CutBlock,
    /// The validator finishes a block: MVCC checks + state application.
    Validate,
    /// The validated block is sealed into the ledger.
    Commit,
}

impl EventKind for Phase {
    fn priority(&self) -> u8 {
        match self {
            Phase::Submit => 0,
            Phase::Propose => 1,
            Phase::Endorse => 2,
            Phase::Assemble => 3,
            Phase::CutBlock => 4,
            Phase::Order => 5,
            Phase::Validate => 6,
            Phase::Commit => 7,
        }
    }
}

/// Event subject: which entity a [`Phase`] event targets.
///
/// `idx` is a transaction handle for client/endorse/order phases and a
/// block handle (index into the in-flight list) for validate/commit;
/// `slot` selects the endorsement slot within a transaction.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Target {
    idx: usize,
    slot: usize,
}

impl Target {
    fn tx(idx: usize) -> Self {
        Target { idx, slot: 0 }
    }
    fn endorse(idx: usize, slot: usize) -> Self {
        Target { idx, slot }
    }
    fn block(idx: usize) -> Self {
        Target { idx, slot: 0 }
    }
    fn timer() -> Self {
        Target::default()
    }
}

#[derive(Debug, Clone)]
enum EndorseResult {
    Ok(ReadWriteSet),
    Abort(String),
}

#[derive(Debug, Clone, Default)]
struct Pending {
    worker: Option<ClientId>,
    client_ts: SimTime,
    submit_ts: SimTime,
    endorse_orgs: Vec<OrgId>,
    endorse_peers: Vec<PeerId>,
    endorse_starts: Vec<SimTime>,
    results: Vec<Option<EndorseResult>>,
    mismatch: bool,
    dropped: bool,
}

/// Blocks in flight between cutting and commit. `number` and `verdicts`
/// are filled in by the `Validate` phase and consumed by `Commit`.
struct InFlightBlock {
    txs: Vec<usize>,
    order: Vec<usize>,
    aborted: std::collections::BTreeSet<usize>,
    policy_failed: std::collections::BTreeSet<usize>,
    cut_reason: CutReason,
    cut_ts: SimTime,
    number: u64,
    verdicts: Vec<Verdict>,
}

/// A configured Fabric network ready to run workloads.
pub struct Simulation {
    config: NetworkConfig,
    contracts: HashMap<String, Arc<dyn Contract>>,
    genesis: Vec<(String, String, Value)>,
}

/// The DES handler holding all of one run's mutable state. Each [`Phase`]
/// arm is a direct port of one pipeline stage.
struct Engine<'a> {
    sim: &'a Simulation,
    requests: &'a [TxRequest],
    state: WorldState,
    workers: WorkerFleet,
    endorsers: EndorserFleet,
    selector: EndorserSelector,
    rng: SimRng,
    cutter: BlockCutter,
    /// The armed block-timeout timer, if any — the cancellable half of the
    /// cut race.
    cut_timer: Option<TimerId>,
    orderer_srv: QueueServer,
    validator_srv: QueueServer,
    pending: Vec<Pending>,
    inflight: Vec<InFlightBlock>,
    ledger: Ledger,
    early_aborted: usize,
    abort_reasons: BTreeMap<String, usize>,
    intra: usize,
    inter: usize,
    on_commit: &'a mut dyn FnMut(&Block),
}

type Queue = DesQueue<Phase, Target>;

impl Handler<Phase, Target> for Engine<'_> {
    fn handle(&mut self, now: SimTime, kind: Phase, target: Target, queue: &mut Queue) {
        match kind {
            Phase::Submit => self.submit(now, target.idx, queue),
            Phase::Propose => self.propose(now, target.idx, queue),
            Phase::Endorse => self.endorse(target.idx, target.slot),
            Phase::Assemble => self.assemble(now, target.idx, queue),
            Phase::Order => self.order(now, target.idx, queue),
            Phase::CutBlock => self.cut_block(now, queue),
            Phase::Validate => self.validate(now, target.idx, queue),
            Phase::Commit => self.commit(now, target.idx),
        }
    }

    /// Queue drained: flush any partial block, which schedules the events
    /// to validate and commit it; when nothing is buffered the run ends.
    fn on_idle(&mut self, now: SimTime, queue: &mut Queue) {
        if let Some(cut) = self.cutter.flush(now) {
            self.process_cut(cut, queue);
        }
    }
}

impl Engine<'_> {
    fn submit(&mut self, now: SimTime, i: usize, queue: &mut Queue) {
        let req = &self.requests[i];
        let worker = self.workers.assign(req.invoker_org);
        self.pending[i].worker = Some(worker);
        self.pending[i].client_ts = now;
        let (_, done) = self
            .workers
            .submit(worker, now, self.sim.config.resources.proposal_time());
        queue.schedule(done, Phase::Propose, Target::tx(i));
    }

    fn propose(&mut self, now: SimTime, i: usize, queue: &mut Queue) {
        let res = &self.sim.config.resources;
        let req = &self.requests[i];
        let contract = self
            .sim
            .contracts
            .get(req.contract.as_ref())
            .unwrap_or_else(|| panic!("contract {:?} not installed", req.contract));
        // Cost estimate from a dry execution at proposal time.
        let mut est_ctx = TxContext::new(&self.state, contract.name());
        let _ = contract.execute(&mut est_ctx, &req.activity, &req.args);
        let accesses = est_ctx.access_count();
        let service = res.endorse_exec_base + res.endorse_exec_per_access.mul(accesses as u64);

        let orgs: Vec<OrgId> = self
            .selector
            .choose(&mut self.rng)
            .iter()
            .copied()
            .collect();
        let arrival = now + res.net_delay;
        let mut last_done = now;
        for (slot, &org) in orgs.iter().enumerate() {
            let (peer, start, done) = self.endorsers.submit(org, arrival, service);
            self.pending[i].endorse_peers.push(peer);
            self.pending[i].endorse_starts.push(start);
            self.pending[i].results.push(None);
            last_done = last_done.max(done);
            queue.schedule(start, Phase::Endorse, Target::endorse(i, slot));
        }
        self.pending[i].endorse_orgs = orgs;
        queue.schedule(last_done + res.net_delay, Phase::Assemble, Target::tx(i));
    }

    fn endorse(&mut self, tx: usize, slot: usize) {
        let req = &self.requests[tx];
        let contract = &self.sim.contracts[req.contract.as_ref()];
        let mut ctx = TxContext::new(&self.state, contract.name());
        let status = contract.execute(&mut ctx, &req.activity, &req.args);
        self.pending[tx].results[slot] = Some(match status {
            ExecStatus::Ok => EndorseResult::Ok(ctx.into_rwset()),
            ExecStatus::Abort(reason) => EndorseResult::Abort(reason),
        });
    }

    fn assemble(&mut self, now: SimTime, i: usize, queue: &mut Queue) {
        let p = &mut self.pending[i];
        let mut first_ok: Option<usize> = None;
        let mut aborted = false;
        for (slot, r) in p.results.iter().enumerate() {
            match r {
                Some(EndorseResult::Ok(_)) => {
                    first_ok = first_ok.or(Some(slot));
                }
                Some(EndorseResult::Abort(_)) => aborted = true,
                None => {}
            }
        }
        let Some(first) = first_ok.filter(|_| !aborted) else {
            // The chaincode rejected the proposal on at least one endorser:
            // the client cannot assemble a valid transaction — early abort
            // (pruning path). The contract's reason feeds the report's
            // failure breakdown.
            let reason = p
                .results
                .iter()
                .flatten()
                .find_map(|r| match r {
                    EndorseResult::Abort(reason) => Some(reason.as_str()),
                    EndorseResult::Ok(_) => None,
                })
                .unwrap_or("no endorsement result");
            *self.abort_reasons.entry(reason.to_string()).or_insert(0) += 1;
            p.dropped = true;
            self.early_aborted += 1;
            return;
        };
        let canonical = match p.results[first].as_ref() {
            Some(EndorseResult::Ok(rw)) => rw,
            _ => unreachable!("first_ok indexes an Ok result"),
        };
        p.mismatch = p
            .results
            .iter()
            .flatten()
            .any(|r| matches!(r, EndorseResult::Ok(rw) if rw != canonical));
        let worker = p.worker.expect("assigned at Submit");
        let (_, done) = self
            .workers
            .submit(worker, now, self.sim.config.resources.assemble_time());
        let p = &mut self.pending[i];
        p.submit_ts = done;
        // Move the canonical rwset into slot 0 (no clone).
        p.results.swap(0, first);
        queue.schedule(
            done + self.sim.config.resources.net_delay,
            Phase::Order,
            Target::tx(i),
        );
    }

    fn order(&mut self, now: SimTime, i: usize, queue: &mut Queue) {
        let size = self.sim.proposal_size(&self.pending[i], &self.requests[i]);
        match self.cutter.on_arrival(now, i, size) {
            ArrivalOutcome::ArmTimer { deadline } => {
                self.cut_timer =
                    Some(queue.schedule_timer(deadline, Phase::CutBlock, Target::timer()));
            }
            ArrivalOutcome::CutNow(cut) => {
                // The size/byte cut won the race: disarm the timeout.
                if let Some(timer) = self.cut_timer.take() {
                    queue.cancel(timer);
                }
                self.process_cut(cut, queue);
            }
            ArrivalOutcome::Buffered => {}
        }
    }

    fn cut_block(&mut self, now: SimTime, queue: &mut Queue) {
        self.cut_timer = None;
        if let Some(cut) = self.cutter.on_timeout(now) {
            self.process_cut(cut, queue);
        }
    }

    /// Schedule a cut block through the orderer and validator queues: the
    /// scheduler fixes the in-block order, the orderer assembles and Raft
    /// replicates, and the validator's completion becomes the block's
    /// `Validate` event.
    fn process_cut(&mut self, cut: Cut, queue: &mut Queue) {
        let res = &self.sim.config.resources;
        let sched_txs: Vec<SchedTx<'_>> = cut
            .txs
            .iter()
            .map(|&i| {
                let p = &self.pending[i];
                let rwset = match p.results[0].as_ref().expect("assembled") {
                    EndorseResult::Ok(rw) => rw,
                    EndorseResult::Abort(_) => unreachable!(),
                };
                let spread = p
                    .endorse_starts
                    .iter()
                    .max()
                    .copied()
                    .unwrap_or(SimTime::ZERO)
                    .since(
                        p.endorse_starts
                            .iter()
                            .min()
                            .copied()
                            .unwrap_or(SimTime::ZERO),
                    );
                SchedTx {
                    rwset,
                    endorse_spread: spread,
                }
            })
            .collect();
        let outcome = schedule_block(self.sim.config.scheduler, &sched_txs);

        let n = cut.txs.len() as u64;
        let assembly = res.order_block_fixed + res.order_per_tx.mul(n) + outcome.extra_cost;
        let (_, assembled) = self.orderer_srv.submit(cut.at, assembly);
        let delivered = assembled + res.raft_delay + res.net_delay;

        let mut validation = res.validate_block_fixed;
        for &i in &cut.txs {
            let p = &self.pending[i];
            let items = match p.results[0].as_ref() {
                Some(EndorseResult::Ok(rw)) => {
                    rw.reads.len()
                        + rw.range_reads
                            .iter()
                            .map(|r| r.observed.len())
                            .sum::<usize>()
                }
                _ => 0,
            };
            validation += res.validate_per_tx
                + res.validate_per_item.mul(items as u64)
                + res
                    .validate_per_endorsement
                    .mul(p.endorse_peers.len() as u64);
        }
        let (_, validated) = self.validator_srv.submit(delivered, validation);

        self.inflight.push(InFlightBlock {
            txs: cut.txs,
            order: outcome.order,
            aborted: outcome.aborted,
            policy_failed: outcome.policy_failed,
            cut_reason: cut.reason,
            cut_ts: cut.at,
            number: 0,
            verdicts: Vec::new(),
        });
        queue.schedule(
            validated,
            Phase::Validate,
            Target::block(self.inflight.len() - 1),
        );
    }

    /// MVCC-validate one block in its scheduled order and apply the write
    /// sets; the verdicts are stashed for the `Commit` event scheduled at
    /// the same instant (nothing can slip between them — `Commit` carries
    /// the highest same-timestamp priority and validator completions are
    /// strictly ordered).
    fn validate(&mut self, now: SimTime, block: usize, queue: &mut Queue) {
        let fb = &self.inflight[block];
        let number = self.ledger.height() + 1;
        let to_validate: Vec<TxToValidate<'_>> = fb
            .order
            .iter()
            .map(|&pos| {
                let tx_idx = fb.txs[pos];
                let rwset = match self.pending[tx_idx].results[0]
                    .as_ref()
                    .expect("assembled tx has canonical rwset")
                {
                    EndorseResult::Ok(rw) => rw,
                    EndorseResult::Abort(_) => {
                        unreachable!("aborted txs never reach ordering")
                    }
                };
                TxToValidate {
                    rwset,
                    endorse_mismatch: self.pending[tx_idx].mismatch,
                    sched_aborted: fb.aborted.contains(&pos),
                    sched_policy_failed: fb.policy_failed.contains(&pos),
                }
            })
            .collect();
        let tolerance = stale_tolerance_blocks(self.sim.config.scheduler);
        let verdicts = validate_block(&mut self.state, number, &to_validate, tolerance);
        let fb = &mut self.inflight[block];
        fb.number = number;
        fb.verdicts = verdicts;
        queue.schedule(now, Phase::Commit, Target::block(block));
    }

    /// Seal a validated block: build the envelopes, append to the ledger,
    /// and feed the live observer.
    fn commit(&mut self, now: SimTime, block: usize) {
        let fb = &self.inflight[block];
        debug_assert_eq!(fb.number, self.ledger.height() + 1);
        let mut envelopes = Vec::with_capacity(fb.order.len());
        for (k, &pos) in fb.order.iter().enumerate() {
            let tx_idx = fb.txs[pos];
            let verdict = fb.verdicts[k];
            if verdict.status == TxStatus::MvccReadConflict {
                if verdict.intra_block {
                    self.intra += 1;
                } else {
                    self.inter += 1;
                }
            }
            // Each transaction commits exactly once, so the canonical rwset
            // and endorser list move into the envelope instead of being
            // cloned.
            let p = &mut self.pending[tx_idx];
            let rwset = match p.results[0].take() {
                Some(EndorseResult::Ok(rw)) => rw,
                _ => unreachable!("committed tx has canonical rwset"),
            };
            let req = &self.requests[tx_idx];
            envelopes.push(TransactionEnvelope {
                id: TxId(tx_idx as u64),
                client_ts: p.client_ts,
                submit_ts: p.submit_ts,
                commit_ts: now,
                contract: req.contract.clone(),
                activity: req.activity.clone(),
                args: req.args.clone(),
                endorsers: std::mem::take(&mut p.endorse_peers),
                invoker: p.worker.expect("assigned"),
                tx_type: rwset.tx_type(),
                rwset,
                status: verdict.status,
            });
        }
        let fb = &self.inflight[block];
        self.ledger.append(Block {
            number: fb.number,
            cut_reason: fb.cut_reason,
            cut_ts: fb.cut_ts,
            commit_ts: now,
            txs: envelopes,
        });
        (self.on_commit)(self.ledger.blocks().last().expect("just appended"));
    }
}

impl Simulation {
    /// A simulation over `config` with no contracts installed yet.
    pub fn new(config: NetworkConfig) -> Self {
        Simulation {
            config,
            contracts: HashMap::new(),
            genesis: Vec::new(),
        }
    }

    /// Install (deploy) a chaincode.
    pub fn install(&mut self, contract: Arc<dyn Contract>) {
        self.contracts.insert(contract.name().to_string(), contract);
    }

    /// Seed genesis state: `key` under `namespace` gets `value` at version 0:0.
    pub fn seed(&mut self, namespace: &str, key: &str, value: Value) {
        self.genesis
            .push((namespace.to_string(), key.to_string(), value));
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Run the workload to completion and return the ledger + report.
    ///
    /// Panics if a request names an uninstalled contract.
    pub fn run(&self, requests: &[TxRequest]) -> SimOutput {
        self.run_observed(requests, &mut |_| {})
    }

    /// Like [`run`](Self::run), but invoke `on_commit` with every block the
    /// moment it commits to the ledger — the committed-block feed a live
    /// monitoring loop consumes (`blockoptr watch --live` bridges this
    /// callback onto a channel and ingests each block into a windowed
    /// session while the simulation is still running).
    ///
    /// The callback runs on the simulation's thread between block commits;
    /// it sees each block exactly once, in chain order.
    pub fn run_observed(
        &self,
        requests: &[TxRequest],
        on_commit: &mut dyn FnMut(&Block),
    ) -> SimOutput {
        let cfg = &self.config;

        // Sorted injection schedule (stable by original index for ties).
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].send_time, i));

        let mut state = WorldState::new();
        for (ns, key, value) in &self.genesis {
            state.seed(qualified_key(ns, key), value.clone());
        }

        let mut workers = WorkerFleet::new(cfg.orgs, cfg.clients_per_org);
        if let Some((org, factor)) = cfg.client_boost {
            workers.scale_org(OrgId(org), factor);
        }

        let first_send = order
            .first()
            .map(|&i| requests[i].send_time)
            .unwrap_or(SimTime::ZERO);
        let mut queue: Queue = DesQueue::new();
        for &i in &order {
            queue.schedule(requests[i].send_time, Phase::Submit, Target::tx(i));
        }

        let mut engine = Engine {
            sim: self,
            requests,
            state,
            workers,
            endorsers: EndorserFleet::new(cfg.orgs, cfg.endorsers_per_org()),
            selector: EndorserSelector::new(
                &cfg.endorsement_policy,
                cfg.orgs,
                self.endorser_skew_from_seed(),
            ),
            rng: SimRng::derive(cfg.seed, 0xE5D0),
            cutter: BlockCutter::new(cfg.block_count, cfg.block_bytes, cfg.block_timeout),
            cut_timer: None,
            orderer_srv: QueueServer::new(),
            validator_srv: QueueServer::new(),
            pending: vec![Pending::default(); requests.len()],
            inflight: Vec::new(),
            ledger: Ledger::new(),
            early_aborted: 0,
            abort_reasons: BTreeMap::new(),
            intra: 0,
            inter: 0,
            on_commit,
        };
        let events = des::run(&mut queue, &mut engine);

        let Engine {
            workers,
            endorsers,
            orderer_srv,
            validator_srv,
            ledger,
            early_aborted,
            abort_reasons,
            intra,
            inter,
            ..
        } = engine;

        let mut report = SimReport::from_ledger(&ledger, requests.len(), first_send);
        report.early_aborted = early_aborted;
        report.early_abort_reasons = abort_reasons;
        report.intra_block_conflicts = intra;
        report.inter_block_conflicts = inter;
        report.events = events;
        let horizon = SimTime::ZERO
            + SimDuration::from_secs_f64(report.duration_s)
            + first_send.since(SimTime::ZERO);
        report.client_utilization = ratio(workers.total_busy(), horizon, workers.total_workers());
        report.endorser_utilization =
            ratio(endorsers.total_busy(), horizon, endorsers.total_peers());
        report.orderer_utilization = orderer_srv.utilization(horizon);
        report.validator_utilization = validator_srv.utilization(horizon);
        report.endorsements_per_peer = endorsers
            .endorsement_counts()
            .into_iter()
            .map(|(p, c)| (p.to_string(), c))
            .collect();

        SimOutput { ledger, report }
    }

    /// Endorser-selection skew; stored on the config via the seed field would
    /// be opaque, so it lives in [`NetworkConfig`] — see `endorser_skew`.
    fn endorser_skew_from_seed(&self) -> f64 {
        self.config.endorser_skew
    }

    fn proposal_size(&self, p: &Pending, req: &TxRequest) -> u64 {
        let rw = match p.results[0].as_ref() {
            Some(EndorseResult::Ok(rw)) => rw.approx_size(),
            _ => 0,
        };
        let args: u64 = req.args.iter().map(Value::approx_size).sum();
        // Envelope framing + one signature per endorsement.
        256 + rw + args + 96 * p.endorse_peers.len() as u64
    }
}

fn ratio(busy: SimDuration, horizon: SimTime, servers: usize) -> f64 {
    let cap = horizon.as_micros() as f64 * servers.max(1) as f64;
    if cap <= 0.0 {
        0.0
    } else {
        (busy.as_micros() as f64 / cap).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use crate::policy::EndorsementPolicy;

    /// A minimal key-value contract for driver tests:
    /// `put k v`, `get k`, `upd k` (read+write), `fail` (always aborts).
    struct KvContract;

    impl Contract for KvContract {
        fn name(&self) -> &str {
            "kv"
        }
        fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
            match activity {
                "put" => {
                    let k = args[0].as_str().unwrap();
                    ctx.put_state(k, args[1].clone());
                    ExecStatus::Ok
                }
                "get" => {
                    let k = args[0].as_str().unwrap();
                    let _ = ctx.get_state(k);
                    ExecStatus::Ok
                }
                "upd" => {
                    let k = args[0].as_str().unwrap();
                    let v = ctx.get_state(k).and_then(|v| v.as_int()).unwrap_or(0);
                    ctx.put_state(k, Value::Int(v + 1));
                    ExecStatus::Ok
                }
                "fail" => ExecStatus::Abort("nope".into()),
                other => panic!("unknown activity {other}"),
            }
        }
        fn activities(&self) -> Vec<&'static str> {
            vec!["put", "get", "upd", "fail"]
        }
    }

    fn sim() -> Simulation {
        let cfg = NetworkConfig {
            orgs: 2,
            endorsement_policy: EndorsementPolicy::p3(2),
            block_count: 10,
            ..NetworkConfig::default()
        };
        let mut s = Simulation::new(cfg);
        s.install(Arc::new(KvContract));
        s.seed("kv", "counter", Value::Int(0));
        s
    }

    fn req(i: u64, activity: &str, args: Vec<Value>) -> TxRequest {
        TxRequest {
            send_time: SimTime::from_millis(i * 10),
            contract: "kv".into(),
            activity: activity.into(),
            args: args.into(),
            invoker_org: OrgId((i % 2) as u16),
        }
    }

    #[test]
    fn single_write_commits() {
        let s = sim();
        let out = s.run(&[req(0, "put", vec!["a".into(), Value::Int(1)])]);
        assert_eq!(out.report.committed, 1);
        assert_eq!(out.report.successes, 1);
        assert_eq!(out.report.blocks, 1);
        assert_eq!(out.ledger.blocks()[0].cut_reason, CutReason::Timeout);
        let tx = out.ledger.transactions().next().unwrap();
        assert_eq!(tx.activity.as_ref(), "put");
        assert_eq!(tx.status, TxStatus::Success);
        assert!(tx.commit_ts > tx.submit_ts);
        assert!(tx.submit_ts > tx.client_ts);
    }

    #[test]
    fn concurrent_updates_conflict() {
        let s = sim();
        // 20 updates of the same key sent in a burst: within each block only
        // the first updater wins; later ones read a stale version.
        let reqs: Vec<TxRequest> = (0..20)
            .map(|i| TxRequest {
                send_time: SimTime::from_micros(i * 100),
                contract: "kv".into(),
                activity: "upd".into(),
                args: vec!["counter".into()].into(),
                invoker_org: OrgId((i % 2) as u16),
            })
            .collect();
        let out = s.run(&reqs);
        assert_eq!(out.report.committed, 20);
        assert!(
            out.report.mvcc_conflicts > 10,
            "hot-key burst conflicts: {}",
            out.report.mvcc_conflicts
        );
        assert!(out.report.successes >= 1);
        assert!(
            out.report.intra_block_conflicts + out.report.inter_block_conflicts
                == out.report.mvcc_conflicts
        );
    }

    #[test]
    fn spaced_updates_all_succeed() {
        let s = sim();
        // 5 updates two seconds apart: every block commits before the next
        // endorsement, so no conflicts.
        let reqs: Vec<TxRequest> = (0..5)
            .map(|i| TxRequest {
                send_time: SimTime::from_secs(i * 2),
                contract: "kv".into(),
                activity: "upd".into(),
                args: vec!["counter".into()].into(),
                invoker_org: OrgId(0),
            })
            .collect();
        let out = s.run(&reqs);
        assert_eq!(out.report.successes, 5, "{}", out.report);
        assert_eq!(out.report.mvcc_conflicts, 0);
    }

    #[test]
    fn early_abort_skips_ledger() {
        let s = sim();
        let out = s.run(&[
            req(0, "fail", vec![]),
            req(1, "put", vec!["x".into(), Value::Int(1)]),
        ]);
        assert_eq!(out.report.early_aborted, 1);
        assert_eq!(out.report.committed, 1, "aborted tx never ordered");
        assert_eq!(out.report.requests, 2);
    }

    #[test]
    fn abort_reasons_reach_the_report() {
        let s = sim();
        let out = s.run(&[
            req(0, "fail", vec![]),
            req(1, "fail", vec![]),
            req(2, "put", vec!["x".into(), Value::Int(1)]),
        ]);
        assert_eq!(out.report.early_aborted, 2);
        // KvContract's `fail` activity aborts with reason "nope".
        assert_eq!(out.report.early_abort_reasons.get("nope"), Some(&2));
        assert_eq!(
            out.report.early_abort_reasons.values().sum::<usize>(),
            out.report.early_aborted,
            "every early abort carries a reason"
        );
        let text = out.report.to_string();
        assert!(text.contains("nope: 2"), "{text}");
    }

    #[test]
    fn block_count_cut_fires() {
        let s = sim(); // block_count = 10
        let reqs: Vec<TxRequest> = (0..25)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let out = s.run(&reqs);
        assert_eq!(out.report.committed, 25);
        let reasons: Vec<CutReason> = out.ledger.blocks().iter().map(|b| b.cut_reason).collect();
        assert!(
            reasons.iter().filter(|r| **r == CutReason::Count).count() >= 2,
            "{reasons:?}"
        );
        assert_eq!(out.ledger.blocks()[0].len(), 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let s1 = sim();
        let s2 = sim();
        let reqs: Vec<TxRequest> = (0..50)
            .map(|i| req(i, "upd", vec!["counter".into()]))
            .collect();
        let a = s1.run(&reqs);
        let b = s2.run(&reqs);
        assert_eq!(a.report.successes, b.report.successes);
        assert_eq!(a.report.mvcc_conflicts, b.report.mvcc_conflicts);
        assert!((a.report.avg_latency_s - b.report.avg_latency_s).abs() < 1e-12);
        let ids_a: Vec<u64> = a.ledger.transactions().map(|t| t.id.0).collect();
        let ids_b: Vec<u64> = b.ledger.transactions().map(|t| t.id.0).collect();
        assert_eq!(ids_a, ids_b, "identical commit order");
        assert_eq!(a.report.events, b.report.events, "same event count");
    }

    #[test]
    fn endorsers_recorded_per_policy() {
        let s = sim(); // majority of 2 orgs = both
        let out = s.run(&[req(0, "get", vec!["counter".into()])]);
        let tx = out.ledger.transactions().next().unwrap();
        assert_eq!(tx.endorsers.len(), 2, "both orgs endorse under majority");
        let orgs: std::collections::BTreeSet<u16> = tx.endorsers.iter().map(|p| p.org.0).collect();
        assert_eq!(orgs.len(), 2);
    }

    #[test]
    fn fabric_plus_plus_rescues_intra_block_readers() {
        // Interleave writers and readers of one key in a single burst. The
        // vanilla scheduler commits in arrival order (readers after writers
        // fail); Fabric++ moves readers first.
        let build = |kind: SchedulerKind| {
            let cfg = NetworkConfig {
                scheduler: kind,
                block_count: 20,
                ..NetworkConfig::default()
            };
            let mut s = Simulation::new(cfg);
            s.install(Arc::new(KvContract));
            s.seed("kv", "hot", Value::Int(0));
            s
        };
        let reqs: Vec<TxRequest> = (0..20)
            .map(|i| TxRequest {
                send_time: SimTime::from_micros(i * 200),
                contract: "kv".into(),
                activity: if i % 2 == 0 { "upd" } else { "get" }.into(),
                args: vec!["hot".into()].into(),
                invoker_org: OrgId((i % 2) as u16),
            })
            .collect();
        let vanilla = build(SchedulerKind::Vanilla).run(&reqs);
        let pp = build(SchedulerKind::FabricPlusPlus).run(&reqs);
        assert!(
            pp.report.successes > vanilla.report.successes,
            "fabric++ {} vs vanilla {}",
            pp.report.successes,
            vanilla.report.successes
        );
    }

    #[test]
    fn utilizations_are_bounded() {
        let s = sim();
        let reqs: Vec<TxRequest> = (0..100)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let out = s.run(&reqs);
        for u in [
            out.report.client_utilization,
            out.report.endorser_utilization,
            out.report.orderer_utilization,
            out.report.validator_utilization,
        ] {
            assert!((0.0..=1.0).contains(&u), "{u}");
        }
        assert!(out.report.endorser_utilization > 0.0);
    }

    #[test]
    fn observer_sees_every_block_as_it_commits() {
        let s = sim();
        let reqs: Vec<TxRequest> = (0..30)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let mut seen: Vec<(u64, usize)> = Vec::new();
        let out = s.run_observed(&reqs, &mut |block| {
            seen.push((block.number, block.len()));
        });
        let chain: Vec<(u64, usize)> = out
            .ledger
            .blocks()
            .iter()
            .map(|b| (b.number, b.len()))
            .collect();
        assert_eq!(seen, chain, "observer sees the chain, in order, once");
        // And the observed run is identical to an unobserved one.
        let plain = sim().run(&reqs);
        assert_eq!(plain.report.committed, out.report.committed);
        assert_eq!(plain.ledger.height(), out.ledger.height());
    }

    #[test]
    fn empty_workload_is_fine() {
        let s = sim();
        let out = s.run(&[]);
        assert_eq!(out.report.committed, 0);
        assert_eq!(out.report.blocks, 0);
        assert_eq!(out.report.events, 0);
    }

    #[test]
    fn event_count_tracks_pipeline_depth() {
        let s = sim();
        let reqs: Vec<TxRequest> = (0..10)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let out = s.run(&reqs);
        // Every committed tx crosses at least Submit, Propose, ≥1 Endorse,
        // Assemble, Order; every block adds Validate + Commit.
        assert!(
            out.report.events as usize >= 5 * out.report.committed + 2 * out.report.blocks,
            "events {} too low",
            out.report.events
        );
    }
}
