//! The end-to-end simulation driver.
//!
//! [`Simulation`] wires the pieces together and runs a workload (a time-
//! stamped list of [`TxRequest`]s) through the full EOV pipeline:
//!
//! ```text
//! client worker ──► endorsers (execute @ endorsement time) ──► client
//!   (proposal)        per selected org, queued FIFO           (assemble)
//!        │                                                        │
//!        ▼                                                        ▼
//!     Commit ◄── Validate ◄── validator ◄── Raft ◄── orderer (block cutter
//!   (to ledger)  (MVCC)        queue                  + scheduler + assembly)
//! ```
//!
//! The run loop is a [`sim_core::des`] model: each Fabric phase is one
//! `Phase` event kind dispatched by the (private) `Engine` handler, and every
//! stage is a finite-rate queueing server with its service times drawn from
//! the [`ResourceProfile`](crate::config::ResourceProfile). All state reads
//! happen at their simulated instant in global event order, so MVCC
//! conflict windows — endorsement time to commit time — emerge from
//! queueing dynamics rather than being injected. Block cutting is two
//! racing events: a size/byte-triggered cut versus a timeout timer that is
//! cancelled when the size cut wins and re-armed on the first arrival of a
//! fresh buffer.

use crate::client::{EndorserFleet, EndorserSelector, WorkerFleet};
use crate::config::NetworkConfig;
use crate::contract::{Contract, ExecStatus, TxContext};
use crate::fault::RETRY_EXHAUSTED_REASON;
use crate::fault::{self, FaultRuntime, FaultSpec, RetryPolicy, BACKOFF_STREAM, DROP_STREAM};
use crate::ledger::{Block, CutReason, Ledger, TransactionEnvelope, TxStatus};
use crate::orderer::{ArrivalOutcome, BlockCutter, Cut};
use crate::report::{Degradation, FaultWindowStats, SimReport};
use crate::rwset::ReadWriteSet;
use crate::scheduler::{schedule_block, stale_tolerance_blocks, SchedTx};
use crate::state::WorldState;
use crate::types::{qualified_key, ClientId, Name, OrgId, PeerId, TxId, Value};
use crate::validator::{validate_block, TxToValidate, Verdict};
use sim_core::des::{self, DesQueue, EventKind, Handler, TimerId};
use sim_core::rng::SimRng;
use sim_core::server::QueueServer;
use sim_core::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Seed-stream label for the engine's service-time draws. Like
/// [`DROP_STREAM`]/[`BACKOFF_STREAM`], the engine RNG is derived from the
/// network seed through a dedicated named stream so new consumers of the
/// seed can never perturb existing draw sequences.
pub const ENGINE_STREAM: u64 = 0xE5D0;

/// One workload transaction to inject.
///
/// Names and arguments are shared ([`Name`] = `Arc<str>`, `Arc<[Value]>`):
/// workload generators build each distinct name once, and cloning a request
/// — which schedule rewrites and the multi-seed plan executor do wholesale —
/// copies three pointers instead of re-allocating strings and argument
/// vectors.
///
/// Requests serialize, so a whole schedule can be exported as JSON and
/// replayed later (the declarative `ScenarioSpec` layer relies on this).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TxRequest {
    /// When the client creates the proposal.
    pub send_time: SimTime,
    /// Target chaincode (must be registered on the simulation).
    pub contract: Name,
    /// Smart-contract function to invoke.
    pub activity: Name,
    /// Function arguments (contracts must be deterministic in these).
    pub args: Arc<[Value]>,
    /// Organization whose client invokes the transaction.
    pub invoker_org: OrgId,
}

/// Everything a finished run produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The committed chain (the input to BlockOptR).
    pub ledger: Ledger,
    /// Aggregate measurements.
    pub report: SimReport,
}

/// The Fabric pipeline phases, as DES event kinds.
///
/// Priorities follow the pipeline: at one simulated instant, events
/// dispatch in the order work flows through the network — a client submits
/// before a proposal fans out, endorsements execute before assembly, and
/// validation applies state before the commit seals the block. The one
/// deliberate exception: the block-timeout timer outranks an envelope
/// arriving at the very same instant, so `block_timeout` is a hard upper
/// bound on block age — an envelope landing exactly on the deadline opens
/// the *next* block rather than sneaking into the expiring one.
///
/// Fault-window boundaries outrank everything at a shared instant:
/// `FaultEnd` before `FaultStart` so abutting windows hand off cleanly, and
/// both before the pipeline phases so any handler consulting live fault
/// state observes exactly the static window test `start <= now < end`. The
/// client's endorsement-timeout arm sits between `Assemble` and the cut
/// race: a fan-out completing at the very deadline still assembles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// A fault window closes (the affected component recovers).
    FaultEnd,
    /// A fault window opens (outage / latency spike / orderer stall).
    FaultStart,
    /// A client creates and signs a proposal.
    Submit,
    /// The signed proposal fans out to the selected endorsers.
    Propose,
    /// One endorser executes the chaincode (subject carries the slot).
    Endorse,
    /// The client verifies endorsements and assembles the envelope.
    Assemble,
    /// The client's endorsement deadline fires: retry or give up.
    EndorseTimeout,
    /// The envelope reaches the ordering service (may trigger a size cut).
    Order,
    /// The block-timeout timer fires (the losing racer is cancelled).
    CutBlock,
    /// The validator finishes a block: MVCC checks + state application.
    Validate,
    /// The validated block is sealed into the ledger.
    Commit,
}

impl EventKind for Phase {
    fn priority(&self) -> u8 {
        match self {
            Phase::FaultEnd => 0,
            Phase::FaultStart => 1,
            Phase::Submit => 2,
            Phase::Propose => 3,
            Phase::Endorse => 4,
            Phase::Assemble => 5,
            Phase::EndorseTimeout => 6,
            Phase::CutBlock => 7,
            Phase::Order => 8,
            Phase::Validate => 9,
            Phase::Commit => 10,
        }
    }
}

/// Event subject: which entity a [`Phase`] event targets.
///
/// `idx` is a transaction handle for client/endorse/order phases, a block
/// handle (index into the in-flight list) for validate/commit, and a fault
/// window index for `FaultStart`/`FaultEnd`; `slot` selects the endorsement
/// slot within a transaction. `epoch` is the transaction's attempt epoch:
/// events carrying a stale epoch belong to a fan-out the client already
/// timed out and are ignored on dispatch.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Target {
    idx: usize,
    slot: usize,
    epoch: u32,
}

impl Target {
    fn tx(idx: usize) -> Self {
        Target {
            idx,
            slot: 0,
            epoch: 0,
        }
    }
    fn tx_at(idx: usize, epoch: u32) -> Self {
        Target {
            idx,
            slot: 0,
            epoch,
        }
    }
    fn endorse(idx: usize, slot: usize, epoch: u32) -> Self {
        Target { idx, slot, epoch }
    }
    fn block(idx: usize) -> Self {
        Target {
            idx,
            slot: 0,
            epoch: 0,
        }
    }
    fn window(idx: usize) -> Self {
        Target {
            idx,
            slot: 0,
            epoch: 0,
        }
    }
    fn timer() -> Self {
        Target::default()
    }
}

#[derive(Debug, Clone)]
enum EndorseResult {
    Ok(ReadWriteSet),
    Abort(String),
}

#[derive(Debug, Clone, Default)]
struct Pending {
    worker: Option<ClientId>,
    client_ts: SimTime,
    submit_ts: SimTime,
    endorse_orgs: Vec<OrgId>,
    endorse_peers: Vec<PeerId>,
    endorse_starts: Vec<SimTime>,
    results: Vec<Option<EndorseResult>>,
    /// Per-slot: the endorsement reply was lost in transit (fault drop).
    response_dropped: Vec<bool>,
    /// Proposal attempts so far (1 after the first fan-out).
    attempt: usize,
    /// Current attempt epoch; bumped when a timeout abandons a fan-out.
    epoch: u32,
    /// The pending `Assemble` event for the current fan-out, cancellable
    /// when the endorsement timeout wins the race.
    assemble_timer: Option<TimerId>,
    /// The armed endorsement-timeout event, cancelled when assembly wins.
    timeout_timer: Option<TimerId>,
    mismatch: bool,
    dropped: bool,
}

/// Blocks in flight between cutting and commit. `number` and `verdicts`
/// are filled in by the `Validate` phase and consumed by `Commit`.
struct InFlightBlock {
    txs: Vec<usize>,
    order: Vec<usize>,
    aborted: std::collections::BTreeSet<usize>,
    policy_failed: std::collections::BTreeSet<usize>,
    cut_reason: CutReason,
    cut_ts: SimTime,
    number: u64,
    verdicts: Vec<Verdict>,
}

/// A configured Fabric network ready to run workloads.
pub struct Simulation {
    config: NetworkConfig,
    contracts: HashMap<String, Arc<dyn Contract>>,
    genesis: Vec<(String, String, Value)>,
    fault: FaultSpec,
    retry: RetryPolicy,
}

/// The DES handler holding all of one run's mutable state. Each [`Phase`]
/// arm is a direct port of one pipeline stage.
struct Engine<'a> {
    sim: &'a Simulation,
    requests: &'a [TxRequest],
    state: WorldState,
    workers: WorkerFleet,
    endorsers: EndorserFleet,
    selector: EndorserSelector,
    rng: SimRng,
    /// Compiled fault windows with live activity flags (empty when the
    /// fault spec is a no-op, in which case no fault events exist either).
    faults: FaultRuntime,
    /// Dedicated stream for proposal/endorsement drop draws; untouched in
    /// healthy runs so enabling drops never perturbs endorser selection.
    drop_rng: SimRng,
    /// Dedicated stream for backoff jitter draws (retry path only).
    backoff_rng: SimRng,
    /// Client-resilience counters surfaced as the report's degradation
    /// section.
    degradation: Degradation,
    cutter: BlockCutter,
    /// The armed block-timeout timer, if any — the cancellable half of the
    /// cut race.
    cut_timer: Option<TimerId>,
    orderer_srv: QueueServer,
    validator_srv: QueueServer,
    pending: Vec<Pending>,
    inflight: Vec<InFlightBlock>,
    ledger: Ledger,
    early_aborted: usize,
    abort_reasons: BTreeMap<String, usize>,
    intra: usize,
    inter: usize,
    on_commit: &'a mut dyn FnMut(&Block),
}

type Queue = DesQueue<Phase, Target>;

impl Handler<Phase, Target> for Engine<'_> {
    fn handle(&mut self, now: SimTime, kind: Phase, target: Target, queue: &mut Queue) {
        match kind {
            Phase::FaultStart => self.faults.activate(target.idx),
            Phase::FaultEnd => self.faults.deactivate(target.idx),
            Phase::Submit => self.submit(now, target.idx, queue),
            Phase::Propose => self.propose(now, target.idx, target.epoch, queue),
            Phase::Endorse => self.endorse(target.idx, target.slot, target.epoch),
            Phase::Assemble => self.assemble(now, target.idx, target.epoch, queue),
            Phase::EndorseTimeout => self.endorse_timeout(now, target.idx, target.epoch, queue),
            Phase::Order => self.order(now, target.idx, queue),
            Phase::CutBlock => self.cut_block(now, queue),
            Phase::Validate => self.validate(now, target.idx, queue),
            Phase::Commit => self.commit(now, target.idx),
        }
    }

    /// Queue drained: flush any partial block, which schedules the events
    /// to validate and commit it; when nothing is buffered the run ends.
    fn on_idle(&mut self, now: SimTime, queue: &mut Queue) {
        if let Some(cut) = self.cutter.flush(now) {
            self.process_cut(cut, queue);
        }
    }
}

impl Engine<'_> {
    fn submit(&mut self, now: SimTime, i: usize, queue: &mut Queue) {
        let req = &self.requests[i];
        let worker = self.workers.assign(req.invoker_org);
        self.pending[i].worker = Some(worker);
        self.pending[i].client_ts = now;
        let (_, done) = self
            .workers
            .submit(worker, now, self.sim.config.resources.proposal_time());
        queue.schedule(done, Phase::Propose, Target::tx(i));
    }

    fn propose(&mut self, now: SimTime, i: usize, epoch: u32, queue: &mut Queue) {
        if self.pending[i].dropped || self.pending[i].epoch != epoch {
            return;
        }
        let res = &self.sim.config.resources;
        let req = &self.requests[i];
        let contract = self
            .sim
            .contracts
            .get(req.contract.as_ref())
            .unwrap_or_else(|| panic!("contract {:?} not installed", req.contract));
        // Cost estimate from a dry execution at proposal time.
        let mut est_ctx = TxContext::new(&self.state, contract.name());
        let _ = contract.execute(&mut est_ctx, &req.activity, &req.args);
        let accesses = est_ctx.access_count();
        let service = res.endorse_exec_base + res.endorse_exec_per_access.mul(accesses as u64);

        let orgs: Vec<OrgId> = self
            .selector
            .choose(&mut self.rng)
            .iter()
            .copied()
            .collect();
        let arrival = now + self.net_delay();
        let mut last_done = now;
        self.pending[i].attempt += 1;
        let drops = self.sim.fault.drop;
        // Whether every selected endorser can be expected to answer this
        // fan-out. Peer availability is predicted with the static window
        // test at the execution start instant, which agrees exactly with
        // the live flags the `Endorse` handler will observe there.
        let mut all_responsive = true;
        for (slot, &org) in orgs.iter().enumerate() {
            let proposal_lost = drops.is_some_and(|d| self.drop_rng.chance(d.proposal_rate));
            if proposal_lost {
                // The proposal never reaches the peer: nothing executes and
                // no `Endorse` event exists for the slot. A placeholder
                // entry keeps the per-slot vectors aligned; it can never
                // reach an envelope because a fan-out with a missing result
                // either retries (vectors cleared) or aborts.
                self.degradation.dropped_proposals += 1;
                all_responsive = false;
                self.pending[i].endorse_peers.push(PeerId { org, index: 0 });
                self.pending[i].endorse_starts.push(arrival);
                self.pending[i].results.push(None);
                self.pending[i].response_dropped.push(false);
                continue;
            }
            let (peer, start, done) = self.endorsers.submit(org, arrival, service);
            let response_lost = drops.is_some_and(|d| self.drop_rng.chance(d.endorsement_rate));
            if response_lost {
                self.degradation.dropped_endorsements += 1;
            }
            if response_lost || self.faults.peer_down_at(peer, start) {
                all_responsive = false;
            }
            self.pending[i].endorse_peers.push(peer);
            self.pending[i].endorse_starts.push(start);
            self.pending[i].results.push(None);
            self.pending[i].response_dropped.push(response_lost);
            last_done = last_done.max(done);
            queue.schedule(start, Phase::Endorse, Target::endorse(i, slot, epoch));
        }
        self.pending[i].endorse_orgs = orgs;
        // The client races its endorsement deadline against the fan-out.
        // Assembly is only scheduled when every slot will answer (or when
        // no timeout is configured — the legacy client waits forever and
        // aborts on the incomplete result set).
        let timeout = self.sim.retry.endorse_timeout_duration();
        if all_responsive || timeout.is_none() {
            let at = last_done + self.net_delay();
            self.pending[i].assemble_timer =
                Some(queue.schedule_timer(at, Phase::Assemble, Target::tx_at(i, epoch)));
        }
        if let Some(deadline) = timeout {
            self.pending[i].timeout_timer = Some(queue.schedule_timer(
                now + deadline,
                Phase::EndorseTimeout,
                Target::tx_at(i, epoch),
            ));
        }
    }

    fn endorse(&mut self, tx: usize, slot: usize, epoch: u32) {
        {
            let p = &self.pending[tx];
            if p.dropped || p.epoch != epoch {
                return;
            }
            // Consult live fault state: a peer inside an active outage
            // window executes nothing, and a reply the fault plan drops
            // never reaches the client.
            if self.faults.peer_down_now(p.endorse_peers[slot]) {
                return;
            }
            if p.response_dropped.get(slot).copied().unwrap_or(false) {
                return;
            }
        }
        let req = &self.requests[tx];
        let contract = &self.sim.contracts[req.contract.as_ref()];
        let mut ctx = TxContext::new(&self.state, contract.name());
        let status = contract.execute(&mut ctx, &req.activity, &req.args);
        self.pending[tx].results[slot] = Some(match status {
            ExecStatus::Ok => EndorseResult::Ok(ctx.into_rwset()),
            ExecStatus::Abort(reason) => EndorseResult::Abort(reason),
        });
    }

    fn assemble(&mut self, now: SimTime, i: usize, epoch: u32, queue: &mut Queue) {
        if self.pending[i].dropped || self.pending[i].epoch != epoch {
            return;
        }
        // Assembly won the race: disarm the endorsement deadline.
        self.pending[i].assemble_timer = None;
        if let Some(timer) = self.pending[i].timeout_timer.take() {
            queue.cancel(timer);
        }
        let p = &mut self.pending[i];
        let mut first_ok: Option<usize> = None;
        let mut aborted = false;
        let mut missing = false;
        for (slot, r) in p.results.iter().enumerate() {
            match r {
                Some(EndorseResult::Ok(_)) => {
                    first_ok = first_ok.or(Some(slot));
                }
                Some(EndorseResult::Abort(_)) => aborted = true,
                // A slot with no result (lost proposal/reply, peer down)
                // leaves the policy's org set unsatisfied — without a
                // timeout arm the client gives up here.
                None => missing = true,
            }
        }
        let Some(first) = first_ok.filter(|_| !aborted && !missing) else {
            // The chaincode rejected the proposal on at least one endorser:
            // the client cannot assemble a valid transaction — early abort
            // (pruning path). The contract's reason feeds the report's
            // failure breakdown.
            let reason = p
                .results
                .iter()
                .flatten()
                .find_map(|r| match r {
                    EndorseResult::Abort(reason) => Some(reason.as_str()),
                    EndorseResult::Ok(_) => None,
                })
                .unwrap_or(fault::NO_ENDORSEMENT_REASON);
            *self.abort_reasons.entry(reason.to_string()).or_insert(0) += 1;
            p.dropped = true;
            self.early_aborted += 1;
            return;
        };
        let canonical = match p.results[first].as_ref() {
            Some(EndorseResult::Ok(rw)) => rw,
            _ => unreachable!("first_ok indexes an Ok result"),
        };
        p.mismatch = p
            .results
            .iter()
            .flatten()
            .any(|r| matches!(r, EndorseResult::Ok(rw) if rw != canonical));
        let worker = p.worker.expect("assigned at Submit");
        let (_, done) = self
            .workers
            .submit(worker, now, self.sim.config.resources.assemble_time());
        let p = &mut self.pending[i];
        p.submit_ts = done;
        // Move the canonical rwset into slot 0 (no clone).
        p.results.swap(0, first);
        queue.schedule(done + self.net_delay(), Phase::Order, Target::tx(i));
    }

    /// The client's endorsement deadline fired before the fan-out
    /// completed: abandon the current attempt epoch, then either re-select
    /// endorsers and retry after a deterministic backoff, or — with the
    /// retry budget exhausted — abort with the typed exhaustion reason.
    fn endorse_timeout(&mut self, now: SimTime, i: usize, epoch: u32, queue: &mut Queue) {
        if self.pending[i].dropped || self.pending[i].epoch != epoch {
            return;
        }
        self.pending[i].timeout_timer = None;
        if let Some(timer) = self.pending[i].assemble_timer.take() {
            queue.cancel(timer);
        }
        self.degradation.timeouts += 1;
        let max_attempts = self.sim.retry.max_attempts.max(1);
        let p = &mut self.pending[i];
        if p.attempt >= max_attempts {
            *self
                .abort_reasons
                .entry(RETRY_EXHAUSTED_REASON.to_string())
                .or_insert(0) += 1;
            p.dropped = true;
            self.early_aborted += 1;
            self.degradation.retry_exhausted += 1;
            return;
        }
        self.degradation.retries += 1;
        p.epoch += 1;
        p.endorse_orgs.clear();
        p.endorse_peers.clear();
        p.endorse_starts.clear();
        p.results.clear();
        p.response_dropped.clear();
        p.mismatch = false;
        let retry_index = p.attempt as u32;
        let next_epoch = p.epoch;
        let backoff = self.sim.retry.backoff(retry_index, &mut self.backoff_rng);
        queue.schedule(now + backoff, Phase::Propose, Target::tx_at(i, next_epoch));
    }

    /// The base network delay, inflated by any active latency-spike
    /// windows. Sampled at send time; with no active spike the base delay
    /// is returned untouched (no float round-trip).
    fn net_delay(&self) -> SimDuration {
        let base = self.sim.config.resources.net_delay;
        match self.faults.latency_factor() {
            Some(factor) => base.mul_f64(factor),
            None => base,
        }
    }

    fn order(&mut self, now: SimTime, i: usize, queue: &mut Queue) {
        let size = self.sim.proposal_size(&self.pending[i], &self.requests[i]);
        match self.cutter.on_arrival(now, i, size) {
            ArrivalOutcome::ArmTimer { deadline } => {
                self.cut_timer =
                    Some(queue.schedule_timer(deadline, Phase::CutBlock, Target::timer()));
            }
            ArrivalOutcome::CutNow(cut) => {
                // The size/byte cut won the race: disarm the timeout.
                if let Some(timer) = self.cut_timer.take() {
                    queue.cancel(timer);
                }
                self.process_cut(cut, queue);
            }
            ArrivalOutcome::Buffered => {}
        }
    }

    fn cut_block(&mut self, now: SimTime, queue: &mut Queue) {
        self.cut_timer = None;
        if let Some(cut) = self.cutter.on_timeout(now) {
            self.process_cut(cut, queue);
        }
    }

    /// Schedule a cut block through the orderer and validator queues: the
    /// scheduler fixes the in-block order, the orderer assembles and Raft
    /// replicates, and the validator's completion becomes the block's
    /// `Validate` event.
    fn process_cut(&mut self, cut: Cut, queue: &mut Queue) {
        let res = &self.sim.config.resources;
        let sched_txs: Vec<SchedTx<'_>> = cut
            .txs
            .iter()
            .map(|&i| {
                let p = &self.pending[i];
                let rwset = match p.results[0].as_ref().expect("assembled") {
                    EndorseResult::Ok(rw) => rw,
                    EndorseResult::Abort(_) => unreachable!(),
                };
                let spread = p
                    .endorse_starts
                    .iter()
                    .max()
                    .copied()
                    .unwrap_or(SimTime::ZERO)
                    .since(
                        p.endorse_starts
                            .iter()
                            .min()
                            .copied()
                            .unwrap_or(SimTime::ZERO),
                    );
                SchedTx {
                    rwset,
                    endorse_spread: spread,
                }
            })
            .collect();
        let outcome = schedule_block(self.sim.config.scheduler, &sched_txs);

        let n = cut.txs.len() as u64;
        let assembly = res.order_block_fixed + res.order_per_tx.mul(n) + outcome.extra_cost;
        // An orderer stall holds the cut at the door: the block enters the
        // ordering queue when the stall window lifts.
        let accepted = self.faults.orderer_release(cut.at).unwrap_or(cut.at);
        let (_, assembled) = self.orderer_srv.submit(accepted, assembly);
        let delivered = assembled + res.raft_delay + self.net_delay();

        let mut validation = res.validate_block_fixed;
        for &i in &cut.txs {
            let p = &self.pending[i];
            let items = match p.results[0].as_ref() {
                Some(EndorseResult::Ok(rw)) => {
                    rw.reads.len()
                        + rw.range_reads
                            .iter()
                            .map(|r| r.observed.len())
                            .sum::<usize>()
                }
                _ => 0,
            };
            validation += res.validate_per_tx
                + res.validate_per_item.mul(items as u64)
                + res
                    .validate_per_endorsement
                    .mul(p.endorse_peers.len() as u64);
        }
        let (_, validated) = self.validator_srv.submit(delivered, validation);

        self.inflight.push(InFlightBlock {
            txs: cut.txs,
            order: outcome.order,
            aborted: outcome.aborted,
            policy_failed: outcome.policy_failed,
            cut_reason: cut.reason,
            cut_ts: cut.at,
            number: 0,
            verdicts: Vec::new(),
        });
        queue.schedule(
            validated,
            Phase::Validate,
            Target::block(self.inflight.len() - 1),
        );
    }

    /// MVCC-validate one block in its scheduled order and apply the write
    /// sets; the verdicts are stashed for the `Commit` event scheduled at
    /// the same instant (nothing can slip between them — `Commit` carries
    /// the highest same-timestamp priority and validator completions are
    /// strictly ordered).
    fn validate(&mut self, now: SimTime, block: usize, queue: &mut Queue) {
        let fb = &self.inflight[block];
        let number = self.ledger.height() + 1;
        let to_validate: Vec<TxToValidate<'_>> = fb
            .order
            .iter()
            .map(|&pos| {
                let tx_idx = fb.txs[pos];
                let rwset = match self.pending[tx_idx].results[0]
                    .as_ref()
                    .expect("assembled tx has canonical rwset")
                {
                    EndorseResult::Ok(rw) => rw,
                    EndorseResult::Abort(_) => {
                        unreachable!("aborted txs never reach ordering")
                    }
                };
                TxToValidate {
                    rwset,
                    endorse_mismatch: self.pending[tx_idx].mismatch,
                    sched_aborted: fb.aborted.contains(&pos),
                    sched_policy_failed: fb.policy_failed.contains(&pos),
                }
            })
            .collect();
        let tolerance = stale_tolerance_blocks(self.sim.config.scheduler);
        let verdicts = validate_block(&mut self.state, number, &to_validate, tolerance);
        let fb = &mut self.inflight[block];
        fb.number = number;
        fb.verdicts = verdicts;
        queue.schedule(now, Phase::Commit, Target::block(block));
    }

    /// Seal a validated block: build the envelopes, append to the ledger,
    /// and feed the live observer.
    fn commit(&mut self, now: SimTime, block: usize) {
        let fb = &self.inflight[block];
        debug_assert_eq!(fb.number, self.ledger.height() + 1);
        let mut envelopes = Vec::with_capacity(fb.order.len());
        for (k, &pos) in fb.order.iter().enumerate() {
            let tx_idx = fb.txs[pos];
            let verdict = fb.verdicts[k];
            if verdict.status == TxStatus::MvccReadConflict {
                if verdict.intra_block {
                    self.intra += 1;
                } else {
                    self.inter += 1;
                }
            }
            // A success that needed more than one fan-out is a graceful
            // degradation, not a failure — surfaced in the report.
            if verdict.status == TxStatus::Success && self.pending[tx_idx].attempt > 1 {
                self.degradation.degraded_success += 1;
            }
            // Each transaction commits exactly once, so the canonical rwset
            // and endorser list move into the envelope instead of being
            // cloned.
            let p = &mut self.pending[tx_idx];
            let rwset = match p.results[0].take() {
                Some(EndorseResult::Ok(rw)) => rw,
                _ => unreachable!("committed tx has canonical rwset"),
            };
            let req = &self.requests[tx_idx];
            envelopes.push(TransactionEnvelope {
                id: TxId(tx_idx as u64),
                client_ts: p.client_ts,
                submit_ts: p.submit_ts,
                commit_ts: now,
                contract: req.contract.clone(),
                activity: req.activity.clone(),
                args: req.args.clone(),
                endorsers: std::mem::take(&mut p.endorse_peers),
                invoker: p.worker.expect("assigned"),
                tx_type: rwset.tx_type(),
                rwset,
                status: verdict.status,
            });
        }
        let fb = &self.inflight[block];
        self.ledger.append(Block {
            number: fb.number,
            cut_reason: fb.cut_reason,
            cut_ts: fb.cut_ts,
            commit_ts: now,
            txs: envelopes,
        });
        (self.on_commit)(self.ledger.blocks().last().expect("just appended"));
    }
}

impl Simulation {
    /// A simulation over `config` with no contracts installed yet and no
    /// faults configured.
    pub fn new(config: NetworkConfig) -> Self {
        Simulation {
            config,
            contracts: HashMap::new(),
            genesis: Vec::new(),
            fault: FaultSpec::default(),
            retry: RetryPolicy::default(),
        }
    }

    /// Install a fault plan for subsequent runs. The spec must already be
    /// validated (the declarative scenario layer does this); a no-op spec
    /// is guaranteed not to change simulation output.
    pub fn set_fault(&mut self, fault: FaultSpec) {
        self.fault = fault;
    }

    /// Install the client retry policy for subsequent runs. The default
    /// policy (no endorsement timeout) reproduces the legacy client.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The configured fault plan.
    pub fn fault(&self) -> &FaultSpec {
        &self.fault
    }

    /// The configured client retry policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Install (deploy) a chaincode.
    pub fn install(&mut self, contract: Arc<dyn Contract>) {
        self.contracts.insert(contract.name().to_string(), contract);
    }

    /// Seed genesis state: `key` under `namespace` gets `value` at version 0:0.
    pub fn seed(&mut self, namespace: &str, key: &str, value: Value) {
        self.genesis
            .push((namespace.to_string(), key.to_string(), value));
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Run the workload to completion and return the ledger + report.
    ///
    /// Panics if a request names an uninstalled contract.
    pub fn run(&self, requests: &[TxRequest]) -> SimOutput {
        self.run_observed(requests, &mut |_| {})
    }

    /// Like [`run`](Self::run), but invoke `on_commit` with every block the
    /// moment it commits to the ledger — the committed-block feed a live
    /// monitoring loop consumes (`blockoptr watch --live` bridges this
    /// callback onto a channel and ingests each block into a windowed
    /// session while the simulation is still running).
    ///
    /// The callback runs on the simulation's thread between block commits;
    /// it sees each block exactly once, in chain order.
    pub fn run_observed(
        &self,
        requests: &[TxRequest],
        on_commit: &mut dyn FnMut(&Block),
    ) -> SimOutput {
        let cfg = &self.config;

        // Sorted injection schedule (stable by original index for ties).
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].send_time, i));

        let mut state = WorldState::new();
        for (ns, key, value) in &self.genesis {
            state.seed(qualified_key(ns, key), value.clone());
        }

        let mut workers = WorkerFleet::new(cfg.orgs, cfg.clients_per_org);
        if let Some((org, factor)) = cfg.client_boost {
            workers.scale_org(OrgId(org), factor);
        }

        let first_send = order
            .first()
            .map(|&i| requests[i].send_time)
            .unwrap_or(SimTime::ZERO);
        let mut queue: Queue = DesQueue::new();
        // Fault-window boundaries become cancellable DES events toggling
        // the runtime's live availability flags. A no-op spec compiles to
        // zero windows, so healthy runs schedule exactly the same events
        // (and sequence numbers) as before faults existed.
        let faults = if self.fault.is_noop() {
            FaultRuntime::default()
        } else {
            FaultRuntime::compile(&self.fault)
        };
        for (w, start, end) in faults.spans() {
            let _ = queue.schedule_timer(start, Phase::FaultStart, Target::window(w));
            let _ = queue.schedule_timer(end, Phase::FaultEnd, Target::window(w));
        }
        for &i in &order {
            queue.schedule(requests[i].send_time, Phase::Submit, Target::tx(i));
        }

        let mut engine = Engine {
            sim: self,
            requests,
            state,
            workers,
            endorsers: EndorserFleet::new(cfg.orgs, cfg.endorsers_per_org()),
            selector: EndorserSelector::new(
                &cfg.endorsement_policy,
                cfg.orgs,
                self.endorser_skew_from_seed(),
            ),
            rng: SimRng::derive(cfg.seed, ENGINE_STREAM),
            faults,
            drop_rng: SimRng::derive(cfg.seed, DROP_STREAM),
            backoff_rng: SimRng::derive(cfg.seed, BACKOFF_STREAM),
            degradation: Degradation::default(),
            cutter: BlockCutter::new(cfg.block_count, cfg.block_bytes, cfg.block_timeout),
            cut_timer: None,
            orderer_srv: QueueServer::new(),
            validator_srv: QueueServer::new(),
            pending: vec![Pending::default(); requests.len()],
            inflight: Vec::new(),
            ledger: Ledger::new(),
            early_aborted: 0,
            abort_reasons: BTreeMap::new(),
            intra: 0,
            inter: 0,
            on_commit,
        };
        let events = des::run(&mut queue, &mut engine);

        let Engine {
            workers,
            endorsers,
            orderer_srv,
            validator_srv,
            ledger,
            early_aborted,
            abort_reasons,
            intra,
            inter,
            mut degradation,
            ..
        } = engine;

        if !self.fault.is_noop() {
            degradation.windows = fault_window_stats(&self.fault, requests, &ledger);
        }

        let mut report = SimReport::from_ledger(&ledger, requests.len(), first_send);
        report.early_aborted = early_aborted;
        report.early_abort_reasons = abort_reasons;
        report.intra_block_conflicts = intra;
        report.inter_block_conflicts = inter;
        report.events = events;
        report.degradation = degradation;
        let horizon = SimTime::ZERO
            + SimDuration::from_secs_f64(report.duration_s)
            + first_send.since(SimTime::ZERO);
        report.client_utilization = ratio(workers.total_busy(), horizon, workers.total_workers());
        report.endorser_utilization =
            ratio(endorsers.total_busy(), horizon, endorsers.total_peers());
        report.orderer_utilization = orderer_srv.utilization(horizon);
        report.validator_utilization = validator_srv.utilization(horizon);
        report.endorsements_per_peer = endorsers
            .endorsement_counts()
            .into_iter()
            .map(|(p, c)| (p.to_string(), c))
            .collect();

        SimOutput { ledger, report }
    }

    /// Endorser-selection skew; stored on the config via the seed field would
    /// be opaque, so it lives in [`NetworkConfig`] — see `endorser_skew`.
    fn endorser_skew_from_seed(&self) -> f64 {
        self.config.endorser_skew
    }

    fn proposal_size(&self, p: &Pending, req: &TxRequest) -> u64 {
        let rw = match p.results[0].as_ref() {
            Some(EndorseResult::Ok(rw)) => rw.approx_size(),
            _ => 0,
        };
        let args: u64 = req.args.iter().map(Value::approx_size).sum();
        // Envelope framing + one signature per endorsement.
        256 + rw + args + 96 * p.endorse_peers.len() as u64
    }
}

/// Per-fault-window outcome statistics: which requests were sent while the
/// window was open, and how they fared. Transaction ids are request
/// indices, so the committed outcomes map back onto send times directly.
fn fault_window_stats(
    fault: &FaultSpec,
    requests: &[TxRequest],
    ledger: &Ledger,
) -> Vec<FaultWindowStats> {
    fn at(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }
    let mut outcomes: BTreeMap<u64, (bool, f64)> = BTreeMap::new();
    for t in ledger.transactions() {
        outcomes.insert(t.id.0, (t.status.is_success(), t.latency().as_secs_f64()));
    }
    let mut windows: Vec<(String, SimTime, SimTime)> = Vec::new();
    for w in &fault.endorser_outages {
        let label = match w.peer {
            Some(p) => format!(
                "outage org{} peer{} {:.2}s+{:.2}s",
                w.org, p, w.start, w.duration
            ),
            None => format!("outage org{} {:.2}s+{:.2}s", w.org, w.start, w.duration),
        };
        windows.push((label, at(w.start), at(w.start + w.duration)));
    }
    for s in &fault.latency_spikes {
        windows.push((
            format!(
                "latency x{:.1} {:.2}s+{:.2}s",
                s.multiplier, s.start, s.duration
            ),
            at(s.start),
            at(s.start + s.duration),
        ));
    }
    for s in &fault.orderer_stalls {
        windows.push((
            format!("stall {:.2}s+{:.2}s", s.start, s.duration),
            at(s.start),
            at(s.start + s.duration),
        ));
    }
    windows
        .into_iter()
        .map(|(label, start, end)| {
            let mut submitted = 0usize;
            let mut successes = 0usize;
            let mut latency_sum = 0.0f64;
            for (i, req) in requests.iter().enumerate() {
                if req.send_time >= start && req.send_time < end {
                    submitted += 1;
                    if let Some(&(ok, latency)) = outcomes.get(&(i as u64)) {
                        if ok {
                            successes += 1;
                            latency_sum += latency;
                        }
                    }
                }
            }
            FaultWindowStats {
                label,
                submitted,
                successes,
                success_rate_pct: if submitted == 0 {
                    0.0
                } else {
                    successes as f64 / submitted as f64 * 100.0
                },
                avg_latency_s: if successes == 0 {
                    0.0
                } else {
                    latency_sum / successes as f64
                },
            }
        })
        .collect()
}

fn ratio(busy: SimDuration, horizon: SimTime, servers: usize) -> f64 {
    let cap = horizon.as_micros() as f64 * servers.max(1) as f64;
    if cap <= 0.0 {
        0.0
    } else {
        (busy.as_micros() as f64 / cap).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use crate::policy::EndorsementPolicy;

    /// A minimal key-value contract for driver tests:
    /// `put k v`, `get k`, `upd k` (read+write), `fail` (always aborts).
    struct KvContract;

    impl Contract for KvContract {
        fn name(&self) -> &str {
            "kv"
        }
        fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
            match activity {
                "put" => {
                    let k = args[0].as_str().unwrap();
                    ctx.put_state(k, args[1].clone());
                    ExecStatus::Ok
                }
                "get" => {
                    let k = args[0].as_str().unwrap();
                    let _ = ctx.get_state(k);
                    ExecStatus::Ok
                }
                "upd" => {
                    let k = args[0].as_str().unwrap();
                    let v = ctx.get_state(k).and_then(|v| v.as_int()).unwrap_or(0);
                    ctx.put_state(k, Value::Int(v + 1));
                    ExecStatus::Ok
                }
                "fail" => ExecStatus::Abort("nope".into()),
                other => panic!("unknown activity {other}"),
            }
        }
        fn activities(&self) -> Vec<&'static str> {
            vec!["put", "get", "upd", "fail"]
        }
    }

    fn sim() -> Simulation {
        let cfg = NetworkConfig {
            orgs: 2,
            endorsement_policy: EndorsementPolicy::p3(2),
            block_count: 10,
            ..NetworkConfig::default()
        };
        let mut s = Simulation::new(cfg);
        s.install(Arc::new(KvContract));
        s.seed("kv", "counter", Value::Int(0));
        s
    }

    fn req(i: u64, activity: &str, args: Vec<Value>) -> TxRequest {
        TxRequest {
            send_time: SimTime::from_millis(i * 10),
            contract: "kv".into(),
            activity: activity.into(),
            args: args.into(),
            invoker_org: OrgId((i % 2) as u16),
        }
    }

    #[test]
    fn single_write_commits() {
        let s = sim();
        let out = s.run(&[req(0, "put", vec!["a".into(), Value::Int(1)])]);
        assert_eq!(out.report.committed, 1);
        assert_eq!(out.report.successes, 1);
        assert_eq!(out.report.blocks, 1);
        assert_eq!(out.ledger.blocks()[0].cut_reason, CutReason::Timeout);
        let tx = out.ledger.transactions().next().unwrap();
        assert_eq!(tx.activity.as_ref(), "put");
        assert_eq!(tx.status, TxStatus::Success);
        assert!(tx.commit_ts > tx.submit_ts);
        assert!(tx.submit_ts > tx.client_ts);
    }

    #[test]
    fn concurrent_updates_conflict() {
        let s = sim();
        // 20 updates of the same key sent in a burst: within each block only
        // the first updater wins; later ones read a stale version.
        let reqs: Vec<TxRequest> = (0..20)
            .map(|i| TxRequest {
                send_time: SimTime::from_micros(i * 100),
                contract: "kv".into(),
                activity: "upd".into(),
                args: vec!["counter".into()].into(),
                invoker_org: OrgId((i % 2) as u16),
            })
            .collect();
        let out = s.run(&reqs);
        assert_eq!(out.report.committed, 20);
        assert!(
            out.report.mvcc_conflicts > 10,
            "hot-key burst conflicts: {}",
            out.report.mvcc_conflicts
        );
        assert!(out.report.successes >= 1);
        assert!(
            out.report.intra_block_conflicts + out.report.inter_block_conflicts
                == out.report.mvcc_conflicts
        );
    }

    #[test]
    fn spaced_updates_all_succeed() {
        let s = sim();
        // 5 updates two seconds apart: every block commits before the next
        // endorsement, so no conflicts.
        let reqs: Vec<TxRequest> = (0..5)
            .map(|i| TxRequest {
                send_time: SimTime::from_secs(i * 2),
                contract: "kv".into(),
                activity: "upd".into(),
                args: vec!["counter".into()].into(),
                invoker_org: OrgId(0),
            })
            .collect();
        let out = s.run(&reqs);
        assert_eq!(out.report.successes, 5, "{}", out.report);
        assert_eq!(out.report.mvcc_conflicts, 0);
    }

    #[test]
    fn early_abort_skips_ledger() {
        let s = sim();
        let out = s.run(&[
            req(0, "fail", vec![]),
            req(1, "put", vec!["x".into(), Value::Int(1)]),
        ]);
        assert_eq!(out.report.early_aborted, 1);
        assert_eq!(out.report.committed, 1, "aborted tx never ordered");
        assert_eq!(out.report.requests, 2);
    }

    #[test]
    fn abort_reasons_reach_the_report() {
        let s = sim();
        let out = s.run(&[
            req(0, "fail", vec![]),
            req(1, "fail", vec![]),
            req(2, "put", vec!["x".into(), Value::Int(1)]),
        ]);
        assert_eq!(out.report.early_aborted, 2);
        // KvContract's `fail` activity aborts with reason "nope".
        assert_eq!(out.report.early_abort_reasons.get("nope"), Some(&2));
        assert_eq!(
            out.report.early_abort_reasons.values().sum::<usize>(),
            out.report.early_aborted,
            "every early abort carries a reason"
        );
        let text = out.report.to_string();
        assert!(text.contains("nope: 2"), "{text}");
    }

    #[test]
    fn block_count_cut_fires() {
        let s = sim(); // block_count = 10
        let reqs: Vec<TxRequest> = (0..25)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let out = s.run(&reqs);
        assert_eq!(out.report.committed, 25);
        let reasons: Vec<CutReason> = out.ledger.blocks().iter().map(|b| b.cut_reason).collect();
        assert!(
            reasons.iter().filter(|r| **r == CutReason::Count).count() >= 2,
            "{reasons:?}"
        );
        assert_eq!(out.ledger.blocks()[0].len(), 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let s1 = sim();
        let s2 = sim();
        let reqs: Vec<TxRequest> = (0..50)
            .map(|i| req(i, "upd", vec!["counter".into()]))
            .collect();
        let a = s1.run(&reqs);
        let b = s2.run(&reqs);
        assert_eq!(a.report.successes, b.report.successes);
        assert_eq!(a.report.mvcc_conflicts, b.report.mvcc_conflicts);
        assert!((a.report.avg_latency_s - b.report.avg_latency_s).abs() < 1e-12);
        let ids_a: Vec<u64> = a.ledger.transactions().map(|t| t.id.0).collect();
        let ids_b: Vec<u64> = b.ledger.transactions().map(|t| t.id.0).collect();
        assert_eq!(ids_a, ids_b, "identical commit order");
        assert_eq!(a.report.events, b.report.events, "same event count");
    }

    #[test]
    fn endorsers_recorded_per_policy() {
        let s = sim(); // majority of 2 orgs = both
        let out = s.run(&[req(0, "get", vec!["counter".into()])]);
        let tx = out.ledger.transactions().next().unwrap();
        assert_eq!(tx.endorsers.len(), 2, "both orgs endorse under majority");
        let orgs: std::collections::BTreeSet<u16> = tx.endorsers.iter().map(|p| p.org.0).collect();
        assert_eq!(orgs.len(), 2);
    }

    #[test]
    fn fabric_plus_plus_rescues_intra_block_readers() {
        // Interleave writers and readers of one key in a single burst. The
        // vanilla scheduler commits in arrival order (readers after writers
        // fail); Fabric++ moves readers first.
        let build = |kind: SchedulerKind| {
            let cfg = NetworkConfig {
                scheduler: kind,
                block_count: 20,
                ..NetworkConfig::default()
            };
            let mut s = Simulation::new(cfg);
            s.install(Arc::new(KvContract));
            s.seed("kv", "hot", Value::Int(0));
            s
        };
        let reqs: Vec<TxRequest> = (0..20)
            .map(|i| TxRequest {
                send_time: SimTime::from_micros(i * 200),
                contract: "kv".into(),
                activity: if i % 2 == 0 { "upd" } else { "get" }.into(),
                args: vec!["hot".into()].into(),
                invoker_org: OrgId((i % 2) as u16),
            })
            .collect();
        let vanilla = build(SchedulerKind::Vanilla).run(&reqs);
        let pp = build(SchedulerKind::FabricPlusPlus).run(&reqs);
        assert!(
            pp.report.successes > vanilla.report.successes,
            "fabric++ {} vs vanilla {}",
            pp.report.successes,
            vanilla.report.successes
        );
    }

    #[test]
    fn utilizations_are_bounded() {
        let s = sim();
        let reqs: Vec<TxRequest> = (0..100)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let out = s.run(&reqs);
        for u in [
            out.report.client_utilization,
            out.report.endorser_utilization,
            out.report.orderer_utilization,
            out.report.validator_utilization,
        ] {
            assert!((0.0..=1.0).contains(&u), "{u}");
        }
        assert!(out.report.endorser_utilization > 0.0);
    }

    #[test]
    fn observer_sees_every_block_as_it_commits() {
        let s = sim();
        let reqs: Vec<TxRequest> = (0..30)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let mut seen: Vec<(u64, usize)> = Vec::new();
        let out = s.run_observed(&reqs, &mut |block| {
            seen.push((block.number, block.len()));
        });
        let chain: Vec<(u64, usize)> = out
            .ledger
            .blocks()
            .iter()
            .map(|b| (b.number, b.len()))
            .collect();
        assert_eq!(seen, chain, "observer sees the chain, in order, once");
        // And the observed run is identical to an unobserved one.
        let plain = sim().run(&reqs);
        assert_eq!(plain.report.committed, out.report.committed);
        assert_eq!(plain.ledger.height(), out.ledger.height());
    }

    #[test]
    fn empty_workload_is_fine() {
        let s = sim();
        let out = s.run(&[]);
        assert_eq!(out.report.committed, 0);
        assert_eq!(out.report.blocks, 0);
        assert_eq!(out.report.events, 0);
    }

    #[test]
    fn event_count_tracks_pipeline_depth() {
        let s = sim();
        let reqs: Vec<TxRequest> = (0..10)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let out = s.run(&reqs);
        // Every committed tx crosses at least Submit, Propose, ≥1 Endorse,
        // Assemble, Order; every block adds Validate + Commit.
        assert!(
            out.report.events as usize >= 5 * out.report.committed + 2 * out.report.blocks,
            "events {} too low",
            out.report.events
        );
    }

    // ---- fault injection & client resilience ----

    use crate::fault::{
        DropSpec, FaultSpec, LatencySpike, OutageWindow, RetryPolicy, StallWindow,
        RETRY_EXHAUSTED_REASON,
    };

    fn puts(n: u64) -> Vec<TxRequest> {
        (0..n)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect()
    }

    fn org0_outage(start: f64, duration: f64) -> FaultSpec {
        FaultSpec {
            endorser_outages: vec![OutageWindow {
                org: 0,
                peer: None,
                start,
                duration,
            }],
            ..FaultSpec::default()
        }
    }

    #[test]
    fn outage_without_retry_aborts_affected_transactions() {
        let mut s = sim(); // majority of 2 orgs: every tx needs org 0
        s.set_fault(org0_outage(0.0, 60.0));
        let out = s.run(&puts(5));
        assert_eq!(out.report.committed, 0, "{}", out.report);
        assert_eq!(out.report.early_aborted, 5);
        assert_eq!(
            out.report.early_abort_reasons.get("no endorsement result"),
            Some(&5)
        );
        let windows = &out.report.degradation.windows;
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].submitted, 5);
        assert_eq!(windows[0].successes, 0);
        assert!(windows[0].label.starts_with("outage org0"));
    }

    #[test]
    fn retry_rescues_transactions_once_the_outage_lifts() {
        let mut s = sim();
        s.set_fault(org0_outage(0.0, 0.5));
        s.set_retry(RetryPolicy {
            endorse_timeout: Some(0.2),
            max_attempts: 10,
            backoff_base: 0.1,
            backoff_multiplier: 2.0,
            jitter: 0.0,
        });
        let out = s.run(&puts(3));
        assert_eq!(out.report.committed, 3, "{}", out.report);
        assert_eq!(out.report.successes, 3);
        let d = &out.report.degradation;
        assert!(d.retries > 0, "{d:?}");
        assert!(d.timeouts > 0);
        assert_eq!(d.retry_exhausted, 0);
        assert_eq!(d.degraded_success, 3, "all successes needed retries");
    }

    #[test]
    fn exhausted_retry_budget_surfaces_as_typed_abort_reason() {
        let mut s = sim();
        s.set_fault(org0_outage(0.0, 60.0));
        s.set_retry(RetryPolicy {
            endorse_timeout: Some(0.1),
            max_attempts: 2,
            backoff_base: 0.05,
            backoff_multiplier: 2.0,
            jitter: 0.0,
        });
        let out = s.run(&puts(4));
        assert_eq!(out.report.committed, 0);
        assert_eq!(out.report.early_aborted, 4);
        assert_eq!(
            out.report.early_abort_reasons.get(RETRY_EXHAUSTED_REASON),
            Some(&4)
        );
        let d = &out.report.degradation;
        assert_eq!(d.retry_exhausted, 4);
        assert_eq!(d.retries, 4, "one retry each before exhaustion");
        assert_eq!(d.timeouts, 8, "two timeouts per transaction");
        let text = out.report.to_string();
        assert!(text.contains(RETRY_EXHAUSTED_REASON), "{text}");
        assert!(text.contains("degradation"), "{text}");
    }

    #[test]
    fn latency_spike_inflates_end_to_end_latency() {
        let healthy = sim().run(&puts(5));
        let mut s = sim();
        s.set_fault(FaultSpec {
            latency_spikes: vec![LatencySpike {
                start: 0.0,
                duration: 120.0,
                multiplier: 40.0,
            }],
            ..FaultSpec::default()
        });
        let spiked = s.run(&puts(5));
        assert_eq!(spiked.report.committed, 5);
        assert!(
            spiked.report.avg_latency_s > healthy.report.avg_latency_s,
            "spiked {} <= healthy {}",
            spiked.report.avg_latency_s,
            healthy.report.avg_latency_s
        );
    }

    #[test]
    fn orderer_stall_delays_the_block() {
        let mut s = sim();
        s.set_fault(FaultSpec {
            orderer_stalls: vec![StallWindow {
                start: 0.0,
                duration: 2.0,
            }],
            ..FaultSpec::default()
        });
        let out = s.run(&puts(1));
        assert_eq!(out.report.committed, 1);
        let commit = out.ledger.blocks()[0].commit_ts;
        assert!(
            commit >= SimTime::from_secs(2),
            "block committed at {commit:?} inside the stall"
        );
    }

    #[test]
    fn endorsement_drops_without_retry_abort() {
        let mut s = sim();
        s.set_fault(FaultSpec {
            drop: Some(DropSpec {
                proposal_rate: 0.0,
                endorsement_rate: 1.0,
            }),
            ..FaultSpec::default()
        });
        let out = s.run(&puts(3));
        assert_eq!(out.report.committed, 0);
        assert_eq!(out.report.early_aborted, 3);
        assert!(out.report.degradation.dropped_endorsements >= 3);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let build = || {
            let mut s = sim();
            s.set_fault(FaultSpec {
                endorser_outages: vec![OutageWindow {
                    org: 1,
                    peer: Some(0),
                    start: 0.05,
                    duration: 0.3,
                }],
                drop: Some(DropSpec {
                    proposal_rate: 0.2,
                    endorsement_rate: 0.2,
                }),
                ..FaultSpec::default()
            });
            s.set_retry(RetryPolicy {
                endorse_timeout: Some(0.15),
                max_attempts: 4,
                backoff_base: 0.02,
                backoff_multiplier: 2.0,
                jitter: 0.3,
            });
            s
        };
        let reqs = puts(40);
        let a = build().run(&reqs);
        let b = build().run(&reqs);
        assert_eq!(a.report.events, b.report.events);
        assert_eq!(a.report.degradation, b.report.degradation);
        let ids_a: Vec<(u64, TxStatus)> = a
            .ledger
            .transactions()
            .map(|t| (t.id.0, t.status))
            .collect();
        let ids_b: Vec<(u64, TxStatus)> = b
            .ledger
            .transactions()
            .map(|t| (t.id.0, t.status))
            .collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn noop_fault_spec_changes_nothing() {
        let reqs: Vec<TxRequest> = (0..30)
            .map(|i| req(i, "upd", vec!["counter".into()]))
            .collect();
        let plain = sim().run(&reqs);
        let mut s = sim();
        // A present-but-empty fault spec and zero drop rates must leave
        // the run byte-identical: no events, no RNG draws.
        s.set_fault(FaultSpec {
            drop: Some(DropSpec::default()),
            ..FaultSpec::default()
        });
        s.set_retry(RetryPolicy::default());
        let gated = s.run(&reqs);
        assert_eq!(plain.report.events, gated.report.events);
        assert_eq!(plain.report.successes, gated.report.successes);
        let ids_a: Vec<u64> = plain.ledger.transactions().map(|t| t.id.0).collect();
        let ids_b: Vec<u64> = gated.ledger.transactions().map(|t| t.id.0).collect();
        assert_eq!(ids_a, ids_b);
        assert!(gated.report.degradation.is_trivial());
    }
}
