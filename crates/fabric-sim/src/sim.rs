//! The end-to-end simulation driver.
//!
//! [`Simulation`] wires the pieces together and runs a workload (a time-
//! stamped list of [`TxRequest`]s) through the full EOV pipeline:
//!
//! ```text
//! client worker ──► endorsers (execute @ endorsement time) ──► client
//!   (proposal)        per selected org, queued FIFO           (assemble)
//!        │                                                        │
//!        ▼                                                        ▼
//!   BlockValidated ◄── validator queue ◄── Raft ◄── orderer (block cutter
//!   (MVCC + commit)                                  + scheduler + assembly)
//! ```
//!
//! Every stage is a finite-rate queueing server, and all state reads happen
//! at their simulated instant in global event order, so MVCC conflict
//! windows — endorsement time to commit time — emerge from queueing dynamics
//! rather than being injected.

use crate::client::{EndorserFleet, EndorserSelector, WorkerFleet};
use crate::config::NetworkConfig;
use crate::contract::{Contract, ExecStatus, TxContext};
use crate::ledger::{Block, CutReason, Ledger, TransactionEnvelope, TxStatus};
use crate::orderer::{ArrivalOutcome, BlockCutter, Cut};
use crate::report::SimReport;
use crate::rwset::ReadWriteSet;
use crate::scheduler::{schedule_block, stale_tolerance_blocks, SchedTx};
use crate::state::WorldState;
use crate::types::{qualified_key, ClientId, Name, OrgId, PeerId, TxId, Value};
use crate::validator::{validate_block, TxToValidate};
use sim_core::events::EventQueue;
use sim_core::rng::SimRng;
use sim_core::server::QueueServer;
use sim_core::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One workload transaction to inject.
///
/// Names and arguments are shared ([`Name`] = `Arc<str>`, `Arc<[Value]>`):
/// workload generators build each distinct name once, and cloning a request
/// — which schedule rewrites and the multi-seed plan executor do wholesale —
/// copies three pointers instead of re-allocating strings and argument
/// vectors.
///
/// Requests serialize, so a whole schedule can be exported as JSON and
/// replayed later (the declarative `ScenarioSpec` layer relies on this).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TxRequest {
    /// When the client creates the proposal.
    pub send_time: SimTime,
    /// Target chaincode (must be registered on the simulation).
    pub contract: Name,
    /// Smart-contract function to invoke.
    pub activity: Name,
    /// Function arguments (contracts must be deterministic in these).
    pub args: Arc<[Value]>,
    /// Organization whose client invokes the transaction.
    pub invoker_org: OrgId,
}

/// Everything a finished run produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The committed chain (the input to BlockOptR).
    pub ledger: Ledger,
    /// Aggregate measurements.
    pub report: SimReport,
}

#[derive(Debug, Clone)]
enum Ev {
    ClientSend(usize),
    ProposalReady(usize),
    EndorseExec { tx: usize, slot: usize },
    Assemble(usize),
    OrdererReceive(usize),
    OrdererTimeout { epoch: u64 },
    BlockValidated { block: usize },
}

#[derive(Debug, Clone)]
enum EndorseResult {
    Ok(ReadWriteSet),
    Abort(String),
}

#[derive(Debug, Clone, Default)]
struct Pending {
    worker: Option<ClientId>,
    client_ts: SimTime,
    submit_ts: SimTime,
    endorse_orgs: Vec<OrgId>,
    endorse_peers: Vec<PeerId>,
    endorse_starts: Vec<SimTime>,
    results: Vec<Option<EndorseResult>>,
    mismatch: bool,
    dropped: bool,
}

/// Blocks in flight between cutting and validation.
struct InFlightBlock {
    txs: Vec<usize>,
    order: Vec<usize>,
    aborted: std::collections::HashSet<usize>,
    policy_failed: std::collections::HashSet<usize>,
    cut_reason: CutReason,
    cut_ts: SimTime,
}

/// A configured Fabric network ready to run workloads.
pub struct Simulation {
    config: NetworkConfig,
    contracts: HashMap<String, Arc<dyn Contract>>,
    genesis: Vec<(String, String, Value)>,
}

impl Simulation {
    /// A simulation over `config` with no contracts installed yet.
    pub fn new(config: NetworkConfig) -> Self {
        Simulation {
            config,
            contracts: HashMap::new(),
            genesis: Vec::new(),
        }
    }

    /// Install (deploy) a chaincode.
    pub fn install(&mut self, contract: Arc<dyn Contract>) {
        self.contracts.insert(contract.name().to_string(), contract);
    }

    /// Seed genesis state: `key` under `namespace` gets `value` at version 0:0.
    pub fn seed(&mut self, namespace: &str, key: &str, value: Value) {
        self.genesis
            .push((namespace.to_string(), key.to_string(), value));
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Run the workload to completion and return the ledger + report.
    ///
    /// Panics if a request names an uninstalled contract.
    pub fn run(&self, requests: &[TxRequest]) -> SimOutput {
        self.run_observed(requests, &mut |_| {})
    }

    /// Like [`run`](Self::run), but invoke `on_commit` with every block the
    /// moment it commits to the ledger — the committed-block feed a live
    /// monitoring loop consumes (`blockoptr watch --live` bridges this
    /// callback onto a channel and ingests each block into a windowed
    /// session while the simulation is still running).
    ///
    /// The callback runs on the simulation's thread between block commits;
    /// it sees each block exactly once, in chain order.
    pub fn run_observed(
        &self,
        requests: &[TxRequest],
        on_commit: &mut dyn FnMut(&Block),
    ) -> SimOutput {
        let cfg = &self.config;
        let res = &cfg.resources;

        // Sorted injection schedule (stable by original index for ties).
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].send_time, i));

        let mut state = WorldState::new();
        for (ns, key, value) in &self.genesis {
            state.seed(qualified_key(ns, key), value.clone());
        }

        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut workers = WorkerFleet::new(cfg.orgs, cfg.clients_per_org);
        if let Some((org, factor)) = cfg.client_boost {
            workers.scale_org(OrgId(org), factor);
        }
        let mut endorsers = EndorserFleet::new(cfg.orgs, cfg.endorsers_per_org());
        let selector = EndorserSelector::new(
            &cfg.endorsement_policy,
            cfg.orgs,
            self.endorser_skew_from_seed(),
        );
        let mut rng = SimRng::derive(cfg.seed, 0xE5D0);
        let mut cutter = BlockCutter::new(cfg.block_count, cfg.block_bytes, cfg.block_timeout);
        let mut orderer_srv = QueueServer::new();
        let mut validator_srv = QueueServer::new();

        let mut pending: Vec<Pending> = vec![Pending::default(); requests.len()];
        let mut inflight: Vec<InFlightBlock> = Vec::new();
        let mut ledger = Ledger::new();
        let mut early_aborted = 0usize;
        let mut abort_reasons: BTreeMap<String, usize> = BTreeMap::new();
        let mut intra = 0usize;
        let mut inter = 0usize;

        let proposal_time = res.client_per_tx.mul_f64(0.6);
        let assemble_time = res.client_per_tx.mul_f64(0.4);

        let first_send = order
            .first()
            .map(|&i| requests[i].send_time)
            .unwrap_or(SimTime::ZERO);
        for &i in &order {
            queue.schedule(requests[i].send_time, Ev::ClientSend(i));
        }

        loop {
            while let Some((now, ev)) = queue.pop() {
                match ev {
                    Ev::ClientSend(i) => {
                        let req = &requests[i];
                        let worker = workers.assign(req.invoker_org);
                        pending[i].worker = Some(worker);
                        pending[i].client_ts = now;
                        let (_, done) = workers.submit(worker, now, proposal_time);
                        queue.schedule(done, Ev::ProposalReady(i));
                    }

                    Ev::ProposalReady(i) => {
                        let req = &requests[i];
                        let contract = self
                            .contracts
                            .get(req.contract.as_ref())
                            .unwrap_or_else(|| panic!("contract {:?} not installed", req.contract));
                        // Cost estimate from a dry execution at proposal time.
                        let mut est_ctx = TxContext::new(&state, contract.name());
                        let _ = contract.execute(&mut est_ctx, &req.activity, &req.args);
                        let accesses = est_ctx.access_count();
                        let service = res.endorse_exec_base
                            + res.endorse_exec_per_access.mul(accesses as u64);

                        let orgs: Vec<OrgId> = selector.choose(&mut rng).iter().copied().collect();
                        let arrival = now + res.net_delay;
                        let mut last_done = now;
                        for (slot, &org) in orgs.iter().enumerate() {
                            let (peer, start, done) = endorsers.submit(org, arrival, service);
                            pending[i].endorse_peers.push(peer);
                            pending[i].endorse_starts.push(start);
                            pending[i].results.push(None);
                            last_done = last_done.max(done);
                            queue.schedule(start, Ev::EndorseExec { tx: i, slot });
                        }
                        pending[i].endorse_orgs = orgs;
                        queue.schedule(last_done + res.net_delay, Ev::Assemble(i));
                    }

                    Ev::EndorseExec { tx, slot } => {
                        let req = &requests[tx];
                        let contract = &self.contracts[req.contract.as_ref()];
                        let mut ctx = TxContext::new(&state, contract.name());
                        let status = contract.execute(&mut ctx, &req.activity, &req.args);
                        pending[tx].results[slot] = Some(match status {
                            ExecStatus::Ok => EndorseResult::Ok(ctx.into_rwset()),
                            ExecStatus::Abort(reason) => EndorseResult::Abort(reason),
                        });
                    }

                    Ev::Assemble(i) => {
                        let p = &mut pending[i];
                        let mut first_ok: Option<usize> = None;
                        let mut aborted = false;
                        for (slot, r) in p.results.iter().enumerate() {
                            match r {
                                Some(EndorseResult::Ok(_)) => {
                                    first_ok = first_ok.or(Some(slot));
                                }
                                Some(EndorseResult::Abort(_)) => aborted = true,
                                None => {}
                            }
                        }
                        let Some(first) = first_ok.filter(|_| !aborted) else {
                            // The chaincode rejected the proposal on at least
                            // one endorser: the client cannot assemble a
                            // valid transaction — early abort (pruning path).
                            // The contract's reason feeds the report's
                            // failure breakdown.
                            let reason = p
                                .results
                                .iter()
                                .flatten()
                                .find_map(|r| match r {
                                    EndorseResult::Abort(reason) => Some(reason.as_str()),
                                    EndorseResult::Ok(_) => None,
                                })
                                .unwrap_or("no endorsement result");
                            *abort_reasons.entry(reason.to_string()).or_insert(0) += 1;
                            p.dropped = true;
                            early_aborted += 1;
                            continue;
                        };
                        let canonical = match p.results[first].as_ref() {
                            Some(EndorseResult::Ok(rw)) => rw,
                            _ => unreachable!("first_ok indexes an Ok result"),
                        };
                        p.mismatch = p
                            .results
                            .iter()
                            .flatten()
                            .any(|r| matches!(r, EndorseResult::Ok(rw) if rw != canonical));
                        let worker = p.worker.expect("assigned at ClientSend");
                        let (_, done) = workers.submit(worker, now, assemble_time);
                        p.submit_ts = done;
                        // Move the canonical rwset into slot 0 (no clone).
                        p.results.swap(0, first);
                        queue.schedule(done + res.net_delay, Ev::OrdererReceive(i));
                    }

                    Ev::OrdererReceive(i) => {
                        let size = self.proposal_size(&pending[i], &requests[i]);
                        match cutter.on_arrival(now, i, size) {
                            ArrivalOutcome::ArmTimer { deadline, epoch } => {
                                queue.schedule(deadline, Ev::OrdererTimeout { epoch });
                            }
                            ArrivalOutcome::CutNow(cut) => {
                                self.process_cut(
                                    cut,
                                    &pending,
                                    &mut inflight,
                                    &mut orderer_srv,
                                    &mut validator_srv,
                                    &mut queue,
                                );
                            }
                            ArrivalOutcome::Buffered => {}
                        }
                    }

                    Ev::OrdererTimeout { epoch } => {
                        if let Some(cut) = cutter.on_timeout(now, epoch) {
                            self.process_cut(
                                cut,
                                &pending,
                                &mut inflight,
                                &mut orderer_srv,
                                &mut validator_srv,
                                &mut queue,
                            );
                        }
                    }

                    Ev::BlockValidated { block } => {
                        let fb = &inflight[block];
                        let number = ledger.height() + 1;
                        let to_validate: Vec<TxToValidate<'_>> = fb
                            .order
                            .iter()
                            .map(|&pos| {
                                let tx_idx = fb.txs[pos];
                                let rwset = match pending[tx_idx].results[0]
                                    .as_ref()
                                    .expect("assembled tx has canonical rwset")
                                {
                                    EndorseResult::Ok(rw) => rw,
                                    EndorseResult::Abort(_) => {
                                        unreachable!("aborted txs never reach ordering")
                                    }
                                };
                                TxToValidate {
                                    rwset,
                                    endorse_mismatch: pending[tx_idx].mismatch,
                                    sched_aborted: fb.aborted.contains(&pos),
                                    sched_policy_failed: fb.policy_failed.contains(&pos),
                                }
                            })
                            .collect();
                        let tolerance = stale_tolerance_blocks(cfg.scheduler);
                        let verdicts = validate_block(&mut state, number, &to_validate, tolerance);

                        let mut envelopes = Vec::with_capacity(fb.order.len());
                        for (k, &pos) in fb.order.iter().enumerate() {
                            let tx_idx = fb.txs[pos];
                            let verdict = verdicts[k];
                            if verdict.status == TxStatus::MvccReadConflict {
                                if verdict.intra_block {
                                    intra += 1;
                                } else {
                                    inter += 1;
                                }
                            }
                            // Each transaction commits exactly once, so the
                            // canonical rwset and endorser list move into
                            // the envelope instead of being cloned.
                            let p = &mut pending[tx_idx];
                            let rwset = match p.results[0].take() {
                                Some(EndorseResult::Ok(rw)) => rw,
                                _ => unreachable!("committed tx has canonical rwset"),
                            };
                            let req = &requests[tx_idx];
                            envelopes.push(TransactionEnvelope {
                                id: TxId(tx_idx as u64),
                                client_ts: p.client_ts,
                                submit_ts: p.submit_ts,
                                commit_ts: now,
                                contract: req.contract.clone(),
                                activity: req.activity.clone(),
                                args: req.args.clone(),
                                endorsers: std::mem::take(&mut p.endorse_peers),
                                invoker: p.worker.expect("assigned"),
                                tx_type: rwset.tx_type(),
                                rwset,
                                status: verdict.status,
                            });
                        }
                        ledger.append(Block {
                            number,
                            cut_reason: fb.cut_reason,
                            cut_ts: fb.cut_ts,
                            commit_ts: now,
                            txs: envelopes,
                        });
                        on_commit(ledger.blocks().last().expect("just appended"));
                    }
                }
            }

            // Queue drained: flush any partial block, then keep going until
            // genuinely nothing is left.
            if let Some(cut) = cutter.flush(queue.now()) {
                self.process_cut(
                    cut,
                    &pending,
                    &mut inflight,
                    &mut orderer_srv,
                    &mut validator_srv,
                    &mut queue,
                );
            } else {
                break;
            }
        }

        let mut report = SimReport::from_ledger(&ledger, requests.len(), first_send);
        report.early_aborted = early_aborted;
        report.early_abort_reasons = abort_reasons;
        report.intra_block_conflicts = intra;
        report.inter_block_conflicts = inter;
        let horizon = SimTime::ZERO
            + SimDuration::from_secs_f64(report.duration_s)
            + first_send.since(SimTime::ZERO);
        report.client_utilization = ratio(workers.total_busy(), horizon, workers.total_workers());
        report.endorser_utilization =
            ratio(endorsers.total_busy(), horizon, endorsers.total_peers());
        report.orderer_utilization = orderer_srv.utilization(horizon);
        report.validator_utilization = validator_srv.utilization(horizon);
        report.endorsements_per_peer = endorsers
            .endorsement_counts()
            .into_iter()
            .map(|(p, c)| (p.to_string(), c))
            .collect();

        SimOutput { ledger, report }
    }

    /// Endorser-selection skew; stored on the config via the seed field would
    /// be opaque, so it lives in [`NetworkConfig`] — see `endorser_skew`.
    fn endorser_skew_from_seed(&self) -> f64 {
        self.config.endorser_skew
    }

    fn proposal_size(&self, p: &Pending, req: &TxRequest) -> u64 {
        let rw = match p.results[0].as_ref() {
            Some(EndorseResult::Ok(rw)) => rw.approx_size(),
            _ => 0,
        };
        let args: u64 = req.args.iter().map(Value::approx_size).sum();
        // Envelope framing + one signature per endorsement.
        256 + rw + args + 96 * p.endorse_peers.len() as u64
    }

    #[allow(clippy::too_many_arguments)]
    fn process_cut(
        &self,
        cut: Cut,
        pending: &[Pending],
        inflight: &mut Vec<InFlightBlock>,
        orderer_srv: &mut QueueServer,
        validator_srv: &mut QueueServer,
        queue: &mut EventQueue<Ev>,
    ) {
        let res = &self.config.resources;
        let sched_txs: Vec<SchedTx<'_>> = cut
            .txs
            .iter()
            .map(|&i| {
                let p = &pending[i];
                let rwset = match p.results[0].as_ref().expect("assembled") {
                    EndorseResult::Ok(rw) => rw,
                    EndorseResult::Abort(_) => unreachable!(),
                };
                let spread = p
                    .endorse_starts
                    .iter()
                    .max()
                    .copied()
                    .unwrap_or(SimTime::ZERO)
                    .since(
                        p.endorse_starts
                            .iter()
                            .min()
                            .copied()
                            .unwrap_or(SimTime::ZERO),
                    );
                SchedTx {
                    rwset,
                    endorse_spread: spread,
                }
            })
            .collect();
        let outcome = schedule_block(self.config.scheduler, &sched_txs);

        let n = cut.txs.len() as u64;
        let assembly = res.order_block_fixed + res.order_per_tx.mul(n) + outcome.extra_cost;
        let (_, assembled) = orderer_srv.submit(cut.at, assembly);
        let delivered = assembled + res.raft_delay + res.net_delay;

        let mut validation = res.validate_block_fixed;
        for &i in &cut.txs {
            let p = &pending[i];
            let items = match p.results[0].as_ref() {
                Some(EndorseResult::Ok(rw)) => {
                    rw.reads.len()
                        + rw.range_reads
                            .iter()
                            .map(|r| r.observed.len())
                            .sum::<usize>()
                }
                _ => 0,
            };
            validation += res.validate_per_tx
                + res.validate_per_item.mul(items as u64)
                + res
                    .validate_per_endorsement
                    .mul(p.endorse_peers.len() as u64);
        }
        let (_, validated) = validator_srv.submit(delivered, validation);

        inflight.push(InFlightBlock {
            txs: cut.txs,
            order: outcome.order,
            aborted: outcome.aborted,
            policy_failed: outcome.policy_failed,
            cut_reason: cut.reason,
            cut_ts: cut.at,
        });
        queue.schedule(
            validated,
            Ev::BlockValidated {
                block: inflight.len() - 1,
            },
        );
    }
}

fn ratio(busy: SimDuration, horizon: SimTime, servers: usize) -> f64 {
    let cap = horizon.as_micros() as f64 * servers.max(1) as f64;
    if cap <= 0.0 {
        0.0
    } else {
        (busy.as_micros() as f64 / cap).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use crate::policy::EndorsementPolicy;

    /// A minimal key-value contract for driver tests:
    /// `put k v`, `get k`, `upd k` (read+write), `fail` (always aborts).
    struct KvContract;

    impl Contract for KvContract {
        fn name(&self) -> &str {
            "kv"
        }
        fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
            match activity {
                "put" => {
                    let k = args[0].as_str().unwrap();
                    ctx.put_state(k, args[1].clone());
                    ExecStatus::Ok
                }
                "get" => {
                    let k = args[0].as_str().unwrap();
                    let _ = ctx.get_state(k);
                    ExecStatus::Ok
                }
                "upd" => {
                    let k = args[0].as_str().unwrap();
                    let v = ctx.get_state(k).and_then(|v| v.as_int()).unwrap_or(0);
                    ctx.put_state(k, Value::Int(v + 1));
                    ExecStatus::Ok
                }
                "fail" => ExecStatus::Abort("nope".into()),
                other => panic!("unknown activity {other}"),
            }
        }
        fn activities(&self) -> Vec<&'static str> {
            vec!["put", "get", "upd", "fail"]
        }
    }

    fn sim() -> Simulation {
        let cfg = NetworkConfig {
            orgs: 2,
            endorsement_policy: EndorsementPolicy::p3(2),
            block_count: 10,
            ..NetworkConfig::default()
        };
        let mut s = Simulation::new(cfg);
        s.install(Arc::new(KvContract));
        s.seed("kv", "counter", Value::Int(0));
        s
    }

    fn req(i: u64, activity: &str, args: Vec<Value>) -> TxRequest {
        TxRequest {
            send_time: SimTime::from_millis(i * 10),
            contract: "kv".into(),
            activity: activity.into(),
            args: args.into(),
            invoker_org: OrgId((i % 2) as u16),
        }
    }

    #[test]
    fn single_write_commits() {
        let s = sim();
        let out = s.run(&[req(0, "put", vec!["a".into(), Value::Int(1)])]);
        assert_eq!(out.report.committed, 1);
        assert_eq!(out.report.successes, 1);
        assert_eq!(out.report.blocks, 1);
        assert_eq!(out.ledger.blocks()[0].cut_reason, CutReason::Timeout);
        let tx = out.ledger.transactions().next().unwrap();
        assert_eq!(tx.activity.as_ref(), "put");
        assert_eq!(tx.status, TxStatus::Success);
        assert!(tx.commit_ts > tx.submit_ts);
        assert!(tx.submit_ts > tx.client_ts);
    }

    #[test]
    fn concurrent_updates_conflict() {
        let s = sim();
        // 20 updates of the same key sent in a burst: within each block only
        // the first updater wins; later ones read a stale version.
        let reqs: Vec<TxRequest> = (0..20)
            .map(|i| TxRequest {
                send_time: SimTime::from_micros(i * 100),
                contract: "kv".into(),
                activity: "upd".into(),
                args: vec!["counter".into()].into(),
                invoker_org: OrgId((i % 2) as u16),
            })
            .collect();
        let out = s.run(&reqs);
        assert_eq!(out.report.committed, 20);
        assert!(
            out.report.mvcc_conflicts > 10,
            "hot-key burst conflicts: {}",
            out.report.mvcc_conflicts
        );
        assert!(out.report.successes >= 1);
        assert!(
            out.report.intra_block_conflicts + out.report.inter_block_conflicts
                == out.report.mvcc_conflicts
        );
    }

    #[test]
    fn spaced_updates_all_succeed() {
        let s = sim();
        // 5 updates two seconds apart: every block commits before the next
        // endorsement, so no conflicts.
        let reqs: Vec<TxRequest> = (0..5)
            .map(|i| TxRequest {
                send_time: SimTime::from_secs(i * 2),
                contract: "kv".into(),
                activity: "upd".into(),
                args: vec!["counter".into()].into(),
                invoker_org: OrgId(0),
            })
            .collect();
        let out = s.run(&reqs);
        assert_eq!(out.report.successes, 5, "{}", out.report);
        assert_eq!(out.report.mvcc_conflicts, 0);
    }

    #[test]
    fn early_abort_skips_ledger() {
        let s = sim();
        let out = s.run(&[
            req(0, "fail", vec![]),
            req(1, "put", vec!["x".into(), Value::Int(1)]),
        ]);
        assert_eq!(out.report.early_aborted, 1);
        assert_eq!(out.report.committed, 1, "aborted tx never ordered");
        assert_eq!(out.report.requests, 2);
    }

    #[test]
    fn abort_reasons_reach_the_report() {
        let s = sim();
        let out = s.run(&[
            req(0, "fail", vec![]),
            req(1, "fail", vec![]),
            req(2, "put", vec!["x".into(), Value::Int(1)]),
        ]);
        assert_eq!(out.report.early_aborted, 2);
        // KvContract's `fail` activity aborts with reason "nope".
        assert_eq!(out.report.early_abort_reasons.get("nope"), Some(&2));
        assert_eq!(
            out.report.early_abort_reasons.values().sum::<usize>(),
            out.report.early_aborted,
            "every early abort carries a reason"
        );
        let text = out.report.to_string();
        assert!(text.contains("nope: 2"), "{text}");
    }

    #[test]
    fn block_count_cut_fires() {
        let s = sim(); // block_count = 10
        let reqs: Vec<TxRequest> = (0..25)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let out = s.run(&reqs);
        assert_eq!(out.report.committed, 25);
        let reasons: Vec<CutReason> = out.ledger.blocks().iter().map(|b| b.cut_reason).collect();
        assert!(
            reasons.iter().filter(|r| **r == CutReason::Count).count() >= 2,
            "{reasons:?}"
        );
        assert_eq!(out.ledger.blocks()[0].len(), 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let s1 = sim();
        let s2 = sim();
        let reqs: Vec<TxRequest> = (0..50)
            .map(|i| req(i, "upd", vec!["counter".into()]))
            .collect();
        let a = s1.run(&reqs);
        let b = s2.run(&reqs);
        assert_eq!(a.report.successes, b.report.successes);
        assert_eq!(a.report.mvcc_conflicts, b.report.mvcc_conflicts);
        assert!((a.report.avg_latency_s - b.report.avg_latency_s).abs() < 1e-12);
        let ids_a: Vec<u64> = a.ledger.transactions().map(|t| t.id.0).collect();
        let ids_b: Vec<u64> = b.ledger.transactions().map(|t| t.id.0).collect();
        assert_eq!(ids_a, ids_b, "identical commit order");
    }

    #[test]
    fn endorsers_recorded_per_policy() {
        let s = sim(); // majority of 2 orgs = both
        let out = s.run(&[req(0, "get", vec!["counter".into()])]);
        let tx = out.ledger.transactions().next().unwrap();
        assert_eq!(tx.endorsers.len(), 2, "both orgs endorse under majority");
        let orgs: std::collections::BTreeSet<u16> = tx.endorsers.iter().map(|p| p.org.0).collect();
        assert_eq!(orgs.len(), 2);
    }

    #[test]
    fn fabric_plus_plus_rescues_intra_block_readers() {
        // Interleave writers and readers of one key in a single burst. The
        // vanilla scheduler commits in arrival order (readers after writers
        // fail); Fabric++ moves readers first.
        let build = |kind: SchedulerKind| {
            let cfg = NetworkConfig {
                scheduler: kind,
                block_count: 20,
                ..NetworkConfig::default()
            };
            let mut s = Simulation::new(cfg);
            s.install(Arc::new(KvContract));
            s.seed("kv", "hot", Value::Int(0));
            s
        };
        let reqs: Vec<TxRequest> = (0..20)
            .map(|i| TxRequest {
                send_time: SimTime::from_micros(i * 200),
                contract: "kv".into(),
                activity: if i % 2 == 0 { "upd" } else { "get" }.into(),
                args: vec!["hot".into()].into(),
                invoker_org: OrgId((i % 2) as u16),
            })
            .collect();
        let vanilla = build(SchedulerKind::Vanilla).run(&reqs);
        let pp = build(SchedulerKind::FabricPlusPlus).run(&reqs);
        assert!(
            pp.report.successes > vanilla.report.successes,
            "fabric++ {} vs vanilla {}",
            pp.report.successes,
            vanilla.report.successes
        );
    }

    #[test]
    fn utilizations_are_bounded() {
        let s = sim();
        let reqs: Vec<TxRequest> = (0..100)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let out = s.run(&reqs);
        for u in [
            out.report.client_utilization,
            out.report.endorser_utilization,
            out.report.orderer_utilization,
            out.report.validator_utilization,
        ] {
            assert!((0.0..=1.0).contains(&u), "{u}");
        }
        assert!(out.report.endorser_utilization > 0.0);
    }

    #[test]
    fn observer_sees_every_block_as_it_commits() {
        let s = sim();
        let reqs: Vec<TxRequest> = (0..30)
            .map(|i| req(i, "put", vec![format!("k{i}").into(), Value::Int(1)]))
            .collect();
        let mut seen: Vec<(u64, usize)> = Vec::new();
        let out = s.run_observed(&reqs, &mut |block| {
            seen.push((block.number, block.len()));
        });
        let chain: Vec<(u64, usize)> = out
            .ledger
            .blocks()
            .iter()
            .map(|b| (b.number, b.len()))
            .collect();
        assert_eq!(seen, chain, "observer sees the chain, in order, once");
        // And the observed run is identical to an unobserved one.
        let plain = sim().run(&reqs);
        assert_eq!(plain.report.committed, out.report.committed);
        assert_eq!(plain.ledger.height(), out.ledger.height());
    }

    #[test]
    fn empty_workload_is_fine() {
        let s = sim();
        let out = s.run(&[]);
        assert_eq!(out.report.committed, 0);
        assert_eq!(out.report.blocks, 0);
    }
}
