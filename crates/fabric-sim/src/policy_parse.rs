//! Endorsement-policy parser.
//!
//! Parses the paper's policy syntax — `And(Org1, Or(Org2, Org3, Org4))`,
//! `OutOf(2, Org1, Org2, Org3, Org4)`, `Majority(Org1, Org2)` — back into an
//! [`EndorsementPolicy`]. Round-trips with the `Display` implementation, so
//! policies can live in configuration files and experiment specs.

use crate::policy::EndorsementPolicy;
use crate::types::OrgId;
use std::fmt;

/// A policy parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.error(format!("expected {c:?}")))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.input[self.pos..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        if start == self.pos {
            Err(self.error("expected an identifier"))
        } else {
            Ok(&self.input[start..self.pos])
        }
    }

    fn number(&mut self) -> Result<usize, ParseError> {
        let word = self.ident()?;
        word.parse()
            .map_err(|_| self.error(format!("expected a number, got {word:?}")))
    }

    fn args(&mut self) -> Result<Vec<EndorsementPolicy>, ParseError> {
        self.eat('(')?;
        let mut out = Vec::new();
        loop {
            out.push(self.policy()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some(')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.error("expected ',' or ')'")),
            }
        }
        Ok(out)
    }

    fn policy(&mut self) -> Result<EndorsementPolicy, ParseError> {
        let word = self.ident()?;
        match word {
            "And" | "AND" | "and" => Ok(EndorsementPolicy::And(self.args()?)),
            "Or" | "OR" | "or" => Ok(EndorsementPolicy::Or(self.args()?)),
            "OutOf" | "outof" | "OUTOF" => {
                self.eat('(')?;
                let k = self.number()?;
                self.eat(',')?;
                let mut rest = Vec::new();
                loop {
                    rest.push(self.policy()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.pos += 1,
                        Some(')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.error("expected ',' or ')'")),
                    }
                }
                if k == 0 || k > rest.len() {
                    return Err(
                        self.error(format!("OutOf threshold {k} outside 1..={}", rest.len()))
                    );
                }
                Ok(EndorsementPolicy::OutOf(k, rest))
            }
            "Majority" | "majority" => {
                let orgs = self.args()?;
                Ok(EndorsementPolicy::OutOf(orgs.len() / 2 + 1, orgs))
            }
            org if org.starts_with("Org") || org.starts_with("org") => {
                let n: u16 = org[3..]
                    .parse()
                    .map_err(|_| self.error(format!("bad organization {org:?}")))?;
                if n == 0 {
                    return Err(self.error("organizations are 1-based (Org1, Org2, …)"));
                }
                Ok(EndorsementPolicy::Org(OrgId(n - 1)))
            }
            other => Err(self.error(format!("unknown policy combinator {other:?}"))),
        }
    }
}

/// Parse a policy expression.
pub fn parse_policy(input: &str) -> Result<EndorsementPolicy, ParseError> {
    let mut p = Parser::new(input);
    let policy = p.policy()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.error("trailing input after policy"));
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_policies() {
        assert_eq!(
            parse_policy("And(Org1,Or(Org2,Org3,Org4))").unwrap(),
            EndorsementPolicy::p1()
        );
        assert_eq!(
            parse_policy("And(Or(Org1,Org2),Or(Org3,Org4))").unwrap(),
            EndorsementPolicy::p2()
        );
        assert_eq!(
            parse_policy("OutOf(2,Org1,Org2,Org3,Org4)").unwrap(),
            EndorsementPolicy::p4()
        );
        assert_eq!(
            parse_policy("Majority(Org1,Org2,Org3,Org4)").unwrap(),
            EndorsementPolicy::p3(4)
        );
    }

    #[test]
    fn whitespace_and_case_tolerated() {
        assert_eq!(
            parse_policy("  and( Org1 , or(Org2, Org3) ) ").unwrap(),
            EndorsementPolicy::And(vec![
                EndorsementPolicy::Org(OrgId(0)),
                EndorsementPolicy::Or(vec![
                    EndorsementPolicy::Org(OrgId(1)),
                    EndorsementPolicy::Org(OrgId(2)),
                ]),
            ])
        );
    }

    #[test]
    fn round_trips_display() {
        for policy in [
            EndorsementPolicy::p1(),
            EndorsementPolicy::p2(),
            EndorsementPolicy::p3(4),
            EndorsementPolicy::p4(),
            EndorsementPolicy::Org(OrgId(6)),
            EndorsementPolicy::out_of(3, 5),
        ] {
            let text = policy.to_string();
            assert_eq!(parse_policy(&text).unwrap(), policy, "{text}");
        }
    }

    #[test]
    fn nested_out_of() {
        let p = parse_policy("OutOf(1,And(Org1,Org2),Org3)").unwrap();
        let set: std::collections::BTreeSet<OrgId> = [OrgId(2)].into_iter().collect();
        assert!(p.satisfied_by(&set));
    }

    #[test]
    fn errors_carry_position_and_reason() {
        let err = parse_policy("And(Org1").unwrap_err();
        assert!(
            err.message.contains("','") || err.message.contains("')'"),
            "{err}"
        );
        let err = parse_policy("Xor(Org1,Org2)").unwrap_err();
        assert!(err.message.contains("unknown policy combinator"));
        let err = parse_policy("Org0").unwrap_err();
        assert!(err.message.contains("1-based"));
        let err = parse_policy("OutOf(9,Org1,Org2)").unwrap_err();
        assert!(err.message.contains("threshold"));
        let err = parse_policy("Org1 junk").unwrap_err();
        assert!(err.message.contains("trailing"));
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn single_org() {
        assert_eq!(
            parse_policy("Org7").unwrap(),
            EndorsementPolicy::Org(OrgId(6))
        );
    }
}
