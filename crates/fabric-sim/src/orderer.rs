//! Ordering-service block cutting.
//!
//! Fabric's orderer buffers endorsed transactions and cuts a block whenever
//! the first of three conditions is met (paper §2.1): the buffered count
//! reaches `block_count`, the buffered bytes reach `block_bytes`, or
//! `block_timeout` has elapsed since the first transaction was buffered.
//!
//! [`BlockCutter`] implements exactly that state machine; the simulation
//! drives it with DES events and feeds each cut through the configured
//! [`crate::scheduler`]. The timeout is one of **two racing events**: the
//! first arrival of a fresh buffer asks the driver to arm a cancellable
//! timer ([`ArrivalOutcome::ArmTimer`]), and a size- or byte-triggered cut
//! disarms it ([`sim_core::des::DesQueue::cancel`]), so a stale timer never
//! fires — the cutter itself carries no epoch bookkeeping.

use crate::ledger::CutReason;
use sim_core::time::{SimDuration, SimTime};

/// A cut block: the buffered transaction handles and why/when they were cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Indices (simulation transaction handles) in arrival order.
    pub txs: Vec<usize>,
    /// Which condition triggered the cut.
    pub reason: CutReason,
    /// When the cut happened.
    pub at: SimTime,
}

/// The orderer's transaction buffer and cutting rules.
#[derive(Debug, Clone)]
pub struct BlockCutter {
    block_count: usize,
    block_bytes: u64,
    timeout: SimDuration,
    buffer: Vec<usize>,
    buffered_bytes: u64,
    first_buffered_at: Option<SimTime>,
}

/// What the simulation should do after an arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// First transaction of a fresh buffer: arm a cancellable timer for
    /// `deadline`. The driver must cancel it when a size/byte cut wins the
    /// race.
    ArmTimer {
        /// Timer expiry (arrival + block timeout).
        deadline: SimTime,
    },
    /// A size or byte threshold was reached: a block was cut.
    CutNow(Cut),
    /// Buffered; an earlier timer is already armed.
    Buffered,
}

impl BlockCutter {
    /// A cutter with the given thresholds.
    pub fn new(block_count: usize, block_bytes: u64, timeout: SimDuration) -> Self {
        assert!(block_count >= 1, "block_count must be at least 1");
        assert!(block_bytes >= 1, "block_bytes must be at least 1");
        BlockCutter {
            block_count,
            block_bytes,
            timeout,
            buffer: Vec::new(),
            buffered_bytes: 0,
            first_buffered_at: None,
        }
    }

    /// Number of buffered transactions.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Handle a transaction arriving at `t` with serialized size `bytes`.
    pub fn on_arrival(&mut self, t: SimTime, tx: usize, bytes: u64) -> ArrivalOutcome {
        let was_empty = self.buffer.is_empty();
        self.buffer.push(tx);
        self.buffered_bytes += bytes;
        if was_empty {
            self.first_buffered_at = Some(t);
        }

        if self.buffer.len() >= self.block_count {
            ArrivalOutcome::CutNow(self.cut(t, CutReason::Count))
        } else if self.buffered_bytes >= self.block_bytes {
            ArrivalOutcome::CutNow(self.cut(t, CutReason::Bytes))
        } else if was_empty {
            ArrivalOutcome::ArmTimer {
                deadline: t + self.timeout,
            }
        } else {
            ArrivalOutcome::Buffered
        }
    }

    /// Handle the block timer firing at `t`. The driver only delivers live
    /// (uncancelled) timers, so any buffered work is cut; an empty buffer
    /// (a timer that should have been cancelled) is tolerated as a no-op.
    pub fn on_timeout(&mut self, t: SimTime) -> Option<Cut> {
        if self.buffer.is_empty() {
            return None;
        }
        Some(self.cut(t, CutReason::Timeout))
    }

    /// Flush a partial buffer at end of run.
    pub fn flush(&mut self, t: SimTime) -> Option<Cut> {
        if self.buffer.is_empty() {
            None
        } else {
            Some(self.cut(t, CutReason::Flush))
        }
    }

    fn cut(&mut self, t: SimTime, reason: CutReason) -> Cut {
        self.buffered_bytes = 0;
        self.first_buffered_at = None;
        Cut {
            txs: std::mem::take(&mut self.buffer),
            reason,
            at: t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cutter(count: usize) -> BlockCutter {
        BlockCutter::new(count, 1 << 30, SimDuration::from_secs(1))
    }

    #[test]
    fn first_arrival_arms_timer() {
        let mut c = cutter(10);
        match c.on_arrival(SimTime::from_millis(100), 0, 10) {
            ArrivalOutcome::ArmTimer { deadline } => {
                assert_eq!(deadline, SimTime::from_millis(1_100));
            }
            other => panic!("expected ArmTimer, got {other:?}"),
        }
        assert_eq!(c.buffered(), 1);
    }

    #[test]
    fn count_threshold_cuts_immediately() {
        let mut c = cutter(3);
        c.on_arrival(SimTime::from_millis(1), 0, 1);
        c.on_arrival(SimTime::from_millis(2), 1, 1);
        match c.on_arrival(SimTime::from_millis(3), 2, 1) {
            ArrivalOutcome::CutNow(cut) => {
                assert_eq!(cut.txs, vec![0, 1, 2]);
                assert_eq!(cut.reason, CutReason::Count);
                assert_eq!(cut.at, SimTime::from_millis(3));
            }
            other => panic!("expected CutNow, got {other:?}"),
        }
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn bytes_threshold_cuts() {
        let mut c = BlockCutter::new(1000, 100, SimDuration::from_secs(1));
        c.on_arrival(SimTime::from_millis(1), 0, 60);
        match c.on_arrival(SimTime::from_millis(2), 1, 50) {
            ArrivalOutcome::CutNow(cut) => assert_eq!(cut.reason, CutReason::Bytes),
            other => panic!("expected CutNow, got {other:?}"),
        }
    }

    #[test]
    fn fresh_buffer_after_cut_rearms() {
        let mut c = cutter(2);
        match c.on_arrival(SimTime::from_millis(1), 0, 1) {
            ArrivalOutcome::ArmTimer { .. } => {}
            other => panic!("{other:?}"),
        }
        // Count cut: the driver cancels the armed timer...
        match c.on_arrival(SimTime::from_millis(2), 1, 1) {
            ArrivalOutcome::CutNow(_) => {}
            other => panic!("{other:?}"),
        }
        // ...and the next arrival starts a fresh buffer with a fresh timer.
        match c.on_arrival(SimTime::from_millis(3), 2, 1) {
            ArrivalOutcome::ArmTimer { deadline } => {
                assert_eq!(deadline, SimTime::from_millis(1_003));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(c.buffered(), 1, "tx 2 buffered under the new timer");
    }

    #[test]
    fn current_timer_cuts_partial_block() {
        let mut c = cutter(100);
        let deadline = match c.on_arrival(SimTime::from_millis(5), 7, 1) {
            ArrivalOutcome::ArmTimer { deadline } => deadline,
            other => panic!("{other:?}"),
        };
        c.on_arrival(SimTime::from_millis(6), 8, 1);
        let cut = c.on_timeout(deadline).expect("timer fires");
        assert_eq!(cut.txs, vec![7, 8]);
        assert_eq!(cut.reason, CutReason::Timeout);
        assert_eq!(cut.at, deadline);
    }

    #[test]
    fn timer_on_empty_buffer_is_noop() {
        let mut c = cutter(2);
        assert_eq!(c.on_timeout(SimTime::from_secs(5)), None);
    }

    #[test]
    fn flush_returns_partial_block() {
        let mut c = cutter(100);
        assert!(c.flush(SimTime::from_secs(1)).is_none(), "nothing buffered");
        c.on_arrival(SimTime::from_millis(1), 0, 1);
        let cut = c.flush(SimTime::from_secs(2)).unwrap();
        assert_eq!(cut.reason, CutReason::Flush);
        assert_eq!(cut.txs, vec![0]);
    }

    #[test]
    fn byte_counter_resets_after_cut() {
        let mut c = BlockCutter::new(1000, 100, SimDuration::from_secs(1));
        c.on_arrival(SimTime::ZERO, 0, 99);
        match c.on_arrival(SimTime::ZERO, 1, 1) {
            ArrivalOutcome::CutNow(_) => {}
            other => panic!("{other:?}"),
        }
        // Fresh buffer starts from zero bytes.
        match c.on_arrival(SimTime::ZERO, 2, 99) {
            ArrivalOutcome::ArmTimer { .. } => {}
            other => panic!("{other:?}"),
        }
    }
}
