//! The immutable ledger.
//!
//! Fabric appends *every* ordered transaction to the ledger — valid or not —
//! with a validation flag. BlockOptR's whole premise is that this log is a
//! complete record of the system's behaviour; the `blockoptr` crate derives
//! all nine attributes of its blockchain log from these envelopes.

use crate::rwset::ReadWriteSet;
use crate::types::{ClientId, Name, PeerId, TxId, TxType, Value};
use serde::{Deserialize, Serialize};
use sim_core::time::SimTime;
use std::fmt;

/// Validation outcome of a committed transaction (paper attribute 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxStatus {
    /// Valid: endorsements and read set checked out; writes were applied.
    Success,
    /// A point read's version was stale at validation time.
    MvccReadConflict,
    /// A range read's result set changed between execution and validation.
    PhantomReadConflict,
    /// Endorsements were missing, mismatched, or insufficient for the policy.
    EndorsementPolicyFailure,
}

impl TxStatus {
    /// Whether the transaction was committed as valid.
    pub fn is_success(self) -> bool {
        self == TxStatus::Success
    }

    /// Whether this is either flavour of read-conflict failure.
    pub fn is_read_conflict(self) -> bool {
        matches!(
            self,
            TxStatus::MvccReadConflict | TxStatus::PhantomReadConflict
        )
    }
}

impl fmt::Display for TxStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxStatus::Success => "SUCCESS",
            TxStatus::MvccReadConflict => "MVCC_READ_CONFLICT",
            TxStatus::PhantomReadConflict => "PHANTOM_READ_CONFLICT",
            TxStatus::EndorsementPolicyFailure => "ENDORSEMENT_POLICY_FAILURE",
        };
        f.write_str(s)
    }
}

/// Why the orderer cut a block (paper §2.1: count, timeout, or bytes —
/// whichever is satisfied first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CutReason {
    /// The buffered transaction count reached `block_count`.
    Count,
    /// `block_timeout` elapsed since the first buffered transaction.
    Timeout,
    /// The buffered bytes reached `block_bytes`.
    Bytes,
    /// End of simulation flushed a partial block.
    Flush,
}

/// A committed transaction with everything the blockchain records about it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransactionEnvelope {
    /// Unique transaction id.
    pub id: TxId,
    /// Wall-clock (simulated) time the client created the proposal —
    /// the paper's *client timestamp* attribute.
    pub client_ts: SimTime,
    /// Time the client submitted the endorsed transaction to ordering.
    pub submit_ts: SimTime,
    /// Time the transaction's block was committed.
    pub commit_ts: SimTime,
    /// Chaincode (smart contract) the transaction executed.
    pub contract: Name,
    /// Smart-contract function name — the paper's *activity name*.
    pub activity: Name,
    /// Function arguments (shared with the originating request).
    pub args: std::sync::Arc<[Value]>,
    /// Endorsing peers that signed the proposal.
    pub endorsers: Vec<PeerId>,
    /// Invoking client (and thereby its organization).
    pub invoker: ClientId,
    /// The proposal's read-write set (from the first endorser).
    pub rwset: ReadWriteSet,
    /// Validation outcome.
    pub status: TxStatus,
    /// Transaction type derived from the read-write set.
    pub tx_type: TxType,
}

impl TransactionEnvelope {
    /// End-to-end latency: proposal creation → block commit.
    pub fn latency(&self) -> sim_core::time::SimDuration {
        self.commit_ts.since(self.client_ts)
    }
}

/// A block: an ordered run of transaction envelopes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block {
    /// Height (genesis = 0 is implicit and empty; data blocks start at 1).
    pub number: u64,
    /// Why the orderer cut this block.
    pub cut_reason: CutReason,
    /// When the orderer cut it.
    pub cut_ts: SimTime,
    /// When peers finished validating and committing it.
    pub commit_ts: SimTime,
    /// The transactions, in commit order.
    pub txs: Vec<TransactionEnvelope>,
}

impl Block {
    /// Number of transactions in the block.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }
}

/// The chain of committed blocks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ledger {
    blocks: Vec<Block>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a block (heights must be contiguous and increasing).
    pub fn append(&mut self, block: Block) {
        if let Some(last) = self.blocks.last() {
            assert_eq!(
                block.number,
                last.number + 1,
                "ledger blocks must be contiguous"
            );
        }
        self.blocks.push(block);
    }

    /// All blocks in chain order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Height of the chain (number of blocks).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// The blocks with number `first` or higher, in chain order — the
    /// streaming accessor: a monitoring loop remembers the last block it
    /// ingested and asks for everything the chain has appended since.
    ///
    /// Data blocks are numbered contiguously from 1, so this is an O(1)
    /// slice, not a scan.
    pub fn blocks_from(&self, first: u64) -> &[Block] {
        let Some(head) = self.blocks.first() else {
            return &[];
        };
        let skip = first
            .saturating_sub(head.number)
            .min(self.blocks.len() as u64) as usize;
        &self.blocks[skip..]
    }

    /// Iterate over every transaction in commit order — the paper's
    /// *commit order* attribute is exactly this iteration order.
    pub fn transactions(&self) -> impl Iterator<Item = &TransactionEnvelope> {
        self.blocks.iter().flat_map(|b| b.txs.iter())
    }

    /// Total committed transactions (valid and invalid).
    pub fn tx_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Count of transactions with the given status.
    pub fn count_status(&self, status: TxStatus) -> usize {
        self.transactions().filter(|t| t.status == status).count()
    }

    /// Mean number of transactions per block — the paper's `Bsizeavg`.
    pub fn avg_block_size(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.tx_count() as f64 / self.blocks.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OrgId;

    fn envelope(id: u64, status: TxStatus) -> TransactionEnvelope {
        TransactionEnvelope {
            id: TxId(id),
            client_ts: SimTime::from_millis(id * 10),
            submit_ts: SimTime::from_millis(id * 10 + 5),
            commit_ts: SimTime::from_millis(id * 10 + 100),
            contract: "cc".into(),
            activity: "act".into(),
            args: vec![].into(),
            endorsers: vec![PeerId {
                org: OrgId(0),
                index: 0,
            }],
            invoker: ClientId {
                org: OrgId(0),
                index: 0,
            },
            rwset: ReadWriteSet::new(),
            status,
            tx_type: TxType::Read,
        }
    }

    fn block(number: u64, ids: &[u64]) -> Block {
        Block {
            number,
            cut_reason: CutReason::Count,
            cut_ts: SimTime::from_millis(number * 1000),
            commit_ts: SimTime::from_millis(number * 1000 + 200),
            txs: ids
                .iter()
                .map(|&i| envelope(i, TxStatus::Success))
                .collect(),
        }
    }

    #[test]
    fn ledger_appends_contiguously() {
        let mut l = Ledger::new();
        l.append(block(1, &[1, 2]));
        l.append(block(2, &[3]));
        assert_eq!(l.height(), 2);
        assert_eq!(l.tx_count(), 3);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn ledger_rejects_gaps() {
        let mut l = Ledger::new();
        l.append(block(1, &[1]));
        l.append(block(3, &[2]));
    }

    #[test]
    fn blocks_from_slices_by_height() {
        let mut l = Ledger::new();
        l.append(block(1, &[1]));
        l.append(block(2, &[2]));
        l.append(block(3, &[3]));
        assert_eq!(l.blocks_from(0).len(), 3);
        assert_eq!(l.blocks_from(1).len(), 3);
        assert_eq!(l.blocks_from(2).len(), 2);
        assert_eq!(l.blocks_from(2)[0].number, 2);
        assert_eq!(l.blocks_from(4).len(), 0);
        assert_eq!(l.blocks_from(99).len(), 0);
        assert!(Ledger::new().blocks_from(1).is_empty());
    }

    #[test]
    fn commit_order_is_block_then_position() {
        let mut l = Ledger::new();
        l.append(block(1, &[10, 11]));
        l.append(block(2, &[12]));
        let ids: Vec<u64> = l.transactions().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![10, 11, 12]);
    }

    #[test]
    fn status_counting() {
        let mut b = block(1, &[]);
        b.txs.push(envelope(1, TxStatus::Success));
        b.txs.push(envelope(2, TxStatus::MvccReadConflict));
        b.txs.push(envelope(3, TxStatus::MvccReadConflict));
        let mut l = Ledger::new();
        l.append(b);
        assert_eq!(l.count_status(TxStatus::Success), 1);
        assert_eq!(l.count_status(TxStatus::MvccReadConflict), 2);
        assert_eq!(l.count_status(TxStatus::PhantomReadConflict), 0);
    }

    #[test]
    fn avg_block_size() {
        let mut l = Ledger::new();
        assert_eq!(l.avg_block_size(), 0.0);
        l.append(block(1, &[1, 2, 3, 4]));
        l.append(block(2, &[5, 6]));
        assert!((l.avg_block_size() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn latency_is_commit_minus_client_ts() {
        let e = envelope(5, TxStatus::Success);
        assert_eq!(e.latency(), sim_core::time::SimDuration::from_millis(100));
    }

    #[test]
    fn status_predicates() {
        assert!(TxStatus::Success.is_success());
        assert!(TxStatus::MvccReadConflict.is_read_conflict());
        assert!(TxStatus::PhantomReadConflict.is_read_conflict());
        assert!(!TxStatus::EndorsementPolicyFailure.is_read_conflict());
        assert_eq!(
            TxStatus::EndorsementPolicyFailure.to_string(),
            "ENDORSEMENT_POLICY_FAILURE"
        );
    }
}
