//! The versioned world state.
//!
//! A single committed key-value store shared by all peers. The simulator
//! processes endorsement and commit events in global time order, so "the
//! committed state at time t" is always exactly this structure — peers never
//! diverge (they validate deterministically and commit in lock-step, as the
//! paper's single-channel Fabric deployment does).

use crate::rwset::{Version, WriteItem};
use crate::types::{Key, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A committed value and the version of the transaction that wrote it.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionedValue {
    /// Current value.
    pub value: Value,
    /// Version of the last committed write.
    pub version: Version,
}

/// The committed world state: an ordered map so range scans are natural.
#[derive(Debug, Clone, Default)]
pub struct WorldState {
    map: BTreeMap<Key, VersionedValue>,
}

impl WorldState {
    /// An empty world state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&VersionedValue> {
        self.map.get(key)
    }

    /// The committed version of a key, if present.
    pub fn version_of(&self, key: &str) -> Option<Version> {
        self.map.get(key).map(|vv| vv.version)
    }

    /// Range scan over `[start, end)` in key order.
    pub fn range<'a>(
        &'a self,
        start: &str,
        end: &str,
    ) -> impl Iterator<Item = (&'a Key, &'a VersionedValue)> + 'a {
        self.map
            .range::<str, _>((Bound::Included(start), Bound::Excluded(end)))
    }

    /// Directly set a key (used for genesis/bootstrap state, version 0:0).
    pub fn seed(&mut self, key: Key, value: Value) {
        self.map.insert(
            key,
            VersionedValue {
                value,
                version: Version::new(0, 0),
            },
        );
    }

    /// Apply the write set of a validated transaction at `version`.
    pub fn apply(&mut self, writes: &[WriteItem], version: Version) {
        for w in writes {
            match &w.value {
                Some(v) => {
                    self.map.insert(
                        w.key.clone(),
                        VersionedValue {
                            value: v.clone(),
                            version,
                        },
                    );
                }
                None => {
                    self.map.remove(&w.key);
                }
            }
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over all live keys in order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &VersionedValue)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(key: &str, val: i64) -> WriteItem {
        WriteItem {
            key: key.to_string(),
            value: Some(Value::Int(val)),
        }
    }

    fn del(key: &str) -> WriteItem {
        WriteItem {
            key: key.to_string(),
            value: None,
        }
    }

    #[test]
    fn apply_inserts_with_version() {
        let mut s = WorldState::new();
        s.apply(&[w("a", 1)], Version::new(3, 2));
        assert_eq!(s.get("a").unwrap().value, Value::Int(1));
        assert_eq!(s.version_of("a"), Some(Version::new(3, 2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_overwrites_bump_version() {
        let mut s = WorldState::new();
        s.apply(&[w("a", 1)], Version::new(1, 0));
        s.apply(&[w("a", 2)], Version::new(2, 5));
        assert_eq!(s.get("a").unwrap().value, Value::Int(2));
        assert_eq!(s.version_of("a"), Some(Version::new(2, 5)));
    }

    #[test]
    fn delete_removes_key() {
        let mut s = WorldState::new();
        s.apply(&[w("a", 1)], Version::new(1, 0));
        s.apply(&[del("a")], Version::new(2, 0));
        assert!(s.get("a").is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn range_is_half_open_and_ordered() {
        let mut s = WorldState::new();
        for k in ["k01", "k02", "k03", "k10"] {
            s.seed(k.to_string(), Value::Unit);
        }
        let keys: Vec<_> = s.range("k01", "k03").map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["k01", "k02"], "end bound excluded");
        let all: Vec<_> = s.range("", "z").map(|(k, _)| k.as_str()).collect();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn seed_uses_genesis_version() {
        let mut s = WorldState::new();
        s.seed("g".into(), Value::Str("x".into()));
        assert_eq!(s.version_of("g"), Some(Version::new(0, 0)));
    }

    #[test]
    fn iter_walks_keys_in_order() {
        let mut s = WorldState::new();
        s.seed("b".into(), Value::Unit);
        s.seed("a".into(), Value::Unit);
        let keys: Vec<_> = s.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
    }
}
