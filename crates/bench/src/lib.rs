//! # bench
//!
//! The experiment harness: regenerates every table and figure of the paper's
//! evaluation (§6) against the simulated Fabric substrate, plus Criterion
//! micro-benchmarks of the tool itself.
//!
//! Run everything: `cargo run --release -p bench --bin experiments -- all`
//! or a single artifact: `… -- fig13`.

pub mod experiments;
pub mod table;
pub mod wallclock;

pub use table::{pct, FigureTable};

use fabric_sim::config::NetworkConfig;
use fabric_sim::report::SimReport;
use workload::WorkloadBundle;

/// Run one configuration and return its report (convenience wrapper).
pub fn run(bundle: &WorkloadBundle, config: NetworkConfig) -> SimReport {
    bundle.run(config).report
}
