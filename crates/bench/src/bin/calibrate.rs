//! Calibration scratchpad: run key workload configurations and print the
//! three paper metrics, to tune `ResourceProfile` against the paper's
//! reported shapes. Not part of the experiment suite proper.

use bench::FigureTable;
use fabric_sim::config::NetworkConfig;
use workload::spec::{ControlVariables, PolicyChoice, WorkloadType};
use workload::{drm, dv, ehr, lap, scm, synthetic};

fn main() {
    let mut t = FigureTable::new("calibration");

    // Default synthetic workload (paper regime: ~80-92% success, multi-second
    // latency, ~170-230 tps at send rate 300).
    let cv = ControlVariables::default();
    let b = synthetic::generate(&cv);
    let r = b.run(cv.network_config()).report;
    t.add("synthetic defaults (send 300)", "W/O", &r);
    eprintln!(
        "defaults detail: epf={} mvcc={} (intra {} inter {}) phantom={} blocks={} bsize={:.0} util c/e/o/v = {:.2}/{:.2}/{:.2}/{:.2}",
        r.endorsement_failures,
        r.mvcc_conflicts,
        r.intra_block_conflicts,
        r.inter_block_conflicts,
        r.phantom_conflicts,
        r.blocks,
        r.avg_block_size,
        r.client_utilization,
        r.endorser_utilization,
        r.orderer_utilization,
        r.validator_utilization,
    );

    // Rate control 100 tps (paper: ~95-99 tps, ~1-2 s, 97-99 %).
    let cv100 = ControlVariables {
        send_rate: 100.0,
        ..Default::default()
    };
    let b100 = synthetic::generate(&cv100);
    t.add(
        "synthetic defaults",
        "rate 100",
        &b100.run(cv100.network_config()).report,
    );

    // P1 endorsement bottleneck (paper: 107 tps, 16.8 s, 87.5 %).
    let cv_p1 = ControlVariables {
        policy: PolicyChoice::P1,
        ..Default::default()
    };
    let bp1 = synthetic::generate(&cv_p1);
    t.add("policy P1", "W/O", &bp1.run(cv_p1.network_config()).report);
    // Restructured to P4 (paper: 151 tps, 10.4 s, 89.4 %).
    let mut cfg_p4 = cv_p1.network_config();
    cfg_p4.endorsement_policy = fabric_sim::policy::EndorsementPolicy::p4();
    t.add("policy P1", "→P4", &bp1.run(cfg_p4).report);

    // Block count 50 (paper: ~15 tps, 3.3 s, 13.8 % — severe).
    let cv50 = ControlVariables {
        block_count: 50,
        ..Default::default()
    };
    let b50 = synthetic::generate(&cv50);
    t.add(
        "block count 50",
        "W/O",
        &b50.run(cv50.network_config()).report,
    );
    // Adapted to 300 (paper: 217.9 tps, 4.9 s, 92.8 %).
    let mut cfg300 = cv50.network_config();
    cfg300.block_count = 300;
    t.add("block count 50", "→300", &b50.run(cfg300).report);

    // Block count 1000 (paper: ~189-211 tps, 6-11 s, 63-92 %).
    let cv1000 = ControlVariables {
        block_count: 1000,
        ..Default::default()
    };
    let b1000 = synthetic::generate(&cv1000);
    t.add(
        "block count 1000",
        "W/O",
        &b1000.run(cv1000.network_config()).report,
    );

    // Update-heavy (paper: 179 tps, 6.1 s, 83.5 %).
    let cv_uh = ControlVariables {
        workload: WorkloadType::UpdateHeavy,
        ..Default::default()
    };
    let buh = synthetic::generate(&cv_uh);
    t.add(
        "update-heavy",
        "W/O",
        &buh.run(cv_uh.network_config()).report,
    );

    // Read-heavy (paper: 231.8 tps, 4.3 s, 95.2 %).
    let cv_rh = ControlVariables {
        workload: WorkloadType::ReadHeavy,
        ..Default::default()
    };
    let brh = synthetic::generate(&cv_rh);
    t.add("read-heavy", "W/O", &brh.run(cv_rh.network_config()).report);

    // RangeRead-heavy (paper: 12.4 tps, 27.3 s, 11.5 %).
    let cv_rr = ControlVariables {
        workload: WorkloadType::RangeReadHeavy,
        ..Default::default()
    };
    let brr = synthetic::generate(&cv_rr);
    t.add(
        "rangeread-heavy",
        "W/O",
        &brr.run(cv_rr.network_config()).report,
    );

    // Key skew 2 (paper: 99.3 tps, 2.9 s, 37.7 %).
    let cv_ks = ControlVariables {
        key_skew: 2.0,
        ..Default::default()
    };
    let bks = synthetic::generate(&cv_ks);
    t.add("key skew 2", "W/O", &bks.run(cv_ks.network_config()).report);

    // Tx dist skew 70% (paper: 160.8 tps, 3.3 s, 59.9 %; boost → 190.6, 0.8, 64.4).
    let cv_tds = ControlVariables {
        tx_dist_skew: 0.7,
        ..Default::default()
    };
    let btds = synthetic::generate(&cv_tds);
    t.add(
        "tx dist skew 70%",
        "W/O",
        &btds.run(cv_tds.network_config()).report,
    );
    let mut cfg_boost = cv_tds.network_config();
    cfg_boost.client_boost = Some((0, 2));
    t.add(
        "tx dist skew 70%",
        "client boost",
        &btds.run(cfg_boost).report,
    );

    // SCM (paper: 207.5 tps, 7.3 s, 79.8 %).
    let scm_spec = scm::ScmSpec::default();
    let bscm = scm::generate(&scm_spec);
    t.add("SCM", "W/O", &bscm.run(NetworkConfig::default()).report);
    t.add(
        "SCM",
        "pruned",
        &scm::pruned(bscm.clone())
            .run(NetworkConfig::default())
            .report,
    );

    // DRM (paper: 35.1 tps, 14 s, 20.1 %).
    let drm_spec = drm::DrmSpec::default();
    let bdrm = drm::generate(&drm_spec);
    t.add("DRM", "W/O", &bdrm.run(NetworkConfig::default()).report);
    t.add(
        "DRM",
        "delta",
        &drm::delta_writes(bdrm.clone())
            .run(NetworkConfig::default())
            .report,
    );
    t.add(
        "DRM",
        "partitioned",
        &drm::partitioned(bdrm.clone(), &drm_spec)
            .run(NetworkConfig::default())
            .report,
    );

    // EHR (paper: 55.6 tps, 6.4 s, 19.7 %).
    let ehr_spec = ehr::EhrSpec::default();
    let behr = ehr::generate(&ehr_spec);
    t.add("EHR", "W/O", &behr.run(NetworkConfig::default()).report);

    // DV (paper: 4.2 tps, 4.6 s, 10.2 %; altered → 54.3 tps, 100 %).
    let dv_spec = dv::DvSpec::default();
    let bdv = dv::generate(&dv_spec);
    t.add("DV", "W/O", &bdv.run(NetworkConfig::default()).report);
    t.add(
        "DV",
        "per-voter",
        &dv::per_voter(bdv.clone())
            .run(NetworkConfig::default())
            .report,
    );

    // LAP @10tps (paper: 3.2 tps, 1.5 s, 31.8 %; altered → 6.6, 1.2, 66.0).
    let lap_spec = lap::LapSpec::default();
    let blap = lap::generate(&lap_spec);
    t.add("LAP @10", "W/O", &blap.run(NetworkConfig::default()).report);
    t.add(
        "LAP @10",
        "by-application",
        &lap::by_application(blap.clone())
            .run(NetworkConfig::default())
            .report,
    );

    println!("{}", t.render());
}
