//! The experiment harness CLI.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- fig13 fig14
//! cargo run --release -p bench --bin experiments -- --quick tab3
//! cargo run --release -p bench --bin experiments -- --list
//! ```
//!
//! `--quick` scales workloads down to ~20 % for smoke runs.

use bench::experiments::{registry, ExpCtx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExpCtx::default();
    let mut wanted: Vec<String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--quick" => ctx.scale = 0.2,
            "--list" => {
                for e in registry() {
                    println!("{:<8} {}", e.id, e.title);
                }
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: experiments [--quick] [--list] <id|all> ...");
        eprintln!("known ids:");
        for e in registry() {
            eprintln!("  {:<8} {}", e.id, e.title);
        }
        std::process::exit(2);
    }

    let run_all = wanted.iter().any(|w| w == "all");
    let mut ran = 0;
    for e in registry() {
        if run_all || wanted.iter().any(|w| w == e.id) {
            eprintln!("▶ {} — {}", e.id, e.title);
            let started = std::time::Instant::now();
            print!("{}", (e.run)(&ctx));
            eprintln!(
                "  ({} done in {:.1}s)",
                e.id,
                started.elapsed().as_secs_f64()
            );
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }
}
