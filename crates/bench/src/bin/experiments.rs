//! The experiment harness CLI.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- fig13 fig14
//! cargo run --release -p bench --bin experiments -- --quick tab3
//! cargo run --release -p bench --bin experiments -- --threads 4 all
//! cargo run --release -p bench --bin experiments -- --list
//! ```
//!
//! `--quick` scales workloads down to ~20 % for smoke runs. Experiments
//! are independent, so the grid fans out over a worker pool (`--threads`,
//! default `BLOCKOPTR_THREADS` or all cores); outputs are printed in
//! registry order regardless of which worker finished first, so the
//! rendered tables are byte-identical to a serial run.

use bench::experiments::{registry, ExpCtx, Experiment};
use sim_core::pool::{self, ThreadPool};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExpCtx::default();
    let mut threads = pool::default_threads();
    let mut wanted: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => ctx.scale = 0.2,
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--list" => {
                for e in registry() {
                    println!("{:<8} {}", e.id, e.title);
                }
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: experiments [--quick] [--threads N] [--list] <id|all> ...");
        eprintln!("known ids:");
        for e in registry() {
            eprintln!("  {:<8} {}", e.id, e.title);
        }
        std::process::exit(2);
    }

    let run_all = wanted.iter().any(|w| w == "all");
    let selected: Vec<Experiment> = registry()
        .into_iter()
        .filter(|e| run_all || wanted.iter().any(|w| w == e.id))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }

    // Split the thread budget between the outer per-experiment pool and
    // each experiment's inner simulation fan-out, so `--threads 8` means
    // ~8 busy threads total, not 8 × cores.
    let outer = threads.min(selected.len()).max(1);
    ctx.plan_threads = (threads / outer).max(1);

    let started = bench::wallclock::Stopwatch::start();
    let outputs = ThreadPool::new(outer).map(selected, |e| {
        eprintln!("▶ {} — {}", e.id, e.title);
        let t0 = bench::wallclock::Stopwatch::start();
        let rendered = (e.run)(&ctx);
        (e, rendered, t0.elapsed().as_secs_f64())
    });
    for (e, rendered, secs) in &outputs {
        print!("{rendered}");
        eprintln!("  ({} done in {secs:.1}s)", e.id);
    }
    eprintln!(
        "{} experiments in {:.1}s on {threads} thread(s)",
        outputs.len(),
        started.elapsed().as_secs_f64()
    );
}
