//! Calibration scratchpad for recommendation fidelity: prints the
//! recommendation set BlockOptR derives for each paper workload.

use blockoptr::pipeline::run_and_analyze;
use fabric_sim::config::NetworkConfig;
use workload::spec::{ControlVariables, PolicyChoice, WorkloadType};
use workload::{drm, dv, ehr, lap, scm, synthetic};

fn show(name: &str, names: Vec<&str>) {
    println!("{name:<42} → {}", names.join(" | "));
}

fn main() {
    let synth = |name: &str, cv: ControlVariables| {
        let b = synthetic::generate(&cv);
        let (_, a) = run_and_analyze(&b, cv.network_config());
        show(name, a.recommendation_names());
    };
    synth("defaults", ControlVariables::default());
    synth(
        "exp1 P1",
        ControlVariables {
            policy: PolicyChoice::P1,
            ..Default::default()
        },
    );
    synth(
        "exp2 P2+skew6",
        ControlVariables {
            policy: PolicyChoice::P2,
            endorser_skew: 6.0,
            ..Default::default()
        },
    );
    synth(
        "exp3 orgs4",
        ControlVariables {
            orgs: 4,
            ..Default::default()
        },
    );
    synth(
        "exp4 read-heavy",
        ControlVariables {
            workload: WorkloadType::ReadHeavy,
            ..Default::default()
        },
    );
    synth(
        "exp5 update-heavy",
        ControlVariables {
            workload: WorkloadType::UpdateHeavy,
            ..Default::default()
        },
    );
    synth(
        "exp6 insert-heavy",
        ControlVariables {
            workload: WorkloadType::InsertHeavy,
            ..Default::default()
        },
    );
    synth(
        "exp7 rangeread-heavy",
        ControlVariables {
            workload: WorkloadType::RangeReadHeavy,
            ..Default::default()
        },
    );
    synth(
        "exp8 key skew 2",
        ControlVariables {
            key_skew: 2.0,
            ..Default::default()
        },
    );
    synth(
        "exp9 block 50",
        ControlVariables {
            block_count: 50,
            ..Default::default()
        },
    );
    synth(
        "exp10 block 300",
        ControlVariables {
            block_count: 300,
            ..Default::default()
        },
    );
    synth(
        "exp11 block 1000",
        ControlVariables {
            block_count: 1000,
            ..Default::default()
        },
    );
    synth(
        "exp12 send 50",
        ControlVariables {
            send_rate: 50.0,
            ..Default::default()
        },
    );
    synth("exp13 send 300", ControlVariables::default());
    synth(
        "exp14 send 1000",
        ControlVariables {
            send_rate: 1000.0,
            ..Default::default()
        },
    );
    synth(
        "exp15 tx skew 70%",
        ControlVariables {
            tx_dist_skew: 0.7,
            ..Default::default()
        },
    );

    let cfg = NetworkConfig::default;
    let (_, a) = run_and_analyze(&scm::generate(&scm::ScmSpec::default()), cfg());
    show(
        "SCM  (paper: reorder, prune, rate)",
        a.recommendation_names(),
    );
    let (_, a) = run_and_analyze(&drm::generate(&drm::DrmSpec::default()), cfg());
    show(
        "DRM  (paper: reorder, delta, partition)",
        a.recommendation_names(),
    );
    let (_, a) = run_and_analyze(&ehr::generate(&ehr::EhrSpec::default()), cfg());
    show(
        "EHR  (paper: reorder, prune, rate)",
        a.recommendation_names(),
    );
    let (_, a) = run_and_analyze(&dv::generate(&dv::DvSpec::default()), cfg());
    show("DV   (paper: rate, data model)", a.recommendation_names());
    let (_, a) = run_and_analyze(&lap::generate(&lap::LapSpec::default()), cfg());
    show("LAP@10 (paper: data model)", a.recommendation_names());
    let (_, a) = run_and_analyze(
        &lap::generate(&lap::LapSpec {
            send_rate: 300.0,
            ..Default::default()
        }),
        cfg(),
    );
    show(
        "LAP@300 (paper: data model, rate)",
        a.recommendation_names(),
    );
}
