//! Paper-style result tables.
//!
//! Every figure in the paper plots (success throughput, average latency,
//! success percentage) for a W/O-vs-W pair of runs per configuration.
//! [`FigureTable`] renders the same rows.

use fabric_sim::report::SimReport;

/// Percentage-change helper (positive = improvement for "higher is better").
pub fn pct(before: f64, after: f64) -> f64 {
    // detlint: allow(float-eq, reason = "guards the exact division-by-zero case; near-zero baselines legitimately produce huge percentages")
    if before == 0.0 {
        0.0
    } else {
        (after - before) / before * 100.0
    }
}

/// A printable table with one row per (configuration, variant) run.
#[derive(Debug, Default)]
pub struct FigureTable {
    title: String,
    rows: Vec<Row>,
}

#[derive(Debug)]
struct Row {
    config: String,
    variant: String,
    tput: f64,
    latency: f64,
    success: f64,
}

impl FigureTable {
    /// A table titled like the paper's figure caption.
    pub fn new(title: &str) -> Self {
        FigureTable {
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append one run.
    pub fn add(&mut self, config: &str, variant: &str, report: &SimReport) {
        self.rows.push(Row {
            config: config.to_string(),
            variant: variant.to_string(),
            tput: report.success_throughput,
            latency: report.avg_latency_s,
            success: report.success_rate_pct,
        });
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the paper-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        out.push_str(&format!(
            "{:<44} {:<22} {:>12} {:>12} {:>10}\n",
            "configuration", "variant", "tput (tps)", "latency (s)", "success %"
        ));
        out.push_str(&"-".repeat(104));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:<44} {:<22} {:>12.1} {:>12.2} {:>10.1}\n",
                truncate(&r.config, 44),
                truncate(&r.variant, 22),
                r.tput,
                r.latency,
                r.success
            ));
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_changes() {
        assert!((pct(100.0, 150.0) - 50.0).abs() < 1e-9);
        assert!((pct(100.0, 80.0) + 20.0).abs() < 1e-9);
        assert_eq!(pct(0.0, 10.0), 0.0);
    }

    #[test]
    fn table_renders_rows() {
        let mut t = FigureTable::new("Figure X");
        let ledger = fabric_sim::ledger::Ledger::new();
        let r = SimReport::from_ledger(&ledger, 0, sim_core::time::SimTime::ZERO);
        t.add("Block count: 50", "W/O", &r);
        t.add("Block count: 50", "W", &r);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("Block count: 50"));
        assert!(!t.is_empty());
    }

    #[test]
    fn truncate_caps_width() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("abcdefghijk", 5), "abcd…");
    }
}
