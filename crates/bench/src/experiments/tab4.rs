//! Table 4: the settings used to implement each recommended optimization.

use super::ExpCtx;

/// Render Table 4 with the reproduction's implementation mapping.
pub fn tab4(_ctx: &ExpCtx) -> String {
    let rows: [(&str, &str, &str); 9] = [
        (
            "Activity reordering",
            "Reorder workload generation",
            "workload::optimize::move_to_end via blockoptr::apply_user_level",
        ),
        (
            "Transaction rate control",
            "Set send rate to 100 TPS",
            "workload::optimize::rate_control(requests, 100.0)",
        ),
        (
            "Process model pruning",
            "Update smart contract",
            "chaincode::ScmContract::pruned() / EhrContract::pruned()",
        ),
        (
            "Delta writes",
            "Update smart contract",
            "chaincode::DrmDeltaContract (unique delta keys + aggregation)",
        ),
        (
            "Smart contract partitioning",
            "Update smart contract",
            "chaincode::{DrmPlayContract, DrmMetaContract} (split namespaces)",
        ),
        (
            "Data model alteration",
            "Update smart contract",
            "chaincode::{DvPerVoterContract, LapByApplicationContract}",
        ),
        (
            "Block size adaptation",
            "Set block count to derived transaction rate",
            "NetworkConfig.block_count = Tr (apply_system_level)",
        ),
        (
            "Endorser restructuring",
            "Set endorsement policy to P4",
            "EndorsementPolicy::out_of(k, orgs) (apply_system_level)",
        ),
        (
            "Client resource boost",
            "Double clients for recommended organization",
            "NetworkConfig.client_boost = Some((org, 2))",
        ),
    ];
    let mut out = String::from("\n=== Table 4: settings used to implement each optimization ===\n");
    out.push_str(&format!(
        "{:<30} {:<46} {}\n",
        "recommendation", "paper setting", "this reproduction"
    ));
    out.push_str(&"-".repeat(140));
    out.push('\n');
    for (rec, paper, ours) in rows {
        out.push_str(&format!("{rec:<30} {paper:<46} {ours}\n"));
    }
    out
}
