//! Table 4: the settings used to implement each recommended optimization.

use super::ExpCtx;

/// Render Table 4 with the reproduction's implementation mapping.
pub fn tab4(_ctx: &ExpCtx) -> String {
    let rows: [(&str, &str, &str); 9] = [
        (
            "Activity reordering",
            "Reorder workload generation",
            "Action::RewriteSchedule(DeferActivities) → optimize::move_to_end",
        ),
        (
            "Transaction rate control",
            "Set send rate to 100 TPS",
            "Action::RewriteSchedule(Throttle { rate: 100.0 })",
        ),
        (
            "Process model pruning",
            "Update smart contract",
            "Action::SelectContractVariant(Pruned) → Scm/EhrContract::pruned()",
        ),
        (
            "Delta writes",
            "Update smart contract",
            "Action::SelectContractVariant(DeltaWrites) → DrmDeltaContract",
        ),
        (
            "Smart contract partitioning",
            "Update smart contract",
            "Action::SelectContractVariant(Partitioned) → DrmPlay+DrmMeta contracts",
        ),
        (
            "Data model alteration",
            "Update smart contract",
            "Action::SelectContractVariant(Rekeyed) → DvPerVoter/LapByApplication",
        ),
        (
            "Block size adaptation",
            "Set block count to derived transaction rate",
            "Action::ReconfigureNetwork(SetBlockCount { count: Tr })",
        ),
        (
            "Endorser restructuring",
            "Set endorsement policy to P4",
            "Action::ReconfigureNetwork(GeneralizeEndorsementPolicy) → OutOf(k, orgs)",
        ),
        (
            "Client resource boost",
            "Double clients for recommended organization",
            "Action::ReconfigureNetwork(BoostClients { factor: 2 })",
        ),
    ];
    let mut out = String::from("\n=== Table 4: settings used to implement each optimization ===\n");
    out.push_str(&format!(
        "{:<30} {:<46} {}\n",
        "recommendation", "paper setting", "this reproduction"
    ));
    out.push_str(&"-".repeat(140));
    out.push('\n');
    for (rec, paper, ours) in rows {
        out.push_str(&format!("{rec:<30} {paper:<46} {ours}\n"));
    }
    out
}
