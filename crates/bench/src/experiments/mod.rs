//! Experiment registry: every table and figure of the paper's evaluation.
//!
//! Each experiment is a function from an [`ExpCtx`] (which carries the
//! `--quick` scale factor) to rendered text. The `experiments` binary runs
//! them by id (`fig13`) or all together.

pub mod ablation;
pub mod extensions;
pub mod process;
pub mod synthetic;
pub mod tab4;
pub mod usecases;

use blockoptr::pipeline::{Analysis, BlockOptR};
use blockoptr::recommend::Recommendation;
use fabric_sim::config::NetworkConfig;
use fabric_sim::report::SimReport;
use workload::WorkloadBundle;

/// Execution context for one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExpCtx {
    /// Transaction-volume scale in `(0, 1]`; `--quick` uses 0.2.
    pub scale: f64,
    /// Worker threads each experiment may use for its *inner* simulation
    /// fan-out (plan execution). The grid runner divides its thread budget
    /// between the outer per-experiment pool and this, so running many
    /// experiments at once never oversubscribes the machine.
    pub plan_threads: usize,
}

impl Default for ExpCtx {
    fn default() -> Self {
        ExpCtx {
            scale: 1.0,
            plan_threads: sim_core::pool::default_threads(),
        }
    }
}

impl ExpCtx {
    /// Scale a transaction count.
    pub fn txs(&self, full: usize) -> usize {
        ((full as f64 * self.scale) as usize).max(200)
    }
}

/// One registered experiment.
pub struct Experiment {
    /// Identifier (`fig13`, `tab3`, …).
    pub id: &'static str,
    /// The paper artifact it regenerates.
    pub title: &'static str,
    /// Runner.
    pub run: fn(&ExpCtx) -> String,
}

/// The full registry, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig2",
            title: "Figure 2: derived SCM process model (with anomalous branches)",
            run: process::fig2,
        },
        Experiment {
            id: "fig3",
            title: "Figure 3: transaction dependency conflict example",
            run: process::fig3,
        },
        Experiment {
            id: "fig4",
            title: "Figure 4: SCM process model after activity reordering",
            run: process::fig4,
        },
        Experiment {
            id: "tab3",
            title: "Table 3: recommendations for the synthetic workloads",
            run: synthetic::tab3,
        },
        Experiment {
            id: "tab4",
            title: "Table 4: settings used to implement each optimization",
            run: tab4::tab4,
        },
        Experiment {
            id: "fig7",
            title: "Figure 7: endorser restructuring",
            run: synthetic::fig7,
        },
        Experiment {
            id: "fig8",
            title: "Figure 8: client resource boost",
            run: synthetic::fig8,
        },
        Experiment {
            id: "fig9",
            title: "Figure 9: block size adaptation",
            run: synthetic::fig9,
        },
        Experiment {
            id: "fig10",
            title: "Figure 10: transaction rate control",
            run: synthetic::fig10,
        },
        Experiment {
            id: "fig11",
            title: "Figure 11: activity reordering",
            run: synthetic::fig11,
        },
        Experiment {
            id: "fig12",
            title: "Figure 12: all recommended optimizations combined",
            run: synthetic::fig12,
        },
        Experiment {
            id: "fig13",
            title: "Figure 13: SCM use case",
            run: usecases::fig13,
        },
        Experiment {
            id: "fig14",
            title: "Figure 14: DRM use case",
            run: usecases::fig14,
        },
        Experiment {
            id: "fig15",
            title: "Figure 15: EHR use case",
            run: usecases::fig15,
        },
        Experiment {
            id: "fig16",
            title: "Figure 16: Digital Voting use case",
            run: usecases::fig16,
        },
        Experiment {
            id: "fig17",
            title: "Figure 17: Loan Application Process use case",
            run: usecases::fig17,
        },
        Experiment {
            id: "fig18",
            title: "Figure 18: synthetic workloads with FabricSharp",
            run: extensions::fig18,
        },
        Experiment {
            id: "fig19",
            title: "Figure 19: synthetic workloads with Fabric++",
            run: extensions::fig19,
        },
        Experiment {
            id: "abl1",
            title: "Ablation 1: stale recommendations under workload fluctuation",
            run: ablation::abl1,
        },
        Experiment {
            id: "abl2",
            title: "Ablation 2: resource-profile sensitivity",
            run: ablation::abl2,
        },
        Experiment {
            id: "abl3",
            title: "Ablation 3: threshold sensitivity of the recommendations",
            run: ablation::abl3,
        },
    ]
}

/// Run a bundle and return `(report, analysis)`.
pub fn run_and_analyze(bundle: &WorkloadBundle, config: NetworkConfig) -> (SimReport, Analysis) {
    let output = bundle.run(config);
    let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
    (output.report, analysis)
}

/// Keep only the recommendation with the given name (a figure evaluates one
/// optimization at a time; the paper applies each recommendation separately
/// before combining them in Figure 12).
pub fn only(analysis: &Analysis, name: &str) -> Vec<Recommendation> {
    analysis
        .recommendations
        .iter()
        .filter(|r| r.name() == name)
        .cloned()
        .collect()
}
