//! Figures 13–17: the use-case experiments (§6.2–6.3).

use super::{only, run_and_analyze, ExpCtx};
use crate::table::FigureTable;
use blockoptr::apply::apply_user_level;
use fabric_sim::config::NetworkConfig;
use workload::optimize;
use workload::{drm, dv, ehr, lap, scm};

/// Figure 13: SCM — reordering, pruning, rate control, all.
pub fn fig13(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 13: SCM use case");
    let spec = scm::ScmSpec {
        transactions: ctx.txs(10_000),
        ..Default::default()
    };
    let bundle = scm::generate(&spec);
    let cfg = NetworkConfig::default;
    let (wo, analysis) = run_and_analyze(&bundle, cfg());
    t.add("SCM", "W/O", &wo);

    // Transaction rate control (Table 4: 100 tps).
    let throttled = bundle
        .clone()
        .with_requests(optimize::rate_control(&bundle.requests, 100.0));
    let (w, _) = run_and_analyze(&throttled, cfg());
    t.add("SCM", "rate control", &w);

    // Activity reordering (queryProducts + updateAuditInfo to the end).
    let (requests, _) = apply_user_level(&bundle.requests, &only(&analysis, "Activity reordering"));
    let reordered = bundle.clone().with_requests(requests);
    let (w, _) = run_and_analyze(&reordered, cfg());
    t.add("SCM", "activity reordering", &w);

    // Process model pruning (the pruned smart contract).
    let pruned = scm::pruned(bundle.clone());
    let (w, _) = run_and_analyze(&pruned, cfg());
    t.add("SCM", "model pruning", &w);

    // All optimizations together.
    let (requests, _) = apply_user_level(&bundle.requests, &analysis.recommendations);
    let all = scm::pruned(bundle.clone()).with_requests(optimize::rate_control(&requests, 100.0));
    let (w, _) = run_and_analyze(&all, cfg());
    t.add("SCM", "all optimizations", &w);
    t.render()
}

/// Figure 14: DRM — delta writes, reordering, partitioning, all.
pub fn fig14(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 14: DRM use case");
    let spec = drm::DrmSpec {
        transactions: ctx.txs(10_000),
        ..Default::default()
    };
    let bundle = drm::generate(&spec);
    let cfg = NetworkConfig::default;
    let (wo, analysis) = run_and_analyze(&bundle, cfg());
    t.add("DRM", "W/O", &wo);

    let delta = drm::delta_writes(bundle.clone());
    let (w, _) = run_and_analyze(&delta, cfg());
    t.add("DRM", "delta writes", &w);

    let (requests, _) = apply_user_level(&bundle.requests, &only(&analysis, "Activity reordering"));
    let reordered = bundle.clone().with_requests(requests);
    let (w, _) = run_and_analyze(&reordered, cfg());
    t.add("DRM", "activity reordering", &w);

    let partitioned = drm::partitioned(bundle.clone(), &spec);
    let (w, _) = run_and_analyze(&partitioned, cfg());
    t.add("DRM", "contract partition", &w);

    // All: partitioned chaincodes with delta-write plays + reordering.
    let (requests, _) = apply_user_level(&bundle.requests, &only(&analysis, "Activity reordering"));
    let all = drm::partitioned_delta(bundle.clone().with_requests(requests), &spec);
    let (w, _) = run_and_analyze(&all, cfg());
    t.add("DRM", "all optimizations", &w);
    t.render()
}

/// Figure 15: EHR — rate control, reordering, pruning, all.
pub fn fig15(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 15: EHR use case");
    let spec = ehr::EhrSpec {
        transactions: ctx.txs(10_000),
        ..Default::default()
    };
    let bundle = ehr::generate(&spec);
    let cfg = NetworkConfig::default;
    let (wo, analysis) = run_and_analyze(&bundle, cfg());
    t.add("EHR", "W/O", &wo);

    let throttled = bundle
        .clone()
        .with_requests(optimize::rate_control(&bundle.requests, 100.0));
    let (w, _) = run_and_analyze(&throttled, cfg());
    t.add("EHR", "rate control", &w);

    let (requests, _) = apply_user_level(&bundle.requests, &only(&analysis, "Activity reordering"));
    let reordered = bundle.clone().with_requests(requests);
    let (w, _) = run_and_analyze(&reordered, cfg());
    t.add("EHR", "activity reordering", &w);

    let pruned = ehr::pruned(bundle.clone());
    let (w, _) = run_and_analyze(&pruned, cfg());
    t.add("EHR", "model pruning", &w);

    let (requests, _) = apply_user_level(&bundle.requests, &analysis.recommendations);
    let all = ehr::pruned(bundle.clone()).with_requests(optimize::rate_control(&requests, 100.0));
    let (w, _) = run_and_analyze(&all, cfg());
    t.add("EHR", "all optimizations", &w);
    t.render()
}

/// Figure 16: Digital Voting — rate control, data-model alteration, all.
pub fn fig16(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 16: Digital Voting use case");
    let spec = dv::DvSpec {
        queries: ctx.txs(1_000),
        votes: ctx.txs(5_000),
        ..Default::default()
    };
    let bundle = dv::generate(&spec);
    let cfg = NetworkConfig::default;
    let (wo, _) = run_and_analyze(&bundle, cfg());
    t.add("DV", "W/O", &wo);

    let throttled = bundle
        .clone()
        .with_requests(optimize::rate_control(&bundle.requests, 100.0));
    let (w, _) = run_and_analyze(&throttled, cfg());
    t.add("DV", "rate control", &w);

    let altered = dv::per_voter(bundle.clone());
    let (w, _) = run_and_analyze(&altered, cfg());
    t.add("DV", "data model alteration", &w);

    let all = dv::per_voter(
        bundle
            .clone()
            .with_requests(optimize::rate_control(&bundle.requests, 100.0)),
    );
    let (w, _) = run_and_analyze(&all, cfg());
    t.add("DV", "all optimizations", &w);
    t.render()
}

/// Figure 17: LAP at 10 tps and 300 tps.
pub fn fig17(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 17: Loan Application Process use case");
    let cfg = NetworkConfig::default;
    let apps = ((2_000.0 * ctx.scale) as usize).max(100);

    // Manual processing: 10 tps.
    let slow = lap::LapSpec {
        applications: apps,
        send_rate: 10.0,
        ..Default::default()
    };
    let bundle = lap::generate(&slow);
    let (wo, _) = run_and_analyze(&bundle, cfg());
    t.add("Send rate: 10 tps", "W/O", &wo);
    let altered = lap::by_application(bundle.clone());
    let (w, _) = run_and_analyze(&altered, cfg());
    t.add("Send rate: 10 tps", "data model alteration", &w);

    // Automated processing: 300 tps.
    let fast = lap::LapSpec {
        applications: apps,
        send_rate: 300.0,
        ..Default::default()
    };
    let bundle = lap::generate(&fast);
    let (wo, _) = run_and_analyze(&bundle, cfg());
    t.add("Send rate: 300 tps", "W/O", &wo);
    let altered = lap::by_application(bundle.clone());
    let (w, _) = run_and_analyze(&altered, cfg());
    t.add("Send rate: 300 tps", "data model alteration", &w);
    let throttled = bundle
        .clone()
        .with_requests(optimize::rate_control(&bundle.requests, 100.0));
    let (w, _) = run_and_analyze(&throttled, cfg());
    t.add("Send rate: 300 tps", "rate control", &w);
    let all = lap::by_application(
        bundle
            .clone()
            .with_requests(optimize::rate_control(&bundle.requests, 100.0)),
    );
    let (w, _) = run_and_analyze(&all, cfg());
    t.add("Send rate: 300 tps", "all optimizations", &w);
    t.render()
}
