//! Figures 13–17: the use-case experiments (§6.2–6.3).
//!
//! Each figure **declares its configuration as a [`ScenarioSpec`]** — the
//! serializable workload description the rest of the system runs on — and
//! executes one [`OptimizationPlan`] against it: the analysis's
//! recommendations are lowered to typed actions, each action is applied
//! alone and re-run, then all together — the per-action reports become the
//! figure's rows. Rows the paper mandates (e.g. rate control at 100 tps)
//! are guaranteed by the `ensure` fallback even when the analysis of a
//! scaled-down `--quick` run does not fire the corresponding rule.

use super::{run_and_analyze, ExpCtx};
use crate::table::FigureTable;
use blockoptr::action::{Action, ScheduleRewrite};
use blockoptr::plan::{OptimizationPlan, PlanConfig, PlanOutcome, PlannedAction};
use workload::{ScenarioSpec, WorkloadSpec};

/// Guarantee the plan carries an action for `source`, appending the given
/// fallback when the analysis did not recommend it.
fn ensure(plan: &mut OptimizationPlan, source: &str, action: Action) {
    if !plan.actions.iter().any(|a| a.source == source) {
        plan.actions.push(PlannedAction {
            source: source.to_string(),
            action,
        });
    }
}

/// Table 4's universal rate-control setting.
fn throttle_100() -> Action {
    Action::RewriteSchedule(ScheduleRewrite::Throttle { rate: 100.0 })
}

/// The figure row label for a recommendation name.
fn row_label(source: &str) -> &str {
    match source {
        "Transaction rate control" => "rate control",
        "Activity reordering" => "activity reordering",
        "Process model pruning" => "model pruning",
        "Delta writes" => "delta writes",
        "Smart contract partitioning" => "contract partition",
        "Data model alteration" => "data model alteration",
        other => other,
    }
}

/// Render one executed plan as figure rows: W/O, one row per applied
/// action, and (when requested) the combined "all optimizations" row.
fn add_outcome_rows(t: &mut FigureTable, config_label: &str, outcome: &PlanOutcome, all: bool) {
    t.add(config_label, "W/O", outcome.baseline.primary());
    for action in &outcome.actions {
        if let Some(report) = action.report() {
            t.add(config_label, row_label(&action.source), report);
        }
    }
    if all {
        if let Some(combined) = &outcome.combined {
            t.add(config_label, "all optimizations", combined.primary());
        }
    }
}

/// The figure's scenario, declared as a spec: the built-in generator
/// scaled to the context's transaction budget.
fn figure_spec(ctx: &ExpCtx, scenario: &str, full_txs: usize) -> ScenarioSpec {
    ScenarioSpec::builtin(scenario)
        .expect("figure scenarios are built-ins")
        .with_transactions(ctx.txs(full_txs))
}

/// Run one spec-declared use case through the closed loop: build, analyze,
/// select the figure's optimizations, execute.
fn usecase_outcome(
    ctx: &ExpCtx,
    spec: &ScenarioSpec,
    sources: &[&str],
    ensured: &[(&str, Action)],
) -> PlanOutcome {
    let (bundle, cfg) = spec.build().expect("figure specs validate");
    let (baseline, analysis) = run_and_analyze(&bundle, cfg.clone());
    let mut plan = OptimizationPlan::from_analysis(&analysis).select(sources);
    for (source, action) in ensured {
        ensure(&mut plan, source, action.clone());
    }
    // The per-action and combined re-runs are independent simulations:
    // fan them out over the context's inner thread budget (the grid
    // runner already parallelizes across experiments, so this avoids
    // nested-pool oversubscription). The bundle carries the spec as
    // provenance, so the outcome also records the optimized spec.
    plan.execute_from_with(
        &bundle,
        &cfg,
        baseline,
        &PlanConfig::new(1, ctx.plan_threads),
    )
}

/// Figure 13: SCM — rate control, reordering, pruning, all.
pub fn fig13(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 13: SCM use case");
    let spec = figure_spec(ctx, "scm", 10_000);
    let outcome = usecase_outcome(
        ctx,
        &spec,
        &[
            "Transaction rate control",
            "Activity reordering",
            "Process model pruning",
        ],
        &[
            ("Transaction rate control", throttle_100()),
            (
                "Process model pruning",
                Action::SelectContractVariant(workload::VariantKind::Pruned),
            ),
        ],
    );
    add_outcome_rows(&mut t, "SCM", &outcome, true);
    t.render()
}

/// Figure 14: DRM — delta writes, reordering, partitioning, all.
pub fn fig14(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 14: DRM use case");
    let spec = figure_spec(ctx, "drm", 10_000);
    // The combined run resolves {delta writes, partitioning} through DRM's
    // variant table to the partitioned-delta contract set (Figure 14's
    // "all optimizations").
    let outcome = usecase_outcome(
        ctx,
        &spec,
        &[
            "Delta writes",
            "Activity reordering",
            "Smart contract partitioning",
        ],
        &[
            (
                "Delta writes",
                Action::SelectContractVariant(workload::VariantKind::DeltaWrites),
            ),
            (
                "Smart contract partitioning",
                Action::SelectContractVariant(workload::VariantKind::Partitioned),
            ),
        ],
    );
    add_outcome_rows(&mut t, "DRM", &outcome, true);
    t.render()
}

/// Figure 15: EHR — rate control, reordering, pruning, all.
pub fn fig15(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 15: EHR use case");
    let spec = figure_spec(ctx, "ehr", 10_000);
    let outcome = usecase_outcome(
        ctx,
        &spec,
        &[
            "Transaction rate control",
            "Activity reordering",
            "Process model pruning",
        ],
        &[
            ("Transaction rate control", throttle_100()),
            (
                "Process model pruning",
                Action::SelectContractVariant(workload::VariantKind::Pruned),
            ),
        ],
    );
    add_outcome_rows(&mut t, "EHR", &outcome, true);
    t.render()
}

/// Figure 16: Digital Voting — rate control, data-model alteration, all.
pub fn fig16(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 16: Digital Voting use case");
    // The paper's phased 1 000-query / 5 000-vote schedule, scaled.
    let spec = figure_spec(ctx, "dv", 6_000);
    let outcome = usecase_outcome(
        ctx,
        &spec,
        &["Transaction rate control", "Data model alteration"],
        &[
            ("Transaction rate control", throttle_100()),
            (
                "Data model alteration",
                Action::SelectContractVariant(workload::VariantKind::Rekeyed),
            ),
        ],
    );
    add_outcome_rows(&mut t, "DV", &outcome, true);
    t.render()
}

/// Figure 17: LAP at 10 tps and 300 tps.
pub fn fig17(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 17: Loan Application Process use case");
    // ~10 events per application: 2 000 applications ≈ 20 000 events.
    let with_rate = |rate: f64| {
        let mut spec = figure_spec(ctx, "lap", 20_000);
        if let WorkloadSpec::Lap(s) = &mut spec.workload {
            s.send_rate = rate;
        }
        spec
    };

    // Manual processing: 10 tps — only the data-model alteration row.
    let outcome = usecase_outcome(
        ctx,
        &with_rate(10.0),
        &["Data model alteration"],
        &[(
            "Data model alteration",
            Action::SelectContractVariant(workload::VariantKind::Rekeyed),
        )],
    );
    add_outcome_rows(&mut t, "Send rate: 10 tps", &outcome, false);

    // Automated processing: 300 tps — alteration, rate control, all.
    let outcome = usecase_outcome(
        ctx,
        &with_rate(300.0),
        &["Data model alteration", "Transaction rate control"],
        &[
            (
                "Data model alteration",
                Action::SelectContractVariant(workload::VariantKind::Rekeyed),
            ),
            ("Transaction rate control", throttle_100()),
        ],
    );
    add_outcome_rows(&mut t, "Send rate: 300 tps", &outcome, true);
    t.render()
}
