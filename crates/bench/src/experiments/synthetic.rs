//! Table 3 and Figures 7–12: the synthetic-workload experiments.

use super::{only, run_and_analyze, ExpCtx};
use crate::table::FigureTable;
use blockoptr::apply::{apply_system_level, apply_user_level};
use workload::spec::{ControlVariables, PolicyChoice, WorkloadType};
use workload::synthetic;

/// The 15 experiments of Table 3 with the recommendations the paper reports.
pub fn experiments_table3(ctx: &ExpCtx) -> Vec<(usize, ControlVariables, &'static str)> {
    let base = ControlVariables {
        transactions: ctx.txs(10_000),
        ..Default::default()
    };
    vec![
        (
            1,
            ControlVariables {
                policy: PolicyChoice::P1,
                ..base.clone()
            },
            "Endorser restructuring, Activity reordering",
        ),
        (
            2,
            ControlVariables {
                policy: PolicyChoice::P2,
                endorser_skew: 6.0,
                ..base.clone()
            },
            "Endorser restructuring, Activity reordering",
        ),
        (
            3,
            ControlVariables {
                orgs: 4,
                ..base.clone()
            },
            "Transaction rate control",
        ),
        (
            4,
            ControlVariables {
                workload: WorkloadType::ReadHeavy,
                ..base.clone()
            },
            "Activity reordering",
        ),
        (
            5,
            ControlVariables {
                workload: WorkloadType::UpdateHeavy,
                ..base.clone()
            },
            "Transaction rate control",
        ),
        (
            6,
            ControlVariables {
                workload: WorkloadType::InsertHeavy,
                ..base.clone()
            },
            "Activity reordering",
        ),
        (
            7,
            ControlVariables {
                workload: WorkloadType::RangeReadHeavy,
                ..base.clone()
            },
            "Activity reordering, Transaction rate control",
        ),
        (
            8,
            ControlVariables {
                key_skew: 2.0,
                ..base.clone()
            },
            "Activity reordering, Smart contract partitioning, Block size adaptation",
        ),
        (
            9,
            ControlVariables {
                block_count: 50,
                ..base.clone()
            },
            "Activity reordering, Transaction rate control",
        ),
        (
            10,
            ControlVariables {
                block_count: 300,
                ..base.clone()
            },
            "Activity reordering, Transaction rate control",
        ),
        (
            11,
            ControlVariables {
                block_count: 1000,
                ..base.clone()
            },
            "Activity reordering",
        ),
        (
            12,
            ControlVariables {
                send_rate: 50.0,
                ..base.clone()
            },
            "Activity reordering",
        ),
        (
            13,
            base.clone(),
            "Activity reordering, Block size adaptation, Transaction rate control",
        ),
        (
            14,
            ControlVariables {
                send_rate: 1000.0,
                ..base.clone()
            },
            "Activity reordering, Transaction rate control",
        ),
        (
            15,
            ControlVariables {
                tx_dist_skew: 0.7,
                ..base
            },
            "Activity reordering, Client resource boost",
        ),
    ]
}

/// Table 3: run all 15 experiments, print derived vs paper recommendations.
pub fn tab3(ctx: &ExpCtx) -> String {
    let mut out =
        String::from("\n=== Table 3: optimizations recommended for the synthetic workloads ===\n");
    out.push_str(&format!(
        "{:<4} {:<42} {:<72} {}\n",
        "#", "control variable", "BlockOptR (this reproduction)", "paper"
    ));
    out.push_str(&"-".repeat(190));
    out.push('\n');
    for (num, cv, paper) in experiments_table3(ctx) {
        let bundle = synthetic::generate(&cv);
        let (_, analysis) = run_and_analyze(&bundle, cv.network_config());
        out.push_str(&format!(
            "{:<4} {:<42} {:<72} {}\n",
            num,
            cv.label(),
            analysis.recommendation_names().join(", "),
            paper
        ));
    }
    out
}

/// Figure 7: endorser restructuring (experiments 1 and 2).
pub fn fig7(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 7: endorser restructuring");
    let configs = vec![
        ControlVariables {
            policy: PolicyChoice::P1,
            transactions: ctx.txs(10_000),
            ..Default::default()
        },
        ControlVariables {
            policy: PolicyChoice::P2,
            endorser_skew: 6.0,
            transactions: ctx.txs(10_000),
            ..Default::default()
        },
    ];
    for cv in configs {
        let bundle = synthetic::generate(&cv);
        let (wo, analysis) = run_and_analyze(&bundle, cv.network_config());
        t.add(&cv.label(), "W/O", &wo);
        let (cfg, _) = apply_system_level(
            &cv.network_config(),
            &only(&analysis, "Endorser restructuring"),
        );
        let (w, _) = run_and_analyze(&bundle, cfg);
        t.add(&cv.label(), "W (restructured)", &w);
    }
    t.render()
}

/// Figure 8: client resource boost (experiment 15).
pub fn fig8(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 8: client resource boost");
    let cv = ControlVariables {
        tx_dist_skew: 0.7,
        transactions: ctx.txs(10_000),
        ..Default::default()
    };
    let bundle = synthetic::generate(&cv);
    let (wo, analysis) = run_and_analyze(&bundle, cv.network_config());
    t.add(&cv.label(), "W/O", &wo);
    let (cfg, _) = apply_system_level(
        &cv.network_config(),
        &only(&analysis, "Client resource boost"),
    );
    let (w, _) = run_and_analyze(&bundle, cfg);
    t.add(&cv.label(), "W (boosted clients)", &w);
    t.render()
}

/// Figure 9: block size adaptation (block counts and high send rates).
pub fn fig9(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 9: block size adaptation");
    let configs = vec![
        ControlVariables {
            block_count: 50,
            transactions: ctx.txs(10_000),
            ..Default::default()
        },
        ControlVariables {
            transactions: ctx.txs(10_000),
            ..Default::default()
        }, // block count 100 (default)
        ControlVariables {
            send_rate: 500.0,
            transactions: ctx.txs(10_000),
            ..Default::default()
        },
        ControlVariables {
            send_rate: 1000.0,
            transactions: ctx.txs(10_000),
            ..Default::default()
        },
    ];
    for cv in configs {
        let bundle = synthetic::generate(&cv);
        let (wo, analysis) = run_and_analyze(&bundle, cv.network_config());
        let label = if cv.label() == "Defaults" {
            "Block count: 100".to_string()
        } else {
            cv.label()
        };
        t.add(&label, "W/O", &wo);
        let recs = only(&analysis, "Block size adaptation");
        if recs.is_empty() {
            t.add(&label, "W (no change)", &wo);
            continue;
        }
        let (cfg, _) = apply_system_level(&cv.network_config(), &recs);
        let (w, _) = run_and_analyze(&bundle, cfg);
        t.add(&label, "W (adapted)", &w);
    }
    t.render()
}

/// Figure 10: transaction rate control (eleven configurations).
pub fn fig10(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 10: transaction rate control");
    let n = ctx.txs(10_000);
    let configs = vec![
        ControlVariables {
            transactions: n,
            ..Default::default()
        }, // P3 = default
        ControlVariables {
            orgs: 4,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            workload: WorkloadType::UpdateHeavy,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            key_skew: 2.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            block_count: 300,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            block_count: 500,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            block_count: 1000,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            send_rate: 500.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            send_rate: 1000.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            tx_dist_skew: 0.7,
            transactions: n,
            ..Default::default()
        },
    ];
    for cv in configs {
        let bundle = synthetic::generate(&cv);
        let (wo, _) = run_and_analyze(&bundle, cv.network_config());
        t.add(&cv.label(), "W/O", &wo);
        // Table 4: set the send rate to 100 tps.
        let throttled = bundle
            .clone()
            .with_requests(workload::optimize::rate_control(&bundle.requests, 100.0));
        let (w, _) = run_and_analyze(&throttled, cv.network_config());
        t.add(&cv.label(), "W (rate 100)", &w);
    }
    t.render()
}

/// Figure 11: activity reordering (thirteen configurations).
pub fn fig11(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 11: activity reordering");
    let n = ctx.txs(10_000);
    let configs = vec![
        ControlVariables {
            policy: PolicyChoice::P1,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            policy: PolicyChoice::P2,
            endorser_skew: 6.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            workload: WorkloadType::ReadHeavy,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            workload: WorkloadType::InsertHeavy,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            workload: WorkloadType::RangeReadHeavy,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            key_skew: 2.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            block_count: 50,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            block_count: 300,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            block_count: 1000,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            send_rate: 50.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            transactions: n,
            ..Default::default()
        }, // send 300
        ControlVariables {
            send_rate: 1000.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            tx_dist_skew: 0.7,
            transactions: n,
            ..Default::default()
        },
    ];
    for cv in configs {
        let bundle = synthetic::generate(&cv);
        let (wo, analysis) = run_and_analyze(&bundle, cv.network_config());
        let label = if cv.label() == "Defaults" {
            "Send rate: 300".to_string()
        } else {
            cv.label()
        };
        t.add(&label, "W/O", &wo);
        let recs = only(&analysis, "Activity reordering");
        if recs.is_empty() {
            t.add(&label, "W (not recommended)", &wo);
            continue;
        }
        let (requests, _) = apply_user_level(&bundle.requests, &recs);
        let reordered = bundle.clone().with_requests(requests);
        let (w, _) = run_and_analyze(&reordered, cv.network_config());
        t.add(&label, "W (reordered)", &w);
    }
    t.render()
}

/// Figure 12: every recommended optimization applied together.
pub fn fig12(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 12: all recommended optimizations combined");
    let n = ctx.txs(10_000);
    let configs = vec![
        ControlVariables {
            policy: PolicyChoice::P1,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            policy: PolicyChoice::P2,
            endorser_skew: 6.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            key_skew: 2.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            block_count: 50,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            block_count: 300,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            block_count: 1000,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            send_rate: 1000.0,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            tx_dist_skew: 0.7,
            transactions: n,
            ..Default::default()
        },
    ];
    for cv in configs {
        let bundle = synthetic::generate(&cv);
        let (wo, analysis) = run_and_analyze(&bundle, cv.network_config());
        t.add(&cv.label(), "W/O", &wo);
        let (requests, _) = apply_user_level(&bundle.requests, &analysis.recommendations);
        let (cfg, _) = apply_system_level(&cv.network_config(), &analysis.recommendations);
        let optimized = bundle.clone().with_requests(requests);
        let (w, _) = run_and_analyze(&optimized, cfg);
        t.add(&cv.label(), "W (all)", &w);
    }
    t.render()
}
