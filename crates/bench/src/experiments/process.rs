//! Figures 2–4: the process-perspective artifacts (§3).

use super::ExpCtx;
use blockoptr::eventlog::to_event_log;
use blockoptr::log::BlockchainLog;
use fabric_sim::config::NetworkConfig;
use process_mining::conformance::footprint_conformance;
use process_mining::dfg::DirectlyFollowsGraph;
use process_mining::dot::dfg_to_dot;
use process_mining::eventlog::log_from;
use std::fmt::Write as _;
use workload::scm;

fn scm_spec(ctx: &ExpCtx) -> scm::ScmSpec {
    scm::ScmSpec {
        transactions: ctx.txs(10_000),
        ..Default::default()
    }
}

/// Figure 2: the process model mined from the SCM blockchain log, with the
/// anomalous branches (Ship before PushASN, Unload without Ship) visible.
pub fn fig2(ctx: &ExpCtx) -> String {
    let bundle = scm::generate(&scm_spec(ctx));
    let output = bundle.run(NetworkConfig::default());
    let log = BlockchainLog::from_ledger(&output.ledger);
    let event_log = to_event_log(&log);
    let dfg = DirectlyFollowsGraph::from_log(&event_log);

    let mut out = String::from("\n=== Figure 2: derived SCM process model ===\n");
    let _ = writeln!(
        out,
        "{} traces over activities {:?}",
        event_log.len(),
        event_log.activities()
    );
    let _ = writeln!(out, "top trace variants:");
    for (variant, count) in event_log.variants().into_iter().take(6) {
        let _ = writeln!(out, "  {:>5}× {}", count, variant.join(" → "));
    }
    let _ = writeln!(
        out,
        "anomalous branches (the highlighted paths of Figure 2):"
    );
    for (a, b) in [("ship", "pushASN"), ("unload", "queryASN")] {
        let n = dfg.count(a, b);
        if n > 0 {
            let _ = writeln!(out, "  {a} ≻ {b} observed {n}× (illogical ordering)");
        }
    }
    let ship_starts = dfg.starts().get("ship").copied().unwrap_or(0);
    let _ = writeln!(
        out,
        "  traces starting with ship (no PushASN first): {ship_starts}"
    );
    let _ = writeln!(out, "\nDOT (render with graphviz):\n{}", dfg_to_dot(&dfg));
    out
}

/// Figure 3: the dependency-conflict example — UpdateAuditInfo aborts when
/// interleaved with PushASN on the same product, succeeds when reordered.
pub fn fig3(_ctx: &ExpCtx) -> String {
    use fabric_sim::sim::{Simulation, TxRequest};
    use fabric_sim::types::{OrgId, Value};
    use sim_core::time::SimTime;
    use std::sync::Arc;

    let build = || {
        let mut sim = Simulation::new(NetworkConfig::default());
        sim.install(Arc::new(chaincode::ScmContract::base()));
        sim.seed("scm", "P0001", Value::Int(1));
        sim.seed("scm", "A0001", Value::Str("audit:init".into()));
        sim
    };
    let req = |ms: u64, activity: &str, args: Vec<Value>| TxRequest {
        send_time: SimTime::from_millis(ms),
        contract: "scm".into(),
        activity: activity.into(),
        args: args.into(),
        invoker_org: OrgId(0),
    };

    let mut out = String::from("\n=== Figure 3: transaction dependency conflict ===\n");
    // Without reordering: both transactions endorse against the same
    // snapshot; PushASN commits first, invalidating UpdateAuditInfo's read.
    let sim = build();
    let reqs = vec![
        req(0, "pushASN", vec!["P0001".into()]),
        req(
            1,
            "updateAuditInfo",
            vec!["P0001".into(), "A0001".into(), Value::Int(1)],
        ),
    ];
    let res = sim.run(&reqs);
    let _ = writeln!(out, "without activity reordering:");
    for tx in res.ledger.transactions() {
        let _ = writeln!(out, "  {:<16} → {}", tx.activity, tx.status);
    }

    // With reordering: UpdateAuditInfo runs before PushASN — both succeed.
    let sim = build();
    let reqs = vec![
        req(
            0,
            "updateAuditInfo",
            vec!["P0001".into(), "A0001".into(), Value::Int(1)],
        ),
        req(2_500, "pushASN", vec!["P0001".into()]),
    ];
    let res = sim.run(&reqs);
    let _ = writeln!(out, "with activity reordering:");
    for tx in res.ledger.transactions() {
        let _ = writeln!(out, "  {:<16} → {}", tx.activity, tx.status);
    }
    out
}

/// Figure 4: the SCM model after reordering — queryProducts and
/// updateAuditInfo move behind the product flows (the paper\'s §3 redesign),
/// and the re-mined log confirms the adherence.
pub fn fig4(ctx: &ExpCtx) -> String {
    let bundle = scm::generate(&scm_spec(ctx));
    let cfg = NetworkConfig::default;

    // Interleaving metric: the share of queryProducts/updateAuditInfo
    // transactions that commit before the last product-flow transaction.
    let interleaving = |log: &BlockchainLog| -> f64 {
        let last_flow = log
            .records()
            .iter()
            .filter(|r| {
                matches!(
                    r.activity.as_ref(),
                    "pushASN" | "ship" | "queryASN" | "unload"
                )
            })
            .map(|r| r.commit_index)
            .max()
            .unwrap_or(0);
        let (inside, total) = log.records().iter().fold((0usize, 0usize), |acc, r| {
            if scm::REORDERABLE.contains(&r.activity.as_ref()) {
                (acc.0 + usize::from(r.commit_index < last_flow), acc.1 + 1)
            } else {
                acc
            }
        });
        if total == 0 {
            0.0
        } else {
            inside as f64 / total as f64
        }
    };

    let before_out = bundle.run(cfg());
    let before_log = BlockchainLog::from_ledger(&before_out.ledger);
    let before_dfg = DirectlyFollowsGraph::from_log(&to_event_log(&before_log));

    // The paper\'s redesign: the two reporting activities run after the
    // PushASN/Ship/Unload flows ("rescheduled to take place only at specific
    // times when traffic is low").
    let reordered = bundle
        .clone()
        .with_requests(workload::optimize::move_to_end(
            &bundle.requests,
            &scm::REORDERABLE,
        ));
    let output = reordered.run(cfg());
    let log = BlockchainLog::from_ledger(&output.ledger);
    let event_log = to_event_log(&log);
    let dfg = DirectlyFollowsGraph::from_log(&event_log);

    let mut out = String::from("\n=== Figure 4: SCM model after activity reordering ===\n");
    let _ = writeln!(
        out,
        "redesign: {} executed after the product flows",
        scm::REORDERABLE.join(" and ")
    );
    let _ = writeln!(
        out,
        "reporting activities interleaved within active flows: {:.0} % → {:.0} %",
        interleaving(&before_log) * 100.0,
        interleaving(&log) * 100.0
    );
    let _ = writeln!(
        out,
        "updateAuditInfo directly after pushASN: {} → {} (Figure 2\'s hot path gone)",
        before_dfg.count("pushASN", "updateAuditInfo"),
        dfg.count("pushASN", "updateAuditInfo"),
    );
    let _ = writeln!(
        out,
        "flow edges dominate: pushASN≻ship {}, ship≻queryASN {}, queryASN≻unload {}",
        dfg.count("pushASN", "ship"),
        dfg.count("ship", "queryASN"),
        dfg.count("queryASN", "unload"),
    );

    // Compliance check over the flow projection: drop the (now trailing)
    // reporting activities and compare against the designed flow.
    let projected = process_mining::eventlog::EventLog::from_traces(
        event_log
            .traces()
            .iter()
            .map(|t| {
                process_mining::eventlog::Trace::new(
                    t.case_id.clone(),
                    t.activities
                        .iter()
                        .filter(|a| !scm::REORDERABLE.contains(&a.as_str()))
                        .cloned()
                        .collect(),
                )
            })
            .filter(|t| !t.is_empty())
            .collect(),
    );
    let designed = log_from(&[&["pushASN", "ship", "queryASN", "unload"]]);
    let net = process_mining::alpha::alpha_miner(&designed);
    let fit = process_mining::conformance::replay_fitness(&net, &projected);
    let _ = writeln!(
        out,
        "compliance: {:.0} % of flow traces replay the designed model exactly \
         (token fitness {:.2}); footprint agreement {:.2}",
        fit.trace_fitness() * 100.0,
        fit.fitness,
        footprint_conformance(&designed, &projected)
    );
    let _ = writeln!(out, "\nDOT (render with graphviz):\n{}", dfg_to_dot(&dfg));
    out
}
