//! Ablation studies beyond the paper's figures.
//!
//! * [`abl1`] — **workload fluctuation / stale recommendations**: §7 notes
//!   that "in scenarios where the workload fluctuates or the optimization
//!   implementation is delayed, BlockOptR may need to be re-executed"; this
//!   experiment quantifies it.
//! * [`abl2`] — **resource-profile sensitivity**: how the calibrated
//!   bottleneck structure (clients / endorsers / orderer / validator) shifts
//!   as each stage's service time scales — the evidence behind DESIGN.md's
//!   substitution argument.
//! * [`abl3`] — **threshold sensitivity**: how the recommendation set reacts
//!   to the user-configurable thresholds (`Kt`, `reorder_share`, `Rt1`),
//!   the paper's §4.4 tuning discussion.

use super::{run_and_analyze, ExpCtx};
use crate::table::FigureTable;
use blockoptr::apply::{apply_system_level, apply_user_level};
use blockoptr::metrics::MetricConfig;
use blockoptr::pipeline::BlockOptR;
use blockoptr::recommend::Thresholds;
use std::fmt::Write as _;
use workload::spec::ControlVariables;

/// Ablation 1: apply recommendations derived from one traffic regime to a
/// fluctuated workload, versus re-running BlockOptR on the new regime.
pub fn abl1(ctx: &ExpCtx) -> String {
    let mut t =
        FigureTable::new("Ablation 1: stale recommendations under workload fluctuation (§7)");
    let n = ctx.txs(8_000);

    // Regime A: calm traffic (50 tps) — BlockOptR sees a healthy system
    // and recommends little.
    let cv_a = ControlVariables {
        send_rate: 50.0,
        key_skew: 2.0,
        transactions: n,
        ..Default::default()
    };
    let bundle_a = workload::synthetic::generate(&cv_a);
    let (_, analysis_a) = run_and_analyze(&bundle_a, cv_a.network_config());

    // Regime B: the workload surges to 700 tps (different seed too).
    let cv_b = ControlVariables {
        send_rate: 700.0,
        key_skew: 2.0,
        seed: 77,
        transactions: n,
        ..Default::default()
    };
    let bundle_b = workload::synthetic::generate(&cv_b);
    let (wo_b, analysis_b) = run_and_analyze(&bundle_b, cv_b.network_config());
    t.add("surged to 700 tps", "W/O", &wo_b);

    // Stale: calm-regime recommendations applied to the surge.
    let (requests, _) = apply_user_level(&bundle_b.requests, &analysis_a.recommendations);
    let (cfg, _) = apply_system_level(&cv_b.network_config(), &analysis_a.recommendations);
    let (stale, _) = run_and_analyze(&bundle_b.clone().with_requests(requests), cfg);
    t.add("surged to 700 tps", "stale recs (from 50 tps)", &stale);

    // Fresh: re-run BlockOptR on the surge and apply its recommendations.
    let (requests, _) = apply_user_level(&bundle_b.requests, &analysis_b.recommendations);
    let (cfg, _) = apply_system_level(&cv_b.network_config(), &analysis_b.recommendations);
    let (fresh, _) = run_and_analyze(&bundle_b.clone().with_requests(requests), cfg);
    t.add("surged to 700 tps", "fresh recs (re-run)", &fresh);

    let mut out = t.render();
    let _ = writeln!(
        out,
        "stale recommendations: {:?}\nfresh recommendations: {:?}",
        analysis_a.recommendation_names(),
        analysis_b.recommendation_names()
    );
    out
}

/// Ablation 2: scale one stage's service time at a time and watch the
/// bottleneck move.
pub fn abl2(ctx: &ExpCtx) -> String {
    let cv = ControlVariables {
        transactions: ctx.txs(6_000),
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);

    let mut out =
        String::from("\n=== Ablation 2: resource-profile sensitivity (bottleneck structure) ===\n");
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "profile", "tput (tps)", "lat (s)", "cli%", "end%", "ord%", "val%"
    );
    out.push_str(&"-".repeat(88));
    out.push('\n');

    type Tweak = fn(&mut fabric_sim::config::ResourceProfile, f64);
    let stages: [(&str, Tweak); 4] = [
        ("client_per_tx", |r, f| {
            r.client_per_tx = r.client_per_tx.mul_f64(f)
        }),
        ("endorse_exec_base", |r, f| {
            r.endorse_exec_base = r.endorse_exec_base.mul_f64(f)
        }),
        ("order_block_fixed", |r, f| {
            r.order_block_fixed = r.order_block_fixed.mul_f64(f)
        }),
        ("validate_per_tx", |r, f| {
            r.validate_per_tx = r.validate_per_tx.mul_f64(f)
        }),
    ];

    let baseline = bundle.run(cv.network_config()).report;
    let _ = writeln!(
        out,
        "{:<28} {:>10.1} {:>9.2} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
        "baseline",
        baseline.success_throughput,
        baseline.avg_latency_s,
        baseline.client_utilization * 100.0,
        baseline.endorser_utilization * 100.0,
        baseline.orderer_utilization * 100.0,
        baseline.validator_utilization * 100.0
    );
    for (name, tweak) in stages {
        for factor in [0.5, 2.0] {
            let mut cfg = cv.network_config();
            tweak(&mut cfg.resources, factor);
            let r = bundle.run(cfg).report;
            let _ = writeln!(
                out,
                "{:<28} {:>10.1} {:>9.2} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
                format!("{name} ×{factor}"),
                r.success_throughput,
                r.avg_latency_s,
                r.client_utilization * 100.0,
                r.endorser_utilization * 100.0,
                r.orderer_utilization * 100.0,
                r.validator_utilization * 100.0
            );
        }
    }
    out
}

/// Ablation 3: the recommendation set as a function of the detection
/// thresholds, on the DRM workload (the richest recommendation mix).
pub fn abl3(ctx: &ExpCtx) -> String {
    let spec = workload::drm::DrmSpec {
        transactions: ctx.txs(8_000),
        ..Default::default()
    };
    let bundle = workload::drm::generate(&spec);
    let output = bundle.run(fabric_sim::config::NetworkConfig::default());

    let mut out = String::from(
        "\n=== Ablation 3: threshold sensitivity of the recommendation set (DRM) ===\n",
    );
    let _ = writeln!(out, "{:<44} recommendations", "thresholds");
    out.push_str(&"-".repeat(120));
    out.push('\n');

    let cases: Vec<(String, MetricConfig, Thresholds)> = vec![
        (
            "defaults (Kt=0.05, reorder=0.4, Rt1=300)".into(),
            MetricConfig::default(),
            Thresholds::default(),
        ),
        (
            "hotkeys stricter (Kt=0.15)".into(),
            MetricConfig {
                hotkey_share: 0.15,
                ..Default::default()
            },
            Thresholds::default(),
        ),
        (
            "hotkeys looser (Kt=0.02)".into(),
            MetricConfig {
                hotkey_share: 0.02,
                ..Default::default()
            },
            Thresholds::default(),
        ),
        (
            "reordering stricter (share=0.8)".into(),
            MetricConfig::default(),
            Thresholds {
                reorder_share: 0.8,
                ..Default::default()
            },
        ),
        (
            "rate control stricter (Rt1=600)".into(),
            MetricConfig::default(),
            Thresholds {
                rt1: 600.0,
                ..Default::default()
            },
        ),
        (
            "rate control looser (Rt1=100, Rt2=0.1)".into(),
            MetricConfig::default(),
            Thresholds {
                rt1: 100.0,
                rt2: 0.1,
                ..Default::default()
            },
        ),
    ];
    for (label, metric_config, thresholds) in cases {
        let analyzer = BlockOptR {
            metric_config,
            thresholds,
            ..Default::default()
        };
        let analysis = analyzer.analyze_ledger(&output.ledger);
        let _ = writeln!(
            out,
            "{:<44} {}",
            label,
            analysis.recommendation_names().join(", ")
        );
    }
    out
}
