//! Figures 18–19: BlockOptR on top of the FabricSharp and Fabric++
//! baselines (§6.4) — the paper's demonstration that higher-level
//! recommendations still pay off on system-optimized Fabrics.

use super::{only, run_and_analyze, ExpCtx};
use crate::table::FigureTable;
use blockoptr::apply::{apply_system_level, apply_user_level};
use fabric_sim::config::SchedulerKind;
use workload::optimize;
use workload::spec::{ControlVariables, PolicyChoice, WorkloadType};
use workload::synthetic;

/// Figure 18: FabricSharp under P1, P2+skew, and insert-heavy workloads.
pub fn fig18(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 18: synthetic workloads with FabricSharp");
    let n = ctx.txs(10_000);

    // Endorsement-policy experiments: restructuring on top of FabricSharp.
    for cv in [
        ControlVariables {
            policy: PolicyChoice::P1,
            transactions: n,
            ..Default::default()
        },
        ControlVariables {
            policy: PolicyChoice::P2,
            endorser_skew: 6.0,
            transactions: n,
            ..Default::default()
        },
    ] {
        let bundle = synthetic::generate(&cv);
        let cfg = cv
            .network_config()
            .with_scheduler(SchedulerKind::FabricSharp);
        let (wo, analysis) = run_and_analyze(&bundle, cfg.clone());
        t.add(&format!("fabricsharp / {}", cv.label()), "W/O", &wo);
        let (restructured, _) =
            apply_system_level(&cfg, &only(&analysis, "Endorser restructuring"));
        let (w, _) = run_and_analyze(&bundle, restructured);
        t.add(
            &format!("fabricsharp / {}", cv.label()),
            "endorser restructuring",
            &w,
        );
    }

    // Insert-heavy (FabricSharp's documented weak spot): rate control.
    let cv = ControlVariables {
        workload: WorkloadType::InsertHeavy,
        transactions: n,
        ..Default::default()
    };
    let bundle = synthetic::generate(&cv);
    let cfg = cv
        .network_config()
        .with_scheduler(SchedulerKind::FabricSharp);
    let (wo, _) = run_and_analyze(&bundle, cfg.clone());
    t.add("fabricsharp / Workload: Insert-heavy", "W/O", &wo);
    let throttled = bundle
        .clone()
        .with_requests(optimize::rate_control(&bundle.requests, 100.0));
    let (w, _) = run_and_analyze(&throttled, cfg);
    t.add("fabricsharp / Workload: Insert-heavy", "rate control", &w);
    t.render()
}

/// Figure 19: Fabric++ under its weak workloads (update-, read- and
/// range-read-heavy), with rate control, reordering, and both.
pub fn fig19(ctx: &ExpCtx) -> String {
    let mut t = FigureTable::new("Figure 19: synthetic workloads with Fabric++");
    let n = ctx.txs(10_000);
    for workload_type in [
        WorkloadType::UpdateHeavy,
        WorkloadType::ReadHeavy,
        WorkloadType::RangeReadHeavy,
    ] {
        let cv = ControlVariables {
            workload: workload_type,
            transactions: n,
            ..Default::default()
        };
        let bundle = synthetic::generate(&cv);
        let cfg = cv
            .network_config()
            .with_scheduler(SchedulerKind::FabricPlusPlus);
        let label = format!("fabric++ / {}", cv.label());
        let (wo, analysis) = run_and_analyze(&bundle, cfg.clone());
        t.add(&label, "W/O", &wo);

        let throttled = bundle
            .clone()
            .with_requests(optimize::rate_control(&bundle.requests, 100.0));
        let (w, _) = run_and_analyze(&throttled, cfg.clone());
        t.add(&label, "rate control", &w);

        let (requests, applied) =
            apply_user_level(&bundle.requests, &only(&analysis, "Activity reordering"));
        if applied.is_empty() {
            t.add(&label, "reordering (n/a)", &wo);
        } else {
            let reordered = bundle.clone().with_requests(requests.clone());
            let (w, _) = run_and_analyze(&reordered, cfg.clone());
            t.add(&label, "activity reordering", &w);
        }

        let (requests, _) = apply_user_level(&bundle.requests, &analysis.recommendations);
        let all = bundle
            .clone()
            .with_requests(optimize::rate_control(&requests, 100.0));
        let (w, _) = run_and_analyze(&all, cfg);
        t.add(&label, "all optimizations", &w);
    }
    t.render()
}
