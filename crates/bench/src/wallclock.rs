//! The workspace's single wall-clock seam.
//!
//! Everything outside this module runs on simulated time
//! (`sim_core::time`): that is what makes runs replayable and
//! byte-identical across machines and thread counts, and the `wall-clock`
//! detlint rule enforces it. The benchmark harness is the one place that
//! genuinely measures the host, and it does so through here — so every
//! host-time read in the workspace is greppable at a single `now()`.

use std::time::Duration;

/// An opaque wall-clock timestamp; subtract two with [`Stopwatch::elapsed`]
/// semantics via [`elapsed_since`].
pub type Timestamp = std::time::Instant;

/// Read the host clock. The only sanctioned wall-clock read in the
/// workspace.
pub fn now() -> Timestamp {
    std::time::Instant::now()
}

/// Host time elapsed since `start`.
pub fn elapsed_since(start: Timestamp) -> Duration {
    start.elapsed()
}

/// A started timer — the common "how long did this take" shape of the
/// experiment harness.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Timestamp,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { started: now() }
    }

    /// Host time since [`start`](Stopwatch::start).
    pub fn elapsed(&self) -> Duration {
        elapsed_since(self.started)
    }
}
