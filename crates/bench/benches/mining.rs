//! Process-mining cost: event-log generation, the Alpha miner (Figures 2/4)
//! and the heuristics miner over the SCM and LAP logs.

use blockoptr::eventlog::to_event_log;
use blockoptr::log::BlockchainLog;
use criterion::{criterion_group, criterion_main, Criterion};
use fabric_sim::config::NetworkConfig;
use process_mining::alpha::alpha_miner;
use process_mining::conformance::replay_fitness;
use process_mining::dfg::DirectlyFollowsGraph;
use process_mining::heuristics::{heuristics_miner, HeuristicsConfig};
use std::hint::black_box;

fn bench_mining(c: &mut Criterion) {
    let scm_bundle = workload::scm::generate(&workload::scm::ScmSpec {
        transactions: 5_000,
        ..Default::default()
    });
    let scm_log = BlockchainLog::from_ledger(&scm_bundle.run(NetworkConfig::default()).ledger);
    let scm_events = to_event_log(&scm_log);

    let lap_bundle = workload::lap::generate(&workload::lap::LapSpec {
        applications: 500,
        ..Default::default()
    });
    let lap_log = BlockchainLog::from_ledger(&lap_bundle.run(NetworkConfig::default()).ledger);
    let lap_events = to_event_log(&lap_log);

    let mut group = c.benchmark_group("mining");
    group.sample_size(20);

    group.bench_function("event_log_generation_scm", |b| {
        b.iter(|| black_box(to_event_log(&scm_log)))
    });
    group.bench_function("dfg_scm", |b| {
        b.iter(|| black_box(DirectlyFollowsGraph::from_log(&scm_events)))
    });
    group.bench_function("alpha_scm", |b| {
        b.iter(|| black_box(alpha_miner(&scm_events)))
    });
    group.bench_function("heuristics_scm", |b| {
        b.iter(|| black_box(heuristics_miner(&scm_events, &HeuristicsConfig::default())))
    });
    group.bench_function("alpha_lap", |b| {
        b.iter(|| black_box(alpha_miner(&lap_events)))
    });
    let net = alpha_miner(&scm_events);
    group.bench_function("replay_fitness_scm", |b| {
        b.iter(|| black_box(replay_fitness(&net, &scm_events)))
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
