//! Streaming versus batch analysis cost — the asymptotic argument for the
//! session API: a monitoring loop that re-analyzes after every window pays
//!
//! * **batch** (`BlockOptR::analyze_ledger` per window): O(total log) per
//!   window — the per-window cost *grows* with chain length;
//! * **streaming** (`Session::ingest_block` + `snapshot`): O(new data) per
//!   ingest plus O(state) per snapshot — the per-window cost stays flat.
//!
//! The `..._at_2k` / `..._at_10k` pairs make that visible: batch cost rises
//! roughly with the prefix length, streaming cost does not.

use blockoptr::pipeline::BlockOptR;
use blockoptr::session::{Analyzer, Session};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fabric_sim::ledger::Ledger;
use std::hint::black_box;
use workload::spec::ControlVariables;

/// A 12k-transaction chain; windows are cut at block granularity.
fn chain() -> Ledger {
    let cv = ControlVariables {
        transactions: 12_000,
        ..Default::default()
    };
    workload::synthetic::generate(&cv)
        .run(cv.network_config())
        .ledger
}

/// A ledger holding the first `blocks` blocks of `full`.
fn prefix(full: &Ledger, blocks: usize) -> Ledger {
    let mut out = Ledger::new();
    for block in &full.blocks()[..blocks] {
        out.append(block.clone());
    }
    out
}

/// A session that has already ingested the first `blocks` blocks.
fn warm_session(full: &Ledger, blocks: usize) -> Session {
    let mut session = Analyzer::new().session().expect("default interval");
    for block in &full.blocks()[..blocks] {
        session.ingest_block(block);
    }
    session
}

fn bench_streaming(c: &mut Criterion) {
    let full = chain();
    let total_blocks = full.blocks().len();
    let window = 5usize.min(total_blocks);
    let small = total_blocks / 6; // ~2k transactions deep
    let large = total_blocks - window; // ~12k transactions deep

    let mut group = c.benchmark_group("streaming_vs_batch");
    group.sample_size(10);

    // Batch path: the monitoring loop re-runs the full pipeline over the
    // whole prefix every window.
    for (label, depth) in [
        ("batch_window_at_2k", small),
        ("batch_window_at_12k", large),
    ] {
        let ledger = prefix(&full, depth + window);
        group.bench_function(label, |b| {
            b.iter(|| black_box(BlockOptR::new().analyze_ledger(&ledger)))
        });
    }

    // Streaming path: ingest one window of new blocks, snapshot. The warm
    // session is rebuilt from scratch by the setup closure (outside the
    // timed region) so its copy-on-write state is unshared, exactly like a
    // long-running monitoring loop's session.
    for (label, depth) in [
        ("stream_window_at_2k", small),
        ("stream_window_at_12k", large),
    ] {
        let new_blocks = &full.blocks()[depth..depth + window];
        group.bench_function(label, |b| {
            b.iter_batched(
                || warm_session(&full, depth),
                |mut session| {
                    for block in new_blocks {
                        session.ingest_block(block);
                    }
                    let analysis = black_box(session.snapshot().expect("non-empty"));
                    // Hand both back so their destruction is not timed.
                    (session, analysis)
                },
                BatchSize::LargeInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
