//! Simulator throughput: how many simulated transactions per second of
//! wall-clock the EOV pipeline processes, across workload shapes and
//! schedulers. Supports the substitution argument in DESIGN.md — the
//! substrate is cheap enough to sweep every experiment configuration.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fabric_sim::config::SchedulerKind;
use std::hint::black_box;
use workload::spec::{ControlVariables, WorkloadType};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);

    for (name, workload) in [
        ("uniform", WorkloadType::Uniform),
        ("update_heavy", WorkloadType::UpdateHeavy),
        ("rangeread_heavy", WorkloadType::RangeReadHeavy),
    ] {
        let cv = ControlVariables {
            workload,
            transactions: 2_000,
            ..Default::default()
        };
        let bundle = workload::synthetic::generate(&cv);
        group.throughput(Throughput::Elements(cv.transactions as u64));
        group.bench_function(format!("run_2k_{name}"), |b| {
            b.iter(|| black_box(bundle.run(cv.network_config())))
        });
    }

    // Scheduler overhead ablation at the whole-run level.
    let cv = ControlVariables {
        workload: WorkloadType::UpdateHeavy,
        key_skew: 2.0,
        transactions: 2_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    for scheduler in [
        SchedulerKind::Vanilla,
        SchedulerKind::FabricPlusPlus,
        SchedulerKind::FabricSharp,
    ] {
        group.bench_function(format!("run_2k_{}", scheduler.label()), |b| {
            b.iter(|| black_box(bundle.run(cv.network_config().with_scheduler(scheduler))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
