//! Metric-derivation throughput: the cost of each §4.3 metric family over a
//! 10 000-transaction blockchain log (the paper's standard log size).

use blockoptr::log::BlockchainLog;
use blockoptr::metrics::{
    BlockMetrics, CorrelationMetrics, EndorserMetrics, InvokerMetrics, KeyMetrics, MetricConfig,
    Metrics, RateMetrics,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sim_core::time::SimDuration;
use std::hint::black_box;
use workload::spec::ControlVariables;

fn bench_metrics(c: &mut Criterion) {
    let cv = ControlVariables::default(); // 10 000 transactions
    let bundle = workload::synthetic::generate(&cv);
    let output = bundle.run(cv.network_config());
    let log = BlockchainLog::from_ledger(&output.ledger);
    let config = MetricConfig::default();

    let mut group = c.benchmark_group("metrics_10k_log");
    group.sample_size(20);
    group.throughput(Throughput::Elements(log.len() as u64));

    group.bench_function("all_families", |b| {
        b.iter(|| black_box(Metrics::derive(&log, &config)))
    });
    group.bench_function("rates", |b| {
        b.iter(|| black_box(RateMetrics::derive(&log, SimDuration::from_secs(1))))
    });
    group.bench_function("blocks", |b| {
        b.iter(|| black_box(BlockMetrics::derive(&log)))
    });
    group.bench_function("endorsers", |b| {
        b.iter(|| black_box(EndorserMetrics::derive(&log)))
    });
    group.bench_function("invokers", |b| {
        b.iter(|| black_box(InvokerMetrics::derive(&log)))
    });
    group.bench_function("keys", |b| {
        b.iter(|| black_box(KeyMetrics::derive(&log, &config)))
    });
    group.bench_function("correlation", |b| {
        b.iter(|| black_box(CorrelationMetrics::derive(&log)))
    });
    group.bench_function("csv_export", |b| {
        b.iter(|| black_box(blockoptr::export::to_csv(&log)))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
