//! Parallel plan execution: serial vs threaded wall-clock, plus an
//! allocation-sensitive simulator throughput probe.
//!
//! Two claims are measured and recorded:
//!
//! 1. **Fan-out scales.** `OptimizationPlan::execute_with` distributes the
//!    `(configuration, seed)` simulation grid over a
//!    [`sim_core::pool::ThreadPool`]; on a machine with ≥ 4 cores the
//!    4-thread execution must be ≥ 2× faster than the single-thread one
//!    (asserted below — on smaller machines the ratio is recorded but the
//!    assertion is skipped, since the speedup physically cannot exist).
//!    Either way the outcomes must be byte-identical: the bench fails if
//!    threading changes any per-seed metric.
//! 2. **The allocation diet holds.** A raw `bundle.run(config)` throughput
//!    probe tracks the simulator's hot path (interned `Arc<str>` names,
//!    shared `Arc<[Value]>` args, clone-free assemble/commit, pre-sized
//!    state keys). Regressions show up as a drop in tx/s.
//! 3. **The DES core keeps up.** The same probe records dispatched
//!    events/s (`SimReport::events` over wall-clock), and an open-loop
//!    Poisson arrival run ([`workload::ArrivalSpec`]) records tx/s in the
//!    timeout-cut regime the closed loop never enters.
//! 4. **Resilience costs are visible.** The open-loop run repeats under an
//!    injected endorser outage with a retrying client
//!    ([`workload::FaultSpec`] / [`workload::RetryPolicy`]): throughput
//!    under degradation and the retry count (asserted > 0) land in the
//!    artifact, so fault-path overhead has a trajectory too.
//! 5. **Sharded ingest sustains.** A larger ledger's commit-ordered log
//!    is split into contiguous shards, each shard ingested into its own
//!    fresh [`blockoptr::Session`] (as independent shards would), and the
//!    shards folded with `Session::merge` — the monoid the equivalence
//!    tests pin. Recorded: sustained ingest throughput (`ingest_tps`),
//!    the merged session's estimated resident footprint
//!    (`session_footprint_bytes`), and the serialized size of a slimmed
//!    multi-seed measurement (`measured_report_bytes`) — the three
//!    numbers that regress first if the measurement pipeline drifts back
//!    toward O(raw).
//!
//! Results are written to `BENCH_plan.json` at the repository root
//! (override with `BENCH_PLAN_OUT`) to start the perf trajectory; CI
//! uploads the file as an artifact.

use bench::wallclock::Stopwatch;
use blockoptr::pipeline::BlockOptR;
use blockoptr::plan::{MeasuredReport, OptimizationPlan, PlanConfig, PlanOutcome};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fabric_sim::config::NetworkConfig;
use sim_core::pool;
use std::hint::black_box;
use workload::{scm, ArrivalSpec, ScenarioSpec};

const SEEDS: usize = 4;
const PARALLEL_THREADS: usize = 4;

/// Shards for the sustained-ingest probe: contiguous slices of the
/// commit-ordered log ingested into independent sessions, then folded
/// with `Session::merge`.
const INGEST_SHARDS: usize = 4;

/// Open-loop arrival rate for the DES probe (tx/s). Sparse enough that a
/// 100-transaction block takes longer than the 1 s block timeout to fill,
/// so the timer consistently wins the cut race — the regime the closed
/// loop never reaches.
const OPEN_LOOP_RATE: f64 = 60.0;

fn setup() -> (workload::WorkloadBundle, NetworkConfig, OptimizationPlan) {
    let txs = std::env::var("BENCH_PLAN_TXS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let spec = scm::ScmSpec {
        transactions: txs,
        ..Default::default()
    };
    let bundle = scm::generate(&spec);
    let config = NetworkConfig::default();
    let analysis = BlockOptR::new().analyze_ledger(&bundle.run(config.clone()).ledger);
    let plan = OptimizationPlan::from_analysis(&analysis);
    (bundle, config, plan)
}

/// Median wall-clock of `runs` executions.
fn time_execution(
    plan: &OptimizationPlan,
    bundle: &workload::WorkloadBundle,
    config: &NetworkConfig,
    plan_config: &PlanConfig,
    runs: usize,
) -> (f64, PlanOutcome) {
    let mut secs: Vec<f64> = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let start = Stopwatch::start();
        last = Some(black_box(plan.execute_with(bundle, config, plan_config)));
        secs.push(start.elapsed().as_secs_f64());
    }
    secs.sort_by(f64::total_cmp);
    (secs[secs.len() / 2], last.expect("runs >= 1"))
}

/// Per-seed integer/bit fingerprint: any threading-induced divergence trips
/// the equality check below.
fn fingerprint(m: &MeasuredReport) -> Vec<(usize, usize, u64, u64)> {
    m.per_seed
        .iter()
        .map(|r| {
            (
                r.successes,
                r.mvcc_conflicts,
                r.success_rate_pct.to_bits(),
                r.avg_latency_s.to_bits(),
            )
        })
        .collect()
}

fn outcome_fingerprint(o: &PlanOutcome) -> Vec<Vec<(usize, usize, u64, u64)>> {
    let mut all = vec![fingerprint(&o.baseline)];
    all.extend(
        o.actions
            .iter()
            .filter_map(|a| a.measured())
            .map(fingerprint),
    );
    all.extend(o.combined.iter().map(fingerprint));
    all
}

fn bench_plan_parallel(c: &mut Criterion) {
    let (bundle, config, plan) = setup();
    let serial_cfg = PlanConfig::new(SEEDS, 1);
    let parallel_cfg = PlanConfig::new(SEEDS, PARALLEL_THREADS);

    // Criterion display: the paired serial/threaded grid and the raw
    // simulator throughput probe.
    let mut group = c.benchmark_group("plan_parallel");
    group.sample_size(2);
    group.bench_function(format!("execute_{SEEDS}seeds_1thread"), |b| {
        b.iter(|| black_box(plan.execute_with(&bundle, &config, &serial_cfg)))
    });
    group.bench_function(
        format!("execute_{SEEDS}seeds_{PARALLEL_THREADS}threads"),
        |b| b.iter(|| black_box(plan.execute_with(&bundle, &config, &parallel_cfg))),
    );
    group.finish();

    // Open-loop probe: the same scm volume re-stamped by a Poisson arrival
    // process, exercising the DES timer race (timeout cuts).
    let (open_bundle, open_config) = ScenarioSpec::builtin("scm")
        .expect("scm is a builtin")
        .with_transactions(bundle.len())
        .with_arrival(ArrivalSpec::Poisson {
            rate: OPEN_LOOP_RATE,
        })
        .build()
        .expect("open-loop scm spec builds");

    // Outage probe: the same open-loop volume with org-0's endorsers down
    // for a window and a bounded-retry client — the fault path under load.
    let mut outage_spec = ScenarioSpec::builtin("scm")
        .expect("scm is a builtin")
        .with_transactions(bundle.len())
        .with_arrival(ArrivalSpec::Poisson {
            rate: OPEN_LOOP_RATE,
        });
    outage_spec
        .fault
        .endorser_outages
        .push(workload::OutageWindow {
            org: 0,
            peer: None,
            start: 2.0,
            duration: 2.5,
        });
    outage_spec.retry = workload::RetryPolicy {
        endorse_timeout: Some(0.4),
        max_attempts: 3,
        backoff_base: 0.05,
        backoff_multiplier: 2.0,
        jitter: 0.0,
    };
    let (outage_bundle, outage_config) = outage_spec.build().expect("outage scm spec builds");

    let mut sim_group = c.benchmark_group("sim_throughput");
    sim_group.sample_size(5);
    sim_group.throughput(Throughput::Elements(bundle.len() as u64));
    sim_group.bench_function("scm_run_alloc_diet", |b| {
        b.iter(|| black_box(bundle.run(config.clone())))
    });
    sim_group.throughput(Throughput::Elements(open_bundle.len() as u64));
    sim_group.bench_function("scm_run_open_loop", |b| {
        b.iter(|| black_box(open_bundle.run(open_config.clone())))
    });
    sim_group.throughput(Throughput::Elements(outage_bundle.len() as u64));
    sim_group.bench_function("scm_run_open_loop_outage", |b| {
        b.iter(|| black_box(outage_bundle.run(outage_config.clone())))
    });
    sim_group.finish();

    // Explicit measurement for BENCH_plan.json + the scaling assertion
    // (medians of 5 runs, so one noisy-neighbour hiccup cannot flip the
    // ratio).
    let cores = pool::hardware_threads();
    let (serial_secs, serial_outcome) = time_execution(&plan, &bundle, &config, &serial_cfg, 5);
    let (parallel_secs, parallel_outcome) =
        time_execution(&plan, &bundle, &config, &parallel_cfg, 5);
    assert_eq!(
        outcome_fingerprint(&serial_outcome),
        outcome_fingerprint(&parallel_outcome),
        "threaded execution must be byte-identical to serial"
    );
    let speedup = serial_secs / parallel_secs.max(1e-12);

    let sim_start = Stopwatch::start();
    let sim_runs = 3;
    let mut sim_events = 0u64;
    for _ in 0..sim_runs {
        sim_events = black_box(bundle.run(config.clone())).report.events;
    }
    let sim_secs = sim_start.elapsed().as_secs_f64() / sim_runs as f64;
    let sim_tps = bundle.len() as f64 / sim_secs;
    let sim_events_per_sec = sim_events as f64 / sim_secs;

    let open_start = Stopwatch::start();
    let mut open_timeout_cuts = 0usize;
    for _ in 0..sim_runs {
        let out = black_box(open_bundle.run(open_config.clone()));
        open_timeout_cuts = out
            .ledger
            .blocks()
            .iter()
            .filter(|b| b.cut_reason == fabric_sim::ledger::CutReason::Timeout)
            .count();
    }
    let open_secs = open_start.elapsed().as_secs_f64() / sim_runs as f64;
    let open_tps = open_bundle.len() as f64 / open_secs;
    assert!(
        open_timeout_cuts > 0,
        "the open-loop probe must exercise timeout cuts (got none)"
    );

    let outage_start = Stopwatch::start();
    let mut outage_retries = 0usize;
    for _ in 0..sim_runs {
        let out = black_box(outage_bundle.run(outage_config.clone()));
        outage_retries = out.report.degradation.retries;
    }
    let outage_secs = outage_start.elapsed().as_secs_f64() / sim_runs as f64;
    let outage_tps = outage_bundle.len() as f64 / outage_secs;
    assert!(
        outage_retries > 0,
        "the outage probe must exercise the client retry path (got no retries)"
    );

    // Sustained-ingest probe: shard a larger ledger across fresh sessions,
    // fold with `Session::merge`, and time the whole ingest + fold. The
    // merge equivalence tests guarantee the folded session is
    // byte-identical to serial ingest, so this measures the sharded hot
    // path the daemon-style deployment would run.
    let ingest_txs = std::env::var("BENCH_INGEST_TXS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let (ingest_bundle, ingest_config) = ScenarioSpec::builtin("scm")
        .expect("scm is a builtin")
        .with_transactions(ingest_txs)
        .build()
        .expect("ingest scm spec builds");
    let ingest_ledger = ingest_bundle.run(ingest_config).ledger;
    // Extract the commit-ordered log once (global commit indices), then
    // pre-slice it into the contiguous shard streams each ingester would
    // receive; only ingestion + folding is timed.
    let full_log = blockoptr::log::BlockchainLog::from_ledger(&ingest_ledger);
    let records = full_log.records().to_vec();
    let shard_logs: Vec<blockoptr::log::BlockchainLog> = records
        .chunks(records.len().div_ceil(INGEST_SHARDS).max(1))
        .map(|piece| {
            let blocks = piece
                .iter()
                .map(|r| r.block)
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            blockoptr::log::BlockchainLog::from_records(piece.to_vec(), blocks)
        })
        .collect();
    let analyzer = blockoptr::Analyzer::new();
    let ingest_start = Stopwatch::start();
    let mut shards: Vec<blockoptr::Session> = shard_logs
        .into_iter()
        .map(|log| {
            let mut session = analyzer.session().expect("fresh session");
            session
                .ingest_log(log)
                .expect("commit-ordered shard ingests cleanly");
            session
        })
        .collect();
    let mut merged = shards.remove(0);
    for shard in shards {
        merged
            .merge(shard)
            .expect("contiguous shards merge cleanly");
    }
    let ingest_secs = ingest_start.elapsed().as_secs_f64();
    let ingest_records = merged.len() + merged.evicted();
    let ingest_tps = ingest_records as f64 / ingest_secs.max(1e-12);
    let session_footprint_bytes = merged.footprint().approx_bytes();
    let measured_report_bytes = serde_json::to_string(&serial_outcome.baseline)
        .expect("a measured report serializes")
        .len();

    // The ≥ 2× target needs hardware to scale onto; on narrower machines
    // the ratio is recorded so the trajectory still shows the trend.
    // `BENCH_PLAN_ASSERT=off` downgrades the assertion to record-only for
    // noisy shared runners (the ratio still lands in BENCH_plan.json).
    let assert_enabled = !matches!(
        std::env::var("BENCH_PLAN_ASSERT").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    );
    let assertion = if cores < PARALLEL_THREADS {
        format!(
            "skipped ({cores} core(s) < {PARALLEL_THREADS} threads: no parallel speedup possible)"
        )
    } else if !assert_enabled {
        format!("recorded only (BENCH_PLAN_ASSERT=off; got {speedup:.2}x)")
    } else {
        assert!(
            speedup >= 2.0,
            "{PARALLEL_THREADS}-thread plan execution must be ≥ 2× faster than serial \
             on a {cores}-core machine (got {speedup:.2}×: serial {serial_secs:.2}s, \
             parallel {parallel_secs:.2}s)"
        );
        "passed (speedup >= 2.0)".to_string()
    };

    let json = format!(
        "{{\n  \"bench\": \"plan_parallel\",\n  \"workload\": \"scm\",\n  \"transactions\": {},\n  \"plan_actions\": {},\n  \"seeds\": {},\n  \"cores\": {},\n  \"threads\": {},\n  \"serial_secs\": {:.4},\n  \"parallel_secs\": {:.4},\n  \"speedup\": {:.3},\n  \"identical_outcomes\": true,\n  \"speedup_assertion\": \"{}\",\n  \"sim_run_secs\": {:.4},\n  \"sim_throughput_tps\": {:.0},\n  \"sim_events_per_sec\": {:.0},\n  \"open_loop_rate_tps\": {:.0},\n  \"open_loop_run_secs\": {:.4},\n  \"open_loop_throughput_tps\": {:.0},\n  \"open_loop_timeout_cuts\": {},\n  \"outage_run_secs\": {:.4},\n  \"outage_throughput_tps\": {:.0},\n  \"outage_retries\": {},\n  \"ingest_shards\": {},\n  \"ingest_transactions\": {},\n  \"ingest_secs\": {:.4},\n  \"ingest_tps\": {:.0},\n  \"session_footprint_bytes\": {},\n  \"measured_report_bytes\": {}\n}}\n",
        bundle.len(),
        plan.len(),
        SEEDS,
        cores,
        PARALLEL_THREADS,
        serial_secs,
        parallel_secs,
        speedup,
        assertion,
        sim_secs,
        sim_tps,
        sim_events_per_sec,
        OPEN_LOOP_RATE,
        open_secs,
        open_tps,
        open_timeout_cuts,
        outage_secs,
        outage_tps,
        outage_retries,
        INGEST_SHARDS,
        ingest_records,
        ingest_secs,
        ingest_tps,
        session_footprint_bytes,
        measured_report_bytes,
    );
    let out_path = std::env::var("BENCH_PLAN_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_plan.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &json).expect("write BENCH_plan.json");
    eprintln!("plan_parallel: speedup {speedup:.2}× on {cores} core(s) — {assertion}");
    eprintln!(
        "sim: {sim_tps:.0} tx/s closed loop ({sim_events_per_sec:.0} events/s), \
         {open_tps:.0} tx/s open loop ({open_timeout_cuts} timeout cuts), \
         {outage_tps:.0} tx/s under outage ({outage_retries} retries)"
    );
    eprintln!(
        "ingest: {ingest_tps:.0} tx/s over {INGEST_SHARDS} shards \
         ({ingest_records} records; session {session_footprint_bytes} B, \
         measured report {measured_report_bytes} B)"
    );
    eprintln!("results recorded to {out_path}");
}

criterion_group!(benches, bench_plan_parallel);
criterion_main!(benches);
