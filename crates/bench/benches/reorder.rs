//! Block-scheduler ablation: per-block cost of the Fabric++ and FabricSharp
//! reordering algorithms versus vanilla FIFO — the quantitative side of the
//! paper's "reordering algorithms are expensive" argument (§3).

use criterion::{criterion_group, criterion_main, Criterion};
use fabric_sim::config::SchedulerKind;
use fabric_sim::rwset::{ReadWriteSet, Version};
use fabric_sim::scheduler::{schedule_block, SchedTx};
use fabric_sim::types::Value;
use sim_core::dist::Zipf;
use sim_core::rng::SimRng;
use sim_core::time::SimDuration;
use std::hint::black_box;

/// A block of update transactions over a Zipf-skewed key space — the
/// conflict-heavy shape where reordering has the most work to do.
fn conflict_block(n: usize, keys: usize, skew: f64) -> Vec<ReadWriteSet> {
    let zipf = Zipf::new(keys, skew);
    let mut rng = SimRng::seed_from_u64(7);
    (0..n)
        .map(|i| {
            let mut rw = ReadWriteSet::new();
            let k = format!("k{}", zipf.sample(&mut rng));
            rw.record_read(k.clone(), Some(Version::new(0, 0)));
            rw.record_write(k, Some(Value::Int(i as i64)));
            rw
        })
        .collect()
}

fn bench_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_scheduler");
    group.sample_size(30);

    for (label, block_size, skew) in [
        ("100tx_uniform", 100usize, 0.0),
        ("100tx_zipf1", 100, 1.0),
        ("300tx_zipf1", 300, 1.0),
        ("300tx_zipf15", 300, 1.5),
    ] {
        let rwsets = conflict_block(block_size, 200, skew);
        let txs: Vec<SchedTx<'_>> = rwsets
            .iter()
            .map(|rw| SchedTx {
                rwset: rw,
                endorse_spread: SimDuration::ZERO,
            })
            .collect();
        for kind in [
            SchedulerKind::Vanilla,
            SchedulerKind::FabricPlusPlus,
            SchedulerKind::FabricSharp,
        ] {
            group.bench_function(format!("{label}/{}", kind.label()), |b| {
                b.iter(|| black_box(schedule_block(kind, &txs)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reorder);
criterion_main!(benches);
