//! End-to-end pipeline cost (paper Figure 5's workflow): simulate a
//! workload, extract the blockchain log, derive metrics, mine the model,
//! and produce recommendations. This is the cost a user pays to run
//! BlockOptR over a 2 000-transaction chain.

use blockoptr::pipeline::BlockOptR;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use workload::spec::ControlVariables;

fn bench_pipeline(c: &mut Criterion) {
    let cv = ControlVariables {
        transactions: 2_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("simulate_2k", |b| {
        b.iter(|| black_box(bundle.run(cv.network_config())))
    });

    let output = bundle.run(cv.network_config());
    group.bench_function("analyze_2k", |b| {
        b.iter(|| black_box(BlockOptR::new().analyze_ledger(&output.ledger)))
    });

    group.bench_function("simulate_and_analyze_2k", |b| {
        b.iter_batched(
            || bundle.clone(),
            |bundle| {
                let out = bundle.run(cv.network_config());
                black_box(BlockOptR::new().analyze_ledger(&out.ledger))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
