//! Digital Voting (DV) contract and the altered-data-model variant.
//!
//! The base contract (§5.1.2) tallies votes directly on the party key — so
//! during the voting phase every `vote` transaction updates one of a handful
//! of party records, and within each block only the first vote per party
//! survives MVCC validation. That is why Figure 16's baseline commits only
//! ~10 % of transactions.
//!
//! BlockOptR's *data model alteration* recommendation (§6.2) changes the
//! primary key from `partyID` to `voterID`: each vote becomes an insert of a
//! unique key, removing the dependency entirely (100 % success in the
//! paper). [`DvPerVoterContract`] implements that redesign; results are
//! aggregated by a range scan at `seeResults`.

use crate::{arg_str, Contract, ExecStatus, TxContext, Value};
use std::collections::BTreeMap;

/// The base digital-voting contract (namespace `dv`): party-keyed tallies.
#[derive(Debug, Default, Clone, Copy)]
pub struct DvContract;

impl DvContract {
    /// Chaincode namespace.
    pub const NAME: &'static str = "dv";

    /// Genesis value of a party key.
    pub fn genesis_party(party: &str) -> Value {
        let mut m = BTreeMap::new();
        m.insert("name".to_string(), Value::Str(party.to_string()));
        m.insert("votes".to_string(), Value::Int(0));
        m.insert("voters".to_string(), Value::Str(String::new()));
        Value::Map(m)
    }
}

impl Contract for DvContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "vote" => {
                let party = arg_str(args, 0, "party");
                let voter = arg_str(args, 1, "voter");
                let Some(Value::Map(mut m)) = ctx.get_state(party) else {
                    return ExecStatus::Abort(format!("unknown party {party}"));
                };
                let votes = m.get("votes").and_then(Value::as_int).unwrap_or(0);
                m.insert("votes".to_string(), Value::Int(votes + 1));
                // Recording the voter prevents double voting and makes the
                // write a multi-field change (not a pure counter delta).
                let voters = m
                    .get("voters")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                m.insert(
                    "voters".to_string(),
                    Value::Str(if voters.is_empty() {
                        voter.to_string()
                    } else {
                        format!("{voters},{voter}")
                    }),
                );
                ctx.put_state(party, Value::Map(m));
                ExecStatus::Ok
            }
            "queryParties" => {
                let _ = ctx.get_state("parties");
                ExecStatus::Ok
            }
            "seeResults" => {
                let _ = ctx.get_state_by_range("party:", "party:~");
                ExecStatus::Ok
            }
            "endElection" => {
                let _ = ctx.get_state("election");
                ctx.put_state("election", Value::Str("closed".into()));
                ExecStatus::Ok
            }
            other => panic!("dv: unknown activity {other:?}"),
        }
    }

    fn activities(&self) -> Vec<&'static str> {
        vec!["vote", "queryParties", "seeResults", "endElection"]
    }
}

/// The redesigned contract (namespace `dv`): voter-keyed ballots.
#[derive(Debug, Default, Clone, Copy)]
pub struct DvPerVoterContract;

impl DvPerVoterContract {
    /// Chaincode namespace (upgraded in place).
    pub const NAME: &'static str = "dv";
}

impl Contract for DvPerVoterContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn id(&self) -> &str {
        "dv:per-voter"
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "vote" => {
                // Each voter writes their own unique ballot key: voters are
                // "restricted to a single vote", so inserts never collide.
                let party = arg_str(args, 0, "party");
                let voter = arg_str(args, 1, "voter");
                ctx.put_state(&format!("ballot:{voter}"), Value::Str(party.to_string()));
                ExecStatus::Ok
            }
            "queryParties" => {
                let _ = ctx.get_state("parties");
                ExecStatus::Ok
            }
            "seeResults" => {
                // Tally by scanning the ballots.
                let ballots = ctx.get_state_by_range("ballot:", "ballot:~");
                let mut tally: BTreeMap<String, i64> = BTreeMap::new();
                for (_, v) in ballots {
                    if let Some(p) = v.as_str() {
                        *tally.entry(p.to_string()).or_insert(0) += 1;
                    }
                }
                ExecStatus::Ok
            }
            "endElection" => {
                let _ = ctx.get_state("election");
                ctx.put_state("election", Value::Str("closed".into()));
                ExecStatus::Ok
            }
            other => panic!("dv-per-voter: unknown activity {other:?}"),
        }
    }

    fn activities(&self) -> Vec<&'static str> {
        vec!["vote", "queryParties", "seeResults", "endElection"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::state::WorldState;
    use fabric_sim::types::TxType;

    fn state() -> WorldState {
        let mut s = WorldState::new();
        s.seed("dv/party:A".into(), DvContract::genesis_party("A"));
        s.seed("dv/party:B".into(), DvContract::genesis_party("B"));
        s.seed("dv/parties".into(), Value::Str("A,B".into()));
        s
    }

    #[test]
    fn base_vote_updates_party_key() {
        let s = state();
        let cc = DvContract;
        let mut ctx = TxContext::new(&s, cc.name());
        assert!(cc
            .execute(&mut ctx, "vote", &["party:A".into(), "V001".into()])
            .is_ok());
        let rw = ctx.into_rwset();
        assert_eq!(rw.tx_type(), TxType::Update);
        assert_eq!(rw.writes[0].key, "dv/party:A");
        let m = rw.writes[0].value.as_ref().unwrap().as_map().unwrap();
        assert_eq!(m.get("votes"), Some(&Value::Int(1)));
        assert_eq!(m.get("voters"), Some(&Value::Str("V001".into())));
    }

    #[test]
    fn base_votes_for_same_party_share_a_key() {
        // The structural reason the base model collapses: all voters of one
        // party read-modify-write the same key.
        let s = state();
        let cc = DvContract;
        let mut ctx1 = TxContext::new(&s, cc.name());
        cc.execute(&mut ctx1, "vote", &["party:A".into(), "V001".into()]);
        let mut ctx2 = TxContext::new(&s, cc.name());
        cc.execute(&mut ctx2, "vote", &["party:A".into(), "V002".into()]);
        let k1 = ctx1.into_rwset().writes[0].key.clone();
        let k2 = ctx2.into_rwset().writes[0].key.clone();
        assert_eq!(k1, k2);
    }

    #[test]
    fn per_voter_votes_use_unique_keys() {
        let s = state();
        let cc = DvPerVoterContract;
        let mut ctx1 = TxContext::new(&s, cc.name());
        cc.execute(&mut ctx1, "vote", &["party:A".into(), "V001".into()]);
        let mut ctx2 = TxContext::new(&s, cc.name());
        cc.execute(&mut ctx2, "vote", &["party:A".into(), "V002".into()]);
        let rw1 = ctx1.into_rwset();
        let rw2 = ctx2.into_rwset();
        assert_eq!(rw1.tx_type(), TxType::Write, "blind insert");
        assert_ne!(rw1.writes[0].key, rw2.writes[0].key, "no shared key");
        assert!(rw1.reads.is_empty(), "no read dependency at all");
    }

    #[test]
    fn base_unknown_party_aborts() {
        let s = state();
        let cc = DvContract;
        let mut ctx = TxContext::new(&s, cc.name());
        let st = cc.execute(&mut ctx, "vote", &["party:Z".into(), "V1".into()]);
        assert!(!st.is_ok());
    }

    #[test]
    fn see_results_scans_parties_in_base() {
        let s = state();
        let cc = DvContract;
        let mut ctx = TxContext::new(&s, cc.name());
        assert!(cc.execute(&mut ctx, "seeResults", &[]).is_ok());
        let rw = ctx.into_rwset();
        assert_eq!(rw.range_reads[0].observed.len(), 2);
    }

    #[test]
    fn see_results_tallies_ballots_in_redesign() {
        let mut s = state();
        s.seed("dv/ballot:V001".into(), Value::Str("party:A".into()));
        s.seed("dv/ballot:V002".into(), Value::Str("party:A".into()));
        s.seed("dv/ballot:V003".into(), Value::Str("party:B".into()));
        let cc = DvPerVoterContract;
        let mut ctx = TxContext::new(&s, cc.name());
        assert!(cc.execute(&mut ctx, "seeResults", &[]).is_ok());
        let rw = ctx.into_rwset();
        assert_eq!(rw.range_reads[0].observed.len(), 3);
    }

    #[test]
    fn end_election_closes_once() {
        let s = state();
        let cc = DvContract;
        let mut ctx = TxContext::new(&s, cc.name());
        assert!(cc.execute(&mut ctx, "endElection", &[]).is_ok());
        let rw = ctx.into_rwset();
        assert_eq!(rw.writes[0].key, "dv/election");
    }

    #[test]
    fn query_parties_reads_directory_key_only() {
        // Ksig isolation: queryParties does NOT touch individual party keys,
        // so the party hotkeys are accessed only by `vote` (and the one-off
        // seeResults scan) — the shape behind the data-model recommendation.
        let s = state();
        let cc = DvContract;
        let mut ctx = TxContext::new(&s, cc.name());
        assert!(cc.execute(&mut ctx, "queryParties", &[]).is_ok());
        let rw = ctx.into_rwset();
        assert_eq!(rw.reads.len(), 1);
        assert_eq!(rw.reads[0].key, "dv/parties");
    }
}
