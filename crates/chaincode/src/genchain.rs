//! The genChain synthetic contract.
//!
//! The paper's synthetic workloads (§5.1.1) run against a generic contract
//! with one function per transaction type. It has deliberately "simple logic
//! with no branches, increment/decrement operations or complex data model"
//! (§6.1) — which is why BlockOptR never recommends process-model pruning,
//! delta writes, or data-model alterations for it.
//!
//! Activities (arguments are chosen by the workload generator):
//!
//! * `read(key)` — point read;
//! * `write(key, value)` — blind write (insert);
//! * `update(key, nonce)` — read-modify-write storing an opaque string (NOT
//!   an increment, so the delta-writes condition never fires);
//! * `range_read(start, end)` — range scan;
//! * `delete(key)` — read + tombstone.

use crate::{arg_str, Contract, ExecStatus, TxContext, Value};

/// The synthetic genChain contract (namespace `genchain`).
#[derive(Debug, Default, Clone, Copy)]
pub struct GenChainContract;

impl GenChainContract {
    /// Chaincode namespace.
    pub const NAME: &'static str = "genchain";
}

impl Contract for GenChainContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "read" => {
                let key = arg_str(args, 0, "key");
                let _ = ctx.get_state(key);
            }
            "write" => {
                let key = arg_str(args, 0, "key");
                ctx.put_state(key, args.get(1).cloned().unwrap_or(Value::Unit));
            }
            "update" => {
                let key = arg_str(args, 0, "key");
                let _ = ctx.get_state(key);
                let nonce = args.get(1).cloned().unwrap_or(Value::Unit);
                ctx.put_state(key, Value::Str(format!("u:{nonce}")));
            }
            "range_read" => {
                let start = arg_str(args, 0, "start");
                let end = arg_str(args, 1, "end");
                let _ = ctx.get_state_by_range(start, end);
            }
            "delete" => {
                let key = arg_str(args, 0, "key");
                let _ = ctx.get_state(key);
                ctx.delete_state(key);
            }
            other => panic!("genchain: unknown activity {other:?}"),
        }
        ExecStatus::Ok
    }

    fn activities(&self) -> Vec<&'static str> {
        vec!["read", "write", "update", "range_read", "delete"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::state::WorldState;
    use fabric_sim::types::TxType;

    fn state() -> WorldState {
        let mut s = WorldState::new();
        s.seed("genchain/k00001".into(), Value::Int(7));
        s.seed("genchain/k00002".into(), Value::Int(8));
        s
    }

    fn run(state: &WorldState, activity: &str, args: &[Value]) -> fabric_sim::rwset::ReadWriteSet {
        let cc = GenChainContract;
        let mut ctx = TxContext::new(state, cc.name());
        assert!(cc.execute(&mut ctx, activity, args).is_ok());
        ctx.into_rwset()
    }

    #[test]
    fn read_produces_read_type() {
        let s = state();
        let rw = run(&s, "read", &["k00001".into()]);
        assert_eq!(rw.tx_type(), TxType::Read);
        assert_eq!(rw.reads.len(), 1);
        assert!(rw.writes.is_empty());
    }

    #[test]
    fn write_is_blind() {
        let s = state();
        let rw = run(&s, "write", &["k99999".into(), Value::Int(1)]);
        assert_eq!(rw.tx_type(), TxType::Write);
        assert!(rw.reads.is_empty(), "no read before blind write");
    }

    #[test]
    fn update_reads_then_writes_same_key() {
        let s = state();
        let rw = run(&s, "update", &["k00001".into(), Value::Int(42)]);
        assert_eq!(rw.tx_type(), TxType::Update);
        assert_eq!(rw.reads[0].key, "genchain/k00001");
        assert_eq!(rw.writes[0].key, "genchain/k00001");
        // Not an increment: the written value is an opaque string.
        assert!(matches!(rw.writes[0].value, Some(Value::Str(_))));
    }

    #[test]
    fn range_read_observes_interval() {
        let s = state();
        let rw = run(&s, "range_read", &["k00001".into(), "k00003".into()]);
        assert_eq!(rw.tx_type(), TxType::RangeRead);
        assert_eq!(rw.range_reads[0].observed.len(), 2);
    }

    #[test]
    fn delete_reads_and_tombstones() {
        let s = state();
        let rw = run(&s, "delete", &["k00001".into()]);
        assert_eq!(rw.tx_type(), TxType::Delete);
        assert!(rw.writes[0].is_delete());
    }

    #[test]
    #[should_panic(expected = "unknown activity")]
    fn unknown_activity_panics() {
        let s = state();
        let _ = run(&s, "bogus", &[]);
    }
}
