//! Electronic Health Records (EHR) contract.
//!
//! Patients grant or revoke access rights for medical and research
//! institutes, which query and update the records (paper §5.1.2). The
//! update-heavy workload (70 % `updateRecord`) produces the MVCC-conflict
//! regime of Figure 15.
//!
//! Each patient key holds `Map { access: Str(csv of institutes), record:
//! Str }`. Activities:
//!
//! * `grantAccess(patient, institute)` — read + rewrite the access list;
//! * `revokeAccess(patient, institute)` — read; **revoking an never-granted
//!   institute is the anomalous path** (Figure 15's pruning target): the base
//!   contract commits it read-only, the pruned variant aborts it;
//! * `queryRecord(patient)` — read;
//! * `updateRecord(patient, nonce)` — read + rewrite the record field.

use crate::{arg_str, Contract, ExecStatus, TxContext, Value};
use std::collections::BTreeMap;

/// The EHR contract; `pruned` selects the anomalous-path behaviour.
#[derive(Debug, Clone, Copy)]
pub struct EhrContract {
    pruned: bool,
}

impl EhrContract {
    /// Chaincode namespace.
    pub const NAME: &'static str = "ehr";

    /// Base behaviour: anomalous revokes commit read-only.
    pub fn base() -> Self {
        EhrContract { pruned: false }
    }

    /// Pruned behaviour: anomalous revokes abort during endorsement.
    pub fn pruned() -> Self {
        EhrContract { pruned: true }
    }

    /// Genesis value for a patient record.
    pub fn genesis_record(patient: &str) -> Value {
        let mut m = BTreeMap::new();
        m.insert("access".to_string(), Value::Str(String::new()));
        m.insert(
            "record".to_string(),
            Value::Str(format!("record:{patient}")),
        );
        Value::Map(m)
    }

    fn load(ctx: &mut TxContext<'_>, patient: &str) -> Option<BTreeMap<String, Value>> {
        ctx.get_state(patient).and_then(|v| match v {
            Value::Map(m) => Some(m),
            _ => None,
        })
    }

    fn access_list(m: &BTreeMap<String, Value>) -> Vec<String> {
        m.get("access")
            .and_then(Value::as_str)
            .map(|s| {
                s.split(',')
                    .filter(|x| !x.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Contract for EhrContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn id(&self) -> &str {
        if self.pruned {
            "ehr:pruned"
        } else {
            "ehr"
        }
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "grantAccess" => {
                let patient = arg_str(args, 0, "patient");
                let institute = arg_str(args, 1, "institute");
                let Some(mut m) = Self::load(ctx, patient) else {
                    return ExecStatus::Abort(format!("unknown patient {patient}"));
                };
                let mut list = Self::access_list(&m);
                if !list.iter().any(|i| i == institute) {
                    list.push(institute.to_string());
                }
                m.insert("access".to_string(), Value::Str(list.join(",")));
                ctx.put_state(patient, Value::Map(m));
                ExecStatus::Ok
            }
            "revokeAccess" => {
                let patient = arg_str(args, 0, "patient");
                let institute = arg_str(args, 1, "institute");
                let Some(mut m) = Self::load(ctx, patient) else {
                    return ExecStatus::Abort(format!("unknown patient {patient}"));
                };
                let mut list = Self::access_list(&m);
                let had = list.iter().any(|i| i == institute);
                if had {
                    list.retain(|i| i != institute);
                    m.insert("access".to_string(), Value::Str(list.join(",")));
                    ctx.put_state(patient, Value::Map(m));
                    ExecStatus::Ok
                } else if self.pruned {
                    ExecStatus::Abort(format!("revoke without grant: {institute} on {patient}"))
                } else {
                    // Anomalous path committed read-only for provenance.
                    ExecStatus::Ok
                }
            }
            "queryRecord" => {
                let patient = arg_str(args, 0, "patient");
                let _ = ctx.get_state(patient);
                ExecStatus::Ok
            }
            "updateRecord" => {
                let patient = arg_str(args, 0, "patient");
                let Some(mut m) = Self::load(ctx, patient) else {
                    return ExecStatus::Abort(format!("unknown patient {patient}"));
                };
                let nonce = args.get(1).cloned().unwrap_or(Value::Unit);
                m.insert(
                    "record".to_string(),
                    Value::Str(format!("record:{patient}:{nonce}")),
                );
                ctx.put_state(patient, Value::Map(m));
                ExecStatus::Ok
            }
            other => panic!("ehr: unknown activity {other:?}"),
        }
    }

    fn activities(&self) -> Vec<&'static str> {
        vec!["grantAccess", "revokeAccess", "queryRecord", "updateRecord"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::state::WorldState;
    use fabric_sim::types::TxType;

    fn state() -> WorldState {
        let mut s = WorldState::new();
        s.seed("ehr/PT0001".into(), EhrContract::genesis_record("PT0001"));
        s
    }

    fn granted_state() -> WorldState {
        let mut s = state();
        let mut m = BTreeMap::new();
        m.insert("access".to_string(), Value::Str("inst1".into()));
        m.insert("record".to_string(), Value::Str("r".into()));
        s.seed("ehr/PT0002".into(), Value::Map(m));
        s
    }

    fn run(
        cc: &EhrContract,
        s: &WorldState,
        activity: &str,
        args: &[Value],
    ) -> (ExecStatus, fabric_sim::rwset::ReadWriteSet) {
        let mut ctx = TxContext::new(s, cc.name());
        let st = cc.execute(&mut ctx, activity, args);
        (st, ctx.into_rwset())
    }

    #[test]
    fn grant_appends_institute() {
        let cc = EhrContract::base();
        let s = state();
        let (st, rw) = run(&cc, &s, "grantAccess", &["PT0001".into(), "inst9".into()]);
        assert!(st.is_ok());
        let written = rw.writes[0].value.as_ref().unwrap().as_map().unwrap();
        assert_eq!(written.get("access"), Some(&Value::Str("inst9".into())));
        assert_eq!(rw.tx_type(), TxType::Update);
    }

    #[test]
    fn grant_is_idempotent_on_list() {
        let cc = EhrContract::base();
        let s = granted_state();
        let (st, rw) = run(&cc, &s, "grantAccess", &["PT0002".into(), "inst1".into()]);
        assert!(st.is_ok());
        let written = rw.writes[0].value.as_ref().unwrap().as_map().unwrap();
        assert_eq!(written.get("access"), Some(&Value::Str("inst1".into())));
    }

    #[test]
    fn revoke_after_grant_removes() {
        let cc = EhrContract::base();
        let s = granted_state();
        let (st, rw) = run(&cc, &s, "revokeAccess", &["PT0002".into(), "inst1".into()]);
        assert!(st.is_ok());
        let written = rw.writes[0].value.as_ref().unwrap().as_map().unwrap();
        assert_eq!(written.get("access"), Some(&Value::Str(String::new())));
    }

    #[test]
    fn anomalous_revoke_base_commits_read_only() {
        let cc = EhrContract::base();
        let s = state();
        let (st, rw) = run(&cc, &s, "revokeAccess", &["PT0001".into(), "ghost".into()]);
        assert!(st.is_ok());
        assert!(rw.writes.is_empty());
        assert_eq!(rw.tx_type(), TxType::Read);
    }

    #[test]
    fn anomalous_revoke_pruned_aborts() {
        let cc = EhrContract::pruned();
        let s = state();
        let (st, _) = run(&cc, &s, "revokeAccess", &["PT0001".into(), "ghost".into()]);
        assert!(!st.is_ok());
    }

    #[test]
    fn update_record_rewrites_record_field() {
        let cc = EhrContract::base();
        let s = state();
        let (st, rw) = run(&cc, &s, "updateRecord", &["PT0001".into(), Value::Int(3)]);
        assert!(st.is_ok());
        assert_eq!(rw.tx_type(), TxType::Update);
        let written = rw.writes[0].value.as_ref().unwrap().as_map().unwrap();
        assert_eq!(
            written.get("record"),
            Some(&Value::Str("record:PT0001:3".into()))
        );
    }

    #[test]
    fn unknown_patient_aborts() {
        let cc = EhrContract::base();
        let s = state();
        let (st, _) = run(&cc, &s, "updateRecord", &["NOPE".into(), Value::Int(1)]);
        assert!(!st.is_ok());
    }

    #[test]
    fn query_record_is_read_only() {
        let cc = EhrContract::base();
        let s = state();
        let (st, rw) = run(&cc, &s, "queryRecord", &["PT0001".into()]);
        assert!(st.is_ok());
        assert_eq!(rw.tx_type(), TxType::Read);
    }
}
