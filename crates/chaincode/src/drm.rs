//! Digital Rights Management (DRM) contract and its optimized variants.
//!
//! The base contract (§5.1.2) keeps one record per piece of music — play
//! count, metadata and right holders under a single key — so the Play-heavy
//! workload hammers the popular keys and *every* activity conflicts with
//! `play`. BlockOptR recommends three data-level fixes (§6.2, Figure 14),
//! each implemented here:
//!
//! * [`DrmContract`] — the base: `play` increments the record's play count;
//!   queries read the same record.
//! * [`DrmDeltaContract`] — **delta writes**: `play(music, seq)` blind-writes
//!   a unique delta key `<music>#d<seq>`; `calcRevenue` aggregates the deltas
//!   with a range scan (slower reads, conflict-free writes — the paper notes
//!   `calcRevenue` latency rises but overall performance improves).
//! * [`DrmPlayContract`] + [`DrmMetaContract`] — **smart contract
//!   partitioning**: play counting and metadata live in separate chaincodes
//!   (separate world-state namespaces); `create` on the play contract
//!   cross-invokes the metadata contract so the original functionality is
//!   preserved (paper §4.4.2 example).

use crate::{arg_int, arg_str, Contract, ExecStatus, TxContext, Value};
use std::collections::BTreeMap;

/// Delta keys aggregated per `calcRevenue` page (Fabric-style paginated
/// scan); bounds the aggregation cost as the delta set grows.
pub const DELTA_SCAN_LIMIT: usize = 200;

fn record(plays: i64, meta: &str, holders: &str) -> Value {
    let mut m = BTreeMap::new();
    m.insert("plays".to_string(), Value::Int(plays));
    m.insert("meta".to_string(), Value::Str(meta.to_string()));
    m.insert("holders".to_string(), Value::Str(holders.to_string()));
    Value::Map(m)
}

fn bump_plays(v: Option<Value>) -> Value {
    match v {
        Some(Value::Map(mut m)) => {
            let plays = m.get("plays").and_then(Value::as_int).unwrap_or(0);
            m.insert("plays".to_string(), Value::Int(plays + 1));
            Value::Map(m)
        }
        _ => record(1, "", ""),
    }
}

/// The base DRM contract (namespace `drm`).
#[derive(Debug, Default, Clone, Copy)]
pub struct DrmContract;

impl DrmContract {
    /// Chaincode namespace.
    pub const NAME: &'static str = "drm";

    /// Build the genesis record for a piece of music.
    pub fn genesis_record(music: &str) -> Value {
        record(0, &format!("meta:{music}"), &format!("holders:{music}"))
    }
}

impl Contract for DrmContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "play" => {
                let music = arg_str(args, 0, "music");
                let v = ctx.get_state(music);
                ctx.put_state(music, bump_plays(v));
            }
            "create" => {
                let music = arg_str(args, 0, "music");
                ctx.put_state(music, DrmContract::genesis_record(music));
            }
            "queryRightHolders" | "viewMetaData" | "calcRevenue" => {
                let music = arg_str(args, 0, "music");
                let _ = ctx.get_state(music);
            }
            other => panic!("drm: unknown activity {other:?}"),
        }
        ExecStatus::Ok
    }

    fn activities(&self) -> Vec<&'static str> {
        vec![
            "play",
            "create",
            "queryRightHolders",
            "viewMetaData",
            "calcRevenue",
        ]
    }
}

/// DRM with delta writes (namespace `drm`): `play` writes unique delta keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct DrmDeltaContract;

impl DrmDeltaContract {
    /// Chaincode namespace (upgraded in place, same namespace as the base).
    pub const NAME: &'static str = "drm";
}

impl Contract for DrmDeltaContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn id(&self) -> &str {
        "drm:delta"
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "play" => {
                // Write-only transaction to a unique delta key: no read, no
                // dependency, no MVCC conflict.
                let music = arg_str(args, 0, "music");
                let seq = arg_int(args, 1, "sequence");
                ctx.put_state(&format!("{music}#d{seq:09}"), Value::Int(1));
            }
            "create" => {
                let music = arg_str(args, 0, "music");
                ctx.put_state(music, DrmContract::genesis_record(music));
            }
            "calcRevenue" => {
                // Aggregation now scans the delta keys — more read work.
                let music = arg_str(args, 0, "music");
                let _ = ctx.get_state(music);
                let deltas = ctx.get_state_by_range_limited(
                    &format!("{music}#d"),
                    &format!("{music}#d~"),
                    DELTA_SCAN_LIMIT,
                );
                let _total: i64 = deltas.iter().filter_map(|(_, v)| v.as_int()).sum();
            }
            "queryRightHolders" | "viewMetaData" => {
                let music = arg_str(args, 0, "music");
                let _ = ctx.get_state(music);
            }
            other => panic!("drm-delta: unknown activity {other:?}"),
        }
        ExecStatus::Ok
    }

    fn activities(&self) -> Vec<&'static str> {
        vec![
            "play",
            "create",
            "queryRightHolders",
            "viewMetaData",
            "calcRevenue",
        ]
    }
}

/// Partitioned DRM, contract 1 (namespace `drm-play`): play counting.
#[derive(Debug, Default, Clone, Copy)]
pub struct DrmPlayContract;

impl DrmPlayContract {
    /// Chaincode namespace.
    pub const NAME: &'static str = "drm-play";
}

impl Contract for DrmPlayContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "play" => {
                let music = arg_str(args, 0, "music");
                let plays = ctx.get_state(music).and_then(|v| v.as_int()).unwrap_or(0);
                ctx.put_state(music, Value::Int(plays + 1));
            }
            "calcRevenue" => {
                let music = arg_str(args, 0, "music");
                let _ = ctx.get_state(music);
            }
            "create" => {
                // The paper: "The create function is included in both smart
                // contracts, and invocation of the first smart contract
                // invokes the same function in the second."
                let music = arg_str(args, 0, "music");
                ctx.put_state(music, Value::Int(0));
                ctx.set_namespace(DrmMetaContract::NAME);
                ctx.put_state(music, DrmContract::genesis_record(music));
                ctx.set_namespace(Self::NAME);
            }
            other => panic!("drm-play: unknown activity {other:?}"),
        }
        ExecStatus::Ok
    }

    fn activities(&self) -> Vec<&'static str> {
        vec!["play", "calcRevenue", "create"]
    }
}

/// Partitioned DRM play contract with delta writes (namespace `drm-play`):
/// the Figure-14 "all optimizations" configuration combines partitioning
/// with delta-write play counting.
#[derive(Debug, Default, Clone, Copy)]
pub struct DrmPlayDeltaContract;

impl DrmPlayDeltaContract {
    /// Chaincode namespace (same as the plain play contract).
    pub const NAME: &'static str = "drm-play";
}

impl Contract for DrmPlayDeltaContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn id(&self) -> &str {
        "drm-play:delta"
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "play" => {
                let music = arg_str(args, 0, "music");
                let seq = arg_int(args, 1, "sequence");
                ctx.put_state(&format!("{music}#d{seq:09}"), Value::Int(1));
            }
            "calcRevenue" => {
                let music = arg_str(args, 0, "music");
                let _ = ctx.get_state(music);
                let deltas = ctx.get_state_by_range_limited(
                    &format!("{music}#d"),
                    &format!("{music}#d~"),
                    DELTA_SCAN_LIMIT,
                );
                let _total: i64 = deltas.iter().filter_map(|(_, v)| v.as_int()).sum();
            }
            "create" => {
                let music = arg_str(args, 0, "music");
                ctx.put_state(music, Value::Int(0));
                ctx.set_namespace(DrmMetaContract::NAME);
                ctx.put_state(music, DrmContract::genesis_record(music));
                ctx.set_namespace(Self::NAME);
            }
            other => panic!("drm-play-delta: unknown activity {other:?}"),
        }
        ExecStatus::Ok
    }

    fn activities(&self) -> Vec<&'static str> {
        vec!["play", "calcRevenue", "create"]
    }
}

/// Partitioned DRM, contract 2 (namespace `drm-meta`): metadata and rights.
#[derive(Debug, Default, Clone, Copy)]
pub struct DrmMetaContract;

impl DrmMetaContract {
    /// Chaincode namespace.
    pub const NAME: &'static str = "drm-meta";
}

impl Contract for DrmMetaContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "viewMetaData" | "queryRightHolders" => {
                let music = arg_str(args, 0, "music");
                let _ = ctx.get_state(music);
            }
            "create" => {
                let music = arg_str(args, 0, "music");
                ctx.put_state(music, DrmContract::genesis_record(music));
            }
            other => panic!("drm-meta: unknown activity {other:?}"),
        }
        ExecStatus::Ok
    }

    fn activities(&self) -> Vec<&'static str> {
        vec!["viewMetaData", "queryRightHolders", "create"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::state::WorldState;
    use fabric_sim::types::TxType;

    fn base_state() -> WorldState {
        let mut s = WorldState::new();
        s.seed("drm/M0001".into(), DrmContract::genesis_record("M0001"));
        s
    }

    #[test]
    fn base_play_is_hot_key_update() {
        let s = base_state();
        let cc = DrmContract;
        let mut ctx = TxContext::new(&s, cc.name());
        assert!(cc.execute(&mut ctx, "play", &["M0001".into()]).is_ok());
        let rw = ctx.into_rwset();
        assert_eq!(rw.tx_type(), TxType::Update);
        // The written record bumps only the `plays` field by one — the
        // pattern the delta-writes recommendation detects.
        let written = rw.writes[0].value.as_ref().unwrap().as_map().unwrap();
        assert_eq!(written.get("plays"), Some(&Value::Int(1)));
        assert_eq!(
            written.get("meta"),
            Some(&Value::Str("meta:M0001".into())),
            "other fields unchanged"
        );
    }

    #[test]
    fn base_queries_touch_the_same_key_as_play() {
        let s = base_state();
        let cc = DrmContract;
        for act in ["viewMetaData", "queryRightHolders", "calcRevenue"] {
            let mut ctx = TxContext::new(&s, cc.name());
            assert!(cc.execute(&mut ctx, act, &["M0001".into()]).is_ok());
            let rw = ctx.into_rwset();
            assert!(rw.read_keys().contains("drm/M0001"), "{act}");
        }
    }

    #[test]
    fn delta_play_is_blind_write_to_unique_key() {
        let s = base_state();
        let cc = DrmDeltaContract;
        let mut ctx = TxContext::new(&s, cc.name());
        assert!(cc
            .execute(&mut ctx, "play", &["M0001".into(), Value::Int(17)])
            .is_ok());
        let rw = ctx.into_rwset();
        assert_eq!(rw.tx_type(), TxType::Write, "no read, no conflict");
        assert!(rw.writes[0].key.contains("#d000000017"));
    }

    #[test]
    fn delta_calc_revenue_aggregates_deltas() {
        let mut s = base_state();
        s.seed("drm/M0001#d000000001".into(), Value::Int(1));
        s.seed("drm/M0001#d000000002".into(), Value::Int(1));
        let cc = DrmDeltaContract;
        let mut ctx = TxContext::new(&s, cc.name());
        assert!(cc
            .execute(&mut ctx, "calcRevenue", &["M0001".into()])
            .is_ok());
        let rw = ctx.into_rwset();
        assert_eq!(rw.range_reads.len(), 1);
        assert_eq!(rw.range_reads[0].observed.len(), 2, "scans both deltas");
    }

    #[test]
    fn partitioned_contracts_use_disjoint_namespaces() {
        let mut s = WorldState::new();
        s.seed("drm-play/M0001".into(), Value::Int(0));
        s.seed(
            "drm-meta/M0001".into(),
            DrmContract::genesis_record("M0001"),
        );

        let play = DrmPlayContract;
        let mut ctx = TxContext::new(&s, play.name());
        assert!(play.execute(&mut ctx, "play", &["M0001".into()]).is_ok());
        let play_rw = ctx.into_rwset();

        let meta = DrmMetaContract;
        let mut ctx2 = TxContext::new(&s, meta.name());
        assert!(meta
            .execute(&mut ctx2, "viewMetaData", &["M0001".into()])
            .is_ok());
        let meta_rw = ctx2.into_rwset();

        let play_keys = play_rw.all_keys();
        let meta_keys = meta_rw.all_keys();
        assert!(
            play_keys.is_disjoint(&meta_keys),
            "partitioning separates the world states: {play_keys:?} vs {meta_keys:?}"
        );
    }

    #[test]
    fn partitioned_create_cross_invokes() {
        let s = WorldState::new();
        let play = DrmPlayContract;
        let mut ctx = TxContext::new(&s, play.name());
        assert!(play.execute(&mut ctx, "create", &["M0002".into()]).is_ok());
        let rw = ctx.into_rwset();
        let keys = rw.write_keys();
        assert!(keys.contains("drm-play/M0002"));
        assert!(keys.contains("drm-meta/M0002"), "cross-contract create");
    }

    #[test]
    fn partitioned_play_increments_plain_counter() {
        let mut s = WorldState::new();
        s.seed("drm-play/M0001".into(), Value::Int(41));
        let play = DrmPlayContract;
        let mut ctx = TxContext::new(&s, play.name());
        assert!(play.execute(&mut ctx, "play", &["M0001".into()]).is_ok());
        let rw = ctx.into_rwset();
        assert_eq!(rw.writes[0].value, Some(Value::Int(42)));
    }
}
