//! Loan Application Process (LAP) contract and the altered data model.
//!
//! Reproduces the paper's §5.1.3 smart contract for the BPI-Challenge-2017
//! loan process of a Dutch financial institute. The paper's first
//! implementation uses the **employeeID as the key** whose value is an array
//! of application structures — convenient for "all applications processed by
//! an employee" queries, but employee 1 processes the most applications, so
//! their key becomes hot and every activity on any of their applications
//! conflicts (Figure 17's baseline).
//!
//! BlockOptR's *data model alteration* swaps the primary key to the
//! **applicationID** with the employee recorded inside the value
//! ([`LapByApplicationContract`]), removing the hot key.
//!
//! Both contracts expose the same loan-process activities:
//! `create`, `submit`, `handleLeads`, `createOffer`, `sendOffer`,
//! `validate`, `approve`, `decline`, `cancel`, `queryEmployee`.

use crate::{arg_str, Contract, ExecStatus, TxContext, Value};
use std::collections::BTreeMap;

/// The loan-process activity names, in canonical flow order.
pub const LAP_ACTIVITIES: [&str; 9] = [
    "create",
    "submit",
    "handleLeads",
    "createOffer",
    "sendOffer",
    "validate",
    "approve",
    "decline",
    "cancel",
];

fn application_entry(app: &str, employee: &str, amount: i64, status: &str) -> Value {
    let mut m = BTreeMap::new();
    m.insert("application".to_string(), Value::Str(app.to_string()));
    m.insert("employee".to_string(), Value::Str(employee.to_string()));
    m.insert("loan_type".to_string(), Value::Str("consumer".to_string()));
    m.insert("amount".to_string(), Value::Int(amount));
    m.insert("status".to_string(), Value::Str(status.to_string()));
    Value::Map(m)
}

/// Paper data model: key = employeeID, value = array of application records.
#[derive(Debug, Default, Clone, Copy)]
pub struct LapByEmployeeContract;

impl LapByEmployeeContract {
    /// Chaincode namespace.
    pub const NAME: &'static str = "lap";
}

impl LapByEmployeeContract {
    fn upsert(ctx: &mut TxContext<'_>, employee: &str, app: &str, amount: i64, status: &str) {
        let mut entries = match ctx.get_state(employee) {
            Some(Value::List(items)) => items,
            _ => Vec::new(),
        };
        let fresh = application_entry(app, employee, amount, status);
        if let Some(slot) = entries.iter_mut().find(|e| {
            e.as_map()
                .and_then(|m| m.get("application"))
                .and_then(Value::as_str)
                == Some(app)
        }) {
            *slot = fresh;
        } else {
            entries.push(fresh);
        }
        ctx.put_state(employee, Value::List(entries));
    }
}

impl Contract for LapByEmployeeContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn id(&self) -> &str {
        "lap:by-employee"
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "queryEmployee" => {
                let employee = arg_str(args, 0, "employee");
                let _ = ctx.get_state(employee);
                ExecStatus::Ok
            }
            act if LAP_ACTIVITIES.contains(&act) => {
                let employee = arg_str(args, 0, "employee");
                let app = arg_str(args, 1, "application");
                let amount = args.get(2).and_then(Value::as_int).unwrap_or(0);
                Self::upsert(ctx, employee, app, amount, act);
                ExecStatus::Ok
            }
            other => panic!("lap: unknown activity {other:?}"),
        }
    }

    fn activities(&self) -> Vec<&'static str> {
        let mut acts = LAP_ACTIVITIES.to_vec();
        acts.push("queryEmployee");
        acts
    }
}

/// Altered data model: key = applicationID, employee inside the value.
#[derive(Debug, Default, Clone, Copy)]
pub struct LapByApplicationContract;

impl LapByApplicationContract {
    /// Chaincode namespace (upgraded in place).
    pub const NAME: &'static str = "lap";
}

impl Contract for LapByApplicationContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn id(&self) -> &str {
        "lap:by-application"
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "queryEmployee" => {
                // Per-employee reporting now scans applications; kept cheap
                // via the employee index key (read-only either way).
                let employee = arg_str(args, 0, "employee");
                let _ = ctx.get_state(&format!("emp-index:{employee}"));
                ExecStatus::Ok
            }
            "create" => {
                let employee = arg_str(args, 0, "employee");
                let app = arg_str(args, 1, "application");
                let amount = args.get(2).and_then(Value::as_int).unwrap_or(0);
                ctx.put_state(app, application_entry(app, employee, amount, "create"));
                ExecStatus::Ok
            }
            act if LAP_ACTIVITIES.contains(&act) => {
                let employee = arg_str(args, 0, "employee");
                let app = arg_str(args, 1, "application");
                let amount = args.get(2).and_then(Value::as_int).unwrap_or(0);
                let _ = ctx.get_state(app);
                ctx.put_state(app, application_entry(app, employee, amount, act));
                ExecStatus::Ok
            }
            other => panic!("lap-by-app: unknown activity {other:?}"),
        }
    }

    fn activities(&self) -> Vec<&'static str> {
        let mut acts = LAP_ACTIVITIES.to_vec();
        acts.push("queryEmployee");
        acts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::state::WorldState;
    use fabric_sim::types::TxType;

    #[test]
    fn by_employee_all_activities_hit_employee_key() {
        let s = WorldState::new();
        let cc = LapByEmployeeContract;
        for act in ["create", "submit", "validate", "approve"] {
            let mut ctx = TxContext::new(&s, cc.name());
            assert!(cc
                .execute(
                    &mut ctx,
                    act,
                    &["E001".into(), "APP00001".into(), Value::Int(5000)]
                )
                .is_ok());
            let rw = ctx.into_rwset();
            assert_eq!(rw.writes[0].key, "lap/E001", "{act} writes employee key");
        }
    }

    #[test]
    fn by_employee_two_applications_same_employee_conflict() {
        // The structural hot-key problem: different applications handled by
        // the same employee share a key.
        let s = WorldState::new();
        let cc = LapByEmployeeContract;
        let mut c1 = TxContext::new(&s, cc.name());
        cc.execute(
            &mut c1,
            "create",
            &["E001".into(), "APP1".into(), Value::Int(1)],
        );
        let mut c2 = TxContext::new(&s, cc.name());
        cc.execute(
            &mut c2,
            "create",
            &["E001".into(), "APP2".into(), Value::Int(2)],
        );
        assert_eq!(c1.into_rwset().writes[0].key, c2.into_rwset().writes[0].key);
    }

    #[test]
    fn by_employee_upsert_replaces_entry() {
        let mut s = WorldState::new();
        s.seed(
            "lap/E001".into(),
            Value::List(vec![application_entry("APP1", "E001", 100, "create")]),
        );
        let cc = LapByEmployeeContract;
        let mut ctx = TxContext::new(&s, cc.name());
        cc.execute(
            &mut ctx,
            "submit",
            &["E001".into(), "APP1".into(), Value::Int(100)],
        );
        let rw = ctx.into_rwset();
        let list = rw.writes[0].value.as_ref().unwrap().as_list().unwrap();
        assert_eq!(list.len(), 1, "entry replaced, not duplicated");
        assert_eq!(
            list[0].as_map().unwrap().get("status"),
            Some(&Value::Str("submit".into()))
        );
    }

    #[test]
    fn by_application_uses_distinct_keys() {
        let s = WorldState::new();
        let cc = LapByApplicationContract;
        let mut c1 = TxContext::new(&s, cc.name());
        cc.execute(
            &mut c1,
            "create",
            &["E001".into(), "APP1".into(), Value::Int(1)],
        );
        let mut c2 = TxContext::new(&s, cc.name());
        cc.execute(
            &mut c2,
            "create",
            &["E001".into(), "APP2".into(), Value::Int(2)],
        );
        let k1 = c1.into_rwset().writes[0].key.clone();
        let k2 = c2.into_rwset().writes[0].key.clone();
        assert_ne!(k1, k2, "one key per application");
        assert_eq!(k1, "lap/APP1");
    }

    #[test]
    fn by_application_create_is_blind_insert() {
        let s = WorldState::new();
        let cc = LapByApplicationContract;
        let mut ctx = TxContext::new(&s, cc.name());
        cc.execute(
            &mut ctx,
            "create",
            &["E001".into(), "APP1".into(), Value::Int(1)],
        );
        let rw = ctx.into_rwset();
        assert_eq!(rw.tx_type(), TxType::Write);
    }

    #[test]
    fn by_application_followup_reads_then_writes() {
        let mut s = WorldState::new();
        s.seed(
            "lap/APP1".into(),
            application_entry("APP1", "E001", 1, "create"),
        );
        let cc = LapByApplicationContract;
        let mut ctx = TxContext::new(&s, cc.name());
        cc.execute(
            &mut ctx,
            "validate",
            &["E001".into(), "APP1".into(), Value::Int(1)],
        );
        let rw = ctx.into_rwset();
        assert_eq!(rw.tx_type(), TxType::Update);
        let m = rw.writes[0].value.as_ref().unwrap().as_map().unwrap();
        assert_eq!(m.get("status"), Some(&Value::Str("validate".into())));
        assert_eq!(m.get("employee"), Some(&Value::Str("E001".into())));
    }

    #[test]
    fn query_employee_read_only_in_both_models() {
        let s = WorldState::new();
        let by_emp = LapByEmployeeContract;
        let mut c1 = TxContext::new(&s, by_emp.name());
        by_emp.execute(&mut c1, "queryEmployee", &["E001".into()]);
        assert!(c1.into_rwset().writes.is_empty());

        let by_app = LapByApplicationContract;
        let mut c2 = TxContext::new(&s, by_app.name());
        by_app.execute(&mut c2, "queryEmployee", &["E001".into()]);
        assert!(c2.into_rwset().writes.is_empty());
    }

    #[test]
    fn entry_structure_matches_paper_fields() {
        let v = application_entry("APP1", "E007", 25_000, "validate");
        let m = v.as_map().unwrap();
        for field in ["application", "employee", "loan_type", "amount", "status"] {
            assert!(m.contains_key(field), "missing {field}");
        }
    }
}
