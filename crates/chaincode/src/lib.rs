//! # chaincode
//!
//! The smart contracts of the BlockOptR evaluation (paper §5.1), implemented
//! against `fabric-sim`'s [`Contract`] interface, plus every *optimized
//! variant* the paper derives from BlockOptR's recommendations (§6.2–6.3):
//!
//! | Contract | Module | Optimized variants |
//! |---|---|---|
//! | genChain synthetic | [`genchain`] | — (generic read/write/update/range/delete) |
//! | Supply Chain Management | [`scm`] | process-model-pruned |
//! | Digital Rights Management | [`drm`] | delta-writes; partitioned (two chaincodes) |
//! | Electronic Health Records | [`ehr`] | process-model-pruned |
//! | Digital Voting | [`dv`] | per-voter data model |
//! | Loan Application Process | [`lap`] | per-application data model |
//!
//! All contracts are **deterministic in `(state, args)`** — workload
//! generators bake every random choice (keys, values, nonces) into the
//! arguments, so endorsement re-execution always reproduces the same
//! read-write set.

pub mod drm;
pub mod dv;
pub mod ehr;
pub mod genchain;
pub mod lap;
pub mod registry;
pub mod scm;

pub use drm::{
    DrmContract, DrmDeltaContract, DrmMetaContract, DrmPlayContract, DrmPlayDeltaContract,
};
pub use dv::{DvContract, DvPerVoterContract};
pub use ehr::EhrContract;
pub use genchain::GenChainContract;
pub use lap::{LapByApplicationContract, LapByEmployeeContract};
pub use scm::ScmContract;

pub use fabric_sim::contract::{Contract, ExecStatus, TxContext};
pub use fabric_sim::types::Value;

/// Convenience: string argument accessor with a clear panic message.
/// Contracts are internal to the evaluation; malformed workloads are bugs.
pub(crate) fn arg_str<'a>(args: &'a [Value], i: usize, what: &str) -> &'a str {
    args.get(i)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("argument {i} ({what}) must be a string"))
}

/// Convenience: integer argument accessor.
pub(crate) fn arg_int(args: &[Value], i: usize, what: &str) -> i64 {
    args.get(i)
        .and_then(Value::as_int)
        .unwrap_or_else(|| panic!("argument {i} ({what}) must be an integer"))
}
