//! The contract registry: every chaincode of the evaluation — base
//! contracts *and* their optimized variants — addressable by a stable
//! registry id.
//!
//! A serialized scenario (`workload::scenario::ScenarioSpec`) names its
//! contract set instead of embedding code, exactly as a Fabric channel
//! configuration names installed chaincodes. Rebuilding a workload from
//! JSON resolves those names here; an unknown name is a typed error at the
//! spec layer, never a panic.
//!
//! Registry ids follow `namespace[:variant]` — the plain id installs the
//! base contract, the suffixed id the prepared rewrite (e.g. `scm` vs
//! `scm:pruned`). Ids are what [`Contract::id`] returns, so a bundle's
//! installed set round-trips: `resolve(c.id()).id() == c.id()`.

use crate::{
    DrmContract, DrmDeltaContract, DrmMetaContract, DrmPlayContract, DrmPlayDeltaContract,
    DvContract, DvPerVoterContract, EhrContract, GenChainContract, LapByApplicationContract,
    LapByEmployeeContract, ScmContract,
};
use fabric_sim::contract::Contract;
use std::sync::Arc;

/// Every registered contract id, in registry order.
pub const KNOWN: [&str; 14] = [
    "genchain",
    "scm",
    "scm:pruned",
    "drm",
    "drm:delta",
    "drm-play",
    "drm-play:delta",
    "drm-meta",
    "ehr",
    "ehr:pruned",
    "dv",
    "dv:per-voter",
    "lap:by-employee",
    "lap:by-application",
];

/// Look a contract up by registry id. Returns `None` for unknown ids — the
/// caller owns the error shape (the spec layer maps this to a typed
/// unknown-contract error listing [`KNOWN`]).
pub fn resolve(id: &str) -> Option<Arc<dyn Contract>> {
    Some(match id {
        "genchain" => Arc::new(GenChainContract),
        "scm" => Arc::new(ScmContract::base()),
        "scm:pruned" => Arc::new(ScmContract::pruned()),
        "drm" => Arc::new(DrmContract),
        "drm:delta" => Arc::new(DrmDeltaContract),
        "drm-play" => Arc::new(DrmPlayContract),
        "drm-play:delta" => Arc::new(DrmPlayDeltaContract),
        "drm-meta" => Arc::new(DrmMetaContract),
        "ehr" => Arc::new(EhrContract::base()),
        "ehr:pruned" => Arc::new(EhrContract::pruned()),
        "dv" => Arc::new(DvContract),
        "dv:per-voter" => Arc::new(DvPerVoterContract),
        "lap:by-employee" => Arc::new(LapByEmployeeContract),
        "lap:by-application" => Arc::new(LapByApplicationContract),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_known_id_resolves_to_itself() {
        for id in KNOWN {
            let contract = resolve(id).unwrap_or_else(|| panic!("{id} must resolve"));
            assert_eq!(contract.id(), id, "registry id round-trips");
            assert!(!contract.activities().is_empty());
        }
    }

    #[test]
    fn unknown_ids_resolve_to_none() {
        assert!(resolve("scm:partitioned").is_none());
        assert!(resolve("").is_none());
        assert!(resolve("SCM").is_none(), "ids are case-sensitive");
    }

    #[test]
    fn variant_ids_share_the_base_namespace() {
        let base = resolve("scm").unwrap();
        let pruned = resolve("scm:pruned").unwrap();
        assert_eq!(base.name(), pruned.name(), "same world-state namespace");
        assert_ne!(base.id(), pruned.id(), "distinct identities");
    }
}
