//! Supply Chain Management (SCM) contract.
//!
//! Models the logistics pipeline of paper §5.1.2 / Figures 2–4. Each product
//! key walks the stage machine
//!
//! ```text
//! 1 = created → 2 = ASN pushed → 3 = shipped → 4 = unloaded
//! ```
//!
//! Activities:
//!
//! * `pushASN(product)` — read product, advance stage 1 → 2;
//! * `ship(product)` — read product, advance stage 2 → 3. When invoked out
//!   of order (stage ≠ 2) the **base contract commits a read-only record**
//!   (data provenance: track who deviated), which is exactly the anomalous
//!   branch BlockOptR's process-model-pruning detects in Figure 2;
//! * `queryASN(product)` — read product;
//! * `unload(product)` — read product, advance stage 3 → 4 (same anomalous
//!   read-only behaviour out of order);
//! * `queryProducts(p1, p2, p3)` — read several products (the reporting
//!   activity that the reordering recommendation reschedules);
//! * `updateAuditInfo(product, audit, nonce)` — reads the product and the
//!   audit entry, writes **only** the audit entry (Figure 3's reorderable
//!   activity: write sets disjoint from the product-stage activities).
//!
//! The *pruned* variant (`ScmContract::pruned()`) aborts anomalous
//! `ship`/`unload` during endorsement, implementing the paper's pruning
//! optimization in the smart contract (§3, §6.2).

use crate::{arg_str, Contract, ExecStatus, TxContext, Value};

/// The SCM contract; `pruned` controls the anomalous-path behaviour.
#[derive(Debug, Clone, Copy)]
pub struct ScmContract {
    pruned: bool,
}

impl ScmContract {
    /// Chaincode namespace.
    pub const NAME: &'static str = "scm";

    /// The base contract: anomalous paths commit read-only records.
    pub fn base() -> Self {
        ScmContract { pruned: false }
    }

    /// The pruned contract: anomalous paths abort during endorsement.
    pub fn pruned() -> Self {
        ScmContract { pruned: true }
    }

    /// Whether this instance early-aborts anomalous transactions.
    pub fn is_pruned(&self) -> bool {
        self.pruned
    }

    fn stage(ctx: &mut TxContext<'_>, product: &str) -> i64 {
        ctx.get_state(product).and_then(|v| v.as_int()).unwrap_or(0)
    }

    fn advance(
        &self,
        ctx: &mut TxContext<'_>,
        product: &str,
        expect: i64,
        next: i64,
        what: &str,
    ) -> ExecStatus {
        let stage = Self::stage(ctx, product);
        if stage == expect {
            ctx.put_state(product, Value::Int(next));
            ExecStatus::Ok
        } else if self.pruned {
            ExecStatus::Abort(format!(
                "{what}: product {product} at stage {stage}, need {expect}"
            ))
        } else {
            // Anomalous path: commit the read-only evidence on-chain.
            ExecStatus::Ok
        }
    }
}

impl Contract for ScmContract {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn id(&self) -> &str {
        if self.pruned {
            "scm:pruned"
        } else {
            "scm"
        }
    }

    fn execute(&self, ctx: &mut TxContext<'_>, activity: &str, args: &[Value]) -> ExecStatus {
        match activity {
            "pushASN" => {
                let product = arg_str(args, 0, "product");
                self.advance(ctx, product, 1, 2, "pushASN")
            }
            "ship" => {
                let product = arg_str(args, 0, "product");
                self.advance(ctx, product, 2, 3, "ship")
            }
            "queryASN" => {
                let product = arg_str(args, 0, "product");
                let _ = ctx.get_state(product);
                ExecStatus::Ok
            }
            "unload" => {
                let product = arg_str(args, 0, "product");
                self.advance(ctx, product, 3, 4, "unload")
            }
            "queryProducts" => {
                for arg in args {
                    if let Some(p) = arg.as_str() {
                        let _ = ctx.get_state(p);
                    }
                }
                ExecStatus::Ok
            }
            "updateAuditInfo" => {
                let product = arg_str(args, 0, "product");
                let audit = arg_str(args, 1, "audit");
                let _ = ctx.get_state(product);
                let _ = ctx.get_state(audit);
                let nonce = args.get(2).cloned().unwrap_or(Value::Unit);
                ctx.put_state(audit, Value::Str(format!("audit:{product}:{nonce}")));
                ExecStatus::Ok
            }
            other => panic!("scm: unknown activity {other:?}"),
        }
    }

    fn activities(&self) -> Vec<&'static str> {
        vec![
            "pushASN",
            "ship",
            "queryASN",
            "unload",
            "queryProducts",
            "updateAuditInfo",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::state::WorldState;
    use fabric_sim::types::TxType;

    fn state_with_stage(stage: i64) -> WorldState {
        let mut s = WorldState::new();
        s.seed("scm/P0001".into(), Value::Int(stage));
        s.seed("scm/A0001".into(), Value::Str("audit:init".into()));
        s
    }

    fn run(
        cc: &ScmContract,
        state: &WorldState,
        activity: &str,
        args: &[Value],
    ) -> (ExecStatus, fabric_sim::rwset::ReadWriteSet) {
        let mut ctx = TxContext::new(state, cc.name());
        let st = cc.execute(&mut ctx, activity, args);
        (st, ctx.into_rwset())
    }

    #[test]
    fn happy_path_advances_stages() {
        let cc = ScmContract::base();
        let s = state_with_stage(1);
        let (st, rw) = run(&cc, &s, "pushASN", &["P0001".into()]);
        assert!(st.is_ok());
        assert_eq!(rw.writes[0].value, Some(Value::Int(2)));
        assert_eq!(rw.tx_type(), TxType::Update);
    }

    #[test]
    fn base_contract_commits_anomalous_ship_read_only() {
        let cc = ScmContract::base();
        let s = state_with_stage(1); // ASN not pushed yet
        let (st, rw) = run(&cc, &s, "ship", &["P0001".into()]);
        assert!(st.is_ok(), "base contract records the deviation");
        assert!(rw.writes.is_empty(), "read-only provenance record");
        assert_eq!(rw.tx_type(), TxType::Read);
    }

    #[test]
    fn pruned_contract_aborts_anomalous_ship() {
        let cc = ScmContract::pruned();
        let s = state_with_stage(1);
        let (st, _) = run(&cc, &s, "ship", &["P0001".into()]);
        assert!(!st.is_ok(), "pruning aborts during endorsement");
        assert!(cc.is_pruned());
    }

    #[test]
    fn pruned_contract_allows_ordered_flow() {
        let cc = ScmContract::pruned();
        let s = state_with_stage(2);
        let (st, rw) = run(&cc, &s, "ship", &["P0001".into()]);
        assert!(st.is_ok());
        assert_eq!(rw.writes[0].value, Some(Value::Int(3)));
    }

    #[test]
    fn unload_requires_shipped() {
        let base = ScmContract::base();
        let s = state_with_stage(3);
        let (st, rw) = run(&base, &s, "unload", &["P0001".into()]);
        assert!(st.is_ok());
        assert_eq!(rw.writes[0].value, Some(Value::Int(4)));

        let s2 = state_with_stage(2);
        let (st2, rw2) = run(&base, &s2, "unload", &["P0001".into()]);
        assert!(st2.is_ok());
        assert!(rw2.writes.is_empty(), "unload before ship is read-only");
    }

    #[test]
    fn update_audit_info_writes_only_audit_key() {
        // Figure 3: updateAuditInfo reads the product but writes the audit
        // entry — disjoint write sets make it reorderable w.r.t. pushASN.
        let cc = ScmContract::base();
        let s = state_with_stage(1);
        let (st, rw) = run(
            &cc,
            &s,
            "updateAuditInfo",
            &["P0001".into(), "A0001".into(), Value::Int(7)],
        );
        assert!(st.is_ok());
        let reads = rw.read_keys();
        assert!(reads.contains("scm/P0001") && reads.contains("scm/A0001"));
        assert_eq!(rw.write_keys().len(), 1);
        assert!(rw.write_keys().contains("scm/A0001"));
    }

    #[test]
    fn query_products_reads_all_arguments() {
        let cc = ScmContract::base();
        let mut s = state_with_stage(1);
        s.seed("scm/P0002".into(), Value::Int(2));
        let (st, rw) = run(&cc, &s, "queryProducts", &["P0001".into(), "P0002".into()]);
        assert!(st.is_ok());
        assert_eq!(rw.reads.len(), 2);
        assert!(rw.writes.is_empty());
    }

    #[test]
    fn query_asn_is_single_read() {
        let cc = ScmContract::base();
        let s = state_with_stage(2);
        let (st, rw) = run(&cc, &s, "queryASN", &["P0001".into()]);
        assert!(st.is_ok());
        assert_eq!(rw.reads.len(), 1);
        assert_eq!(rw.tx_type(), TxType::Read);
    }
}
