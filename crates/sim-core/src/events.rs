//! Deterministic event queue.
//!
//! A thin wrapper over a binary heap keyed by `(time, sequence)`. The
//! monotonically increasing sequence number guarantees that events scheduled
//! for the same instant pop in FIFO order, which makes simulation runs
//! reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at `time`. Scheduling in the past is allowed
    /// (the event fires "now"); the clock itself never runs backwards.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = self.now.max(e.time);
            (self.now, e.payload)
        })
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulated clock (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_never_runs_backwards() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "future");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        // An event scheduled in the past fires at the current clock.
        q.schedule(SimTime::from_secs(1), "past");
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2) + SimDuration::from_millis(1), ());
        assert_eq!(
            q.peek_time(),
            Some(SimTime::from_micros(2_001_000)),
            "peek returns scheduled time"
        );
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
