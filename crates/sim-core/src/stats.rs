//! Measurement summaries.
//!
//! * [`Summary`] — count / mean / stddev / min / max / percentiles of a value
//!   series (latencies, block sizes);
//! * [`TimeBuckets`] — event counts bucketed into fixed-width time intervals,
//!   yielding rate series (the paper's `Trdᵢ` / `Frdᵢ` metrics use a
//!   user-configurable interval size `ins`);
//! * [`Histogram`] — fixed-width value histogram for distribution shaping.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Summary statistics of an `f64` series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub stddev: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
    /// Median (0 when empty).
    pub p50: f64,
    /// 95th percentile (0 when empty).
    pub p95: f64,
    /// 99th percentile (0 when empty).
    pub p99: f64,
}

impl Summary {
    /// Summarize a series. The input need not be sorted.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in measurements"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Summary {
            count: n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        }
    }
}

/// Nearest-rank percentile of a pre-sorted series (`p` in `[0,1]`).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p.clamp(0.0, 1.0)) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Event counts bucketed into fixed-width time intervals.
///
/// Bucket `i` covers `[i·width, (i+1)·width)` on the absolute simulated
/// timeline. The paper derives the transaction-rate distribution `Trdᵢ` and
/// failure-rate distribution `Frdᵢ` this way, with a user-configurable
/// interval size (`ins`, default 1 s).
///
/// Only the span between the first and last *occupied* bucket is stored
/// (`first_index` anchors it on the absolute grid), so a sliding-window
/// consumer that [`unrecord`](TimeBuckets::unrecord)s evicted events keeps
/// the series bounded by the window instead of the total elapsed time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeBuckets {
    width: SimDuration,
    /// Absolute index of `counts[0]` (meaningless while `counts` is empty).
    start: usize,
    counts: Vec<u64>,
}

impl TimeBuckets {
    /// Empty bucket series with the given interval width (> 0).
    pub fn new(width: SimDuration) -> Self {
        assert!(width.as_micros() > 0, "bucket width must be positive");
        TimeBuckets {
            width,
            start: 0,
            counts: Vec::new(),
        }
    }

    fn index_of(&self, t: SimTime) -> usize {
        (t.as_micros() / self.width.as_micros()) as usize
    }

    /// Record one event at `t`.
    pub fn record(&mut self, t: SimTime) {
        let idx = self.index_of(t);
        if self.counts.is_empty() {
            self.start = idx;
            self.counts.push(1);
            return;
        }
        if idx < self.start {
            // An event earlier than the current span (commit order does not
            // imply client-timestamp order): grow the series at the front.
            let pad = self.start - idx;
            self.counts.splice(0..0, std::iter::repeat_n(0, pad));
            self.start = idx;
        } else if idx - self.start >= self.counts.len() {
            self.counts.resize(idx - self.start + 1, 0);
        }
        self.counts[idx - self.start] += 1;
    }

    /// Remove one previously [`record`](TimeBuckets::record)ed event at `t`
    /// (sliding-window eviction). Emptied buckets at either end of the span
    /// are trimmed, so the stored series always runs from the first to the
    /// last occupied bucket — exactly what recording only the retained
    /// events would have produced.
    ///
    /// # Panics
    /// Panics if no event is recorded in `t`'s bucket.
    pub fn unrecord(&mut self, t: SimTime) {
        let idx = self.index_of(t);
        assert!(
            idx >= self.start
                && idx - self.start < self.counts.len()
                && self.counts[idx - self.start] > 0,
            "unrecord without a matching record"
        );
        self.counts[idx - self.start] -= 1;
        while self.counts.last() == Some(&0) {
            self.counts.pop();
        }
        let lead = self.counts.iter().take_while(|&&c| c == 0).count();
        if lead > 0 {
            self.counts.drain(..lead);
            self.start += lead;
        }
        if self.counts.is_empty() {
            self.start = 0;
        }
    }

    /// Fold another series recorded on the same absolute grid into this one
    /// (sharded-ingest merge). The result is exactly what recording both
    /// event sets into one series would have produced.
    ///
    /// # Panics
    /// Panics if the bucket widths differ — merging series on different
    /// grids has no meaning.
    pub fn merge(&mut self, other: &TimeBuckets) {
        assert!(
            self.width.as_micros() == other.width.as_micros(),
            "cannot merge TimeBuckets with different widths"
        );
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.start = other.start;
            self.counts = other.counts.clone();
            return;
        }
        let new_start = self.start.min(other.start);
        let new_end = (self.start + self.counts.len()).max(other.start + other.counts.len());
        if new_start < self.start {
            let pad = self.start - new_start;
            self.counts.splice(0..0, std::iter::repeat_n(0, pad));
            self.start = new_start;
        }
        if new_end - self.start > self.counts.len() {
            self.counts.resize(new_end - self.start, 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[other.start + i - self.start] += c;
        }
    }

    /// Raw counts per stored bucket (`counts()[0]` is bucket
    /// [`first_index`](TimeBuckets::first_index) on the absolute grid).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Absolute grid index of the first stored bucket (0 when empty).
    pub fn first_index(&self) -> usize {
        if self.counts.is_empty() {
            0
        } else {
            self.start
        }
    }

    /// Count in stored bucket `i` (0 if beyond the recorded span).
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Events per second in each bucket.
    pub fn rates(&self) -> Vec<f64> {
        let w = self.width.as_secs_f64();
        self.counts.iter().map(|&c| c as f64 / w).collect()
    }

    /// Number of buckets recorded.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Bucket width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Fixed-width value histogram over `[0, width·bins)` with an overflow bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    width: f64,
    bins: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// A histogram with `bins` buckets of the given `width`.
    pub fn new(width: f64, bins: usize) -> Self {
        assert!(width > 0.0 && bins > 0);
        Histogram {
            width,
            bins: vec![0; bins],
            overflow: 0,
        }
    }

    /// Record a non-negative value.
    pub fn record(&mut self, v: f64) {
        let idx = (v.max(0.0) / self.width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Per-bin counts (excluding overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of values beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded values including overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn summary_basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!((s.stddev - 2.0).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&v);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn percentile_of_single_value() {
        assert_eq!(percentile_sorted(&[42.0], 0.0), 42.0);
        assert_eq!(percentile_sorted(&[42.0], 1.0), 42.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn buckets_assign_events_to_intervals() {
        let mut b = TimeBuckets::new(SimDuration::from_secs(1));
        b.record(SimTime::from_millis(100)); // bucket 0
        b.record(SimTime::from_millis(999)); // bucket 0
        b.record(SimTime::from_millis(1_000)); // bucket 1
        b.record(SimTime::from_millis(4_500)); // bucket 4
        assert_eq!(b.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(b.count(0), 2);
        assert_eq!(b.count(99), 0);
        assert_eq!(b.total(), 4);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bucket_rates_divide_by_width() {
        let mut b = TimeBuckets::new(SimDuration::from_millis(500));
        for i in 0..10 {
            b.record(SimTime::from_millis(i * 100)); // 5 events in [0,500), 5 in [500,1000)
        }
        let r = b.rates();
        assert_eq!(r.len(), 2);
        assert!((r[0] - 10.0).abs() < 1e-9, "5 events / 0.5s = 10/s");
        assert!((r[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn buckets_trim_to_the_occupied_span() {
        let mut b = TimeBuckets::new(SimDuration::from_secs(1));
        b.record(SimTime::from_secs(5));
        b.record(SimTime::from_secs(7));
        // Leading empty intervals are never stored.
        assert_eq!(b.first_index(), 5);
        assert_eq!(b.counts(), &[1, 0, 1]);
        // Growing at the front works too (late-arriving early timestamp).
        b.record(SimTime::from_secs(3));
        assert_eq!(b.first_index(), 3);
        assert_eq!(b.counts(), &[1, 0, 1, 0, 1]);
    }

    #[test]
    fn unrecord_reverses_record_and_trims() {
        let mut b = TimeBuckets::new(SimDuration::from_secs(1));
        for s in [2u64, 2, 4, 9] {
            b.record(SimTime::from_secs(s));
        }
        b.unrecord(SimTime::from_secs(2));
        assert_eq!(b.first_index(), 2);
        assert_eq!(b.counts(), &[1, 0, 1, 0, 0, 0, 0, 1]);
        // Evicting the whole leading bucket advances the span.
        b.unrecord(SimTime::from_secs(2));
        assert_eq!(b.first_index(), 4);
        assert_eq!(b.counts(), &[1, 0, 0, 0, 0, 1]);
        // Evicting the newest event trims the tail.
        b.unrecord(SimTime::from_secs(9));
        assert_eq!(b.counts(), &[1]);
        assert_eq!(b.total(), 1);
        b.unrecord(SimTime::from_secs(4));
        assert!(b.is_empty());
        assert_eq!(b.first_index(), 0);
        // The emptied series behaves like a fresh one.
        b.record(SimTime::from_secs(1));
        assert_eq!(b.first_index(), 1);
        assert_eq!(b.counts(), &[1]);
    }

    #[test]
    fn merge_equals_recording_both_event_sets() {
        let evs_a = [2u64, 3, 3, 9];
        let evs_b = [0u64, 4, 11];
        let mut a = TimeBuckets::new(SimDuration::from_secs(1));
        let mut b = TimeBuckets::new(SimDuration::from_secs(1));
        let mut serial = TimeBuckets::new(SimDuration::from_secs(1));
        for &s in &evs_a {
            a.record(SimTime::from_secs(s));
            serial.record(SimTime::from_secs(s));
        }
        for &s in &evs_b {
            b.record(SimTime::from_secs(s));
            serial.record(SimTime::from_secs(s));
        }
        a.merge(&b);
        assert_eq!(a.first_index(), serial.first_index());
        assert_eq!(a.counts(), serial.counts());
        // Merging into an empty series adopts the other side.
        let mut empty = TimeBuckets::new(SimDuration::from_secs(1));
        empty.merge(&serial);
        assert_eq!(empty.counts(), serial.counts());
        serial.merge(&TimeBuckets::new(SimDuration::from_secs(1)));
        assert_eq!(empty.counts(), serial.counts());
    }

    #[test]
    #[should_panic(expected = "cannot merge TimeBuckets with different widths")]
    fn merge_of_mismatched_widths_panics() {
        let mut a = TimeBuckets::new(SimDuration::from_secs(1));
        let b = TimeBuckets::new(SimDuration::from_secs(2));
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "unrecord without a matching record")]
    fn unrecord_of_unrecorded_bucket_panics() {
        let mut b = TimeBuckets::new(SimDuration::from_secs(1));
        b.record(SimTime::from_secs(1));
        b.unrecord(SimTime::from_secs(2));
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let mut h = Histogram::new(1.0, 3);
        for v in [0.1, 0.9, 1.5, 2.9, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.bins(), &[2, 1, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_clamps_negative_values_to_zero_bin() {
        let mut h = Histogram::new(1.0, 2);
        h.record(-5.0);
        assert_eq!(h.bins(), &[1, 0]);
    }
}
