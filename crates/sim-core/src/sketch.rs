//! Deterministic, mergeable quantile sketch.
//!
//! [`QuantileSketch`] summarizes an `f64` series in bounded space while
//! answering rank/quantile queries with a *certified* error bound. It is the
//! storage format for latency distributions on the streaming hot path:
//! month-long runs and `--seeds 100` grids hold O(sketch) instead of one
//! `f64` per observation.
//!
//! Three properties drive the design:
//!
//! * **Deterministic.** No randomness anywhere (classic KLL compacts a random
//!   half; we alternate parity with a per-level compaction counter instead),
//!   so the same insert/merge sequence always produces the same bytes —
//!   required by the repo-wide replay guarantees and the detlint gate.
//! * **Exact below [`EXACT_CAP`].** Until more than `EXACT_CAP` values have
//!   been inserted the sketch is a plain buffer in insertion order and
//!   [`summary`](QuantileSketch::summary) returns *exactly*
//!   [`Summary::of`] of that buffer — bit-for-bit, so golden-pinned short
//!   runs (≤ 800 transactions) do not move when a `Vec<f64>` is replaced by
//!   a sketch.
//! * **Mergeable.** [`merge`](QuantileSketch::merge) folds two sketches into
//!   one whose error bound is the sum of the inputs' bounds. Two exact
//!   sketches whose combined size still fits `EXACT_CAP` merge to an exact
//!   sketch (self's values followed by other's).
//!
//! # Error bound
//!
//! The compacted representation is a KLL-style level hierarchy: level `l`
//! holds items of weight `2^l`. When a level reaches [`LEVEL_CAP`] items its
//! buffer is sorted and every other item (alternating the starting parity
//! per compaction) is promoted to the next level with doubled weight.
//! One compaction at level `l` perturbs any rank query by at most `2^l`,
//! so the worst-case rank error of every quantile answer is
//!
//! ```text
//! max_rank_error = Σ_l compactions(l) · 2^l
//! ```
//!
//! which the sketch tracks exactly and reports via
//! [`max_rank_error`](QuantileSketch::max_rank_error). A level fills after
//! `LEVEL_CAP` inserts of weight `2^l`, so level `l` compacts about
//! `n / (2^l · LEVEL_CAP)` times and the bound telescopes to
//! `max_rank_error ≤ 2·L·n / LEVEL_CAP` where `L ≤ log2(n / LEVEL_CAP) + 2`
//! is the number of occupied levels — i.e. a relative rank error of
//! `ε = 2·L / LEVEL_CAP` (about 3 % at n = 10⁶ with the default
//! `LEVEL_CAP = 256`). The accuracy proptests assert the *certified* bound,
//! not the asymptotic one.

use crate::stats::{percentile_sorted, Summary};
use serde::{Deserialize, Serialize};

/// Inserted values are kept verbatim (exact mode) until the count exceeds
/// this cap. Deliberately larger than the 800-transaction golden runs so the
/// pinned fingerprints stay in exact mode.
pub const EXACT_CAP: usize = 1024;

/// Per-level buffer capacity of the compacted representation.
pub const LEVEL_CAP: usize = 256;

/// A deterministic, serializable, mergeable quantile sketch (KLL-style with
/// alternating-parity compaction and a small-n exact mode). See the module
/// docs for the error bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Exact-mode buffer in insertion order; non-empty only while `levels`
    /// is empty (the sketch "spills" at most once, never goes back).
    exact: Vec<f64>,
    /// `levels[l]` holds items of weight `2^l`, unsorted between compactions.
    levels: Vec<Vec<f64>>,
    /// Number of compactions performed per level; parity picks which half
    /// survives, and the running sum certifies the rank-error bound.
    compactions: Vec<u64>,
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            exact: Vec::new(),
            levels: Vec::new(),
            compactions: Vec::new(),
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Number of values inserted (including values since compacted away).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no values have been inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether the sketch still stores every inserted value verbatim (all
    /// queries are exact; `summary()` bit-matches [`Summary::of`]).
    pub fn is_exact(&self) -> bool {
        self.levels.is_empty()
    }

    /// Certified worst-case rank error of any quantile answer:
    /// `Σ_l compactions(l) · 2^l`. Zero in exact mode.
    pub fn max_rank_error(&self) -> u64 {
        self.compactions
            .iter()
            .enumerate()
            .map(|(l, &c)| c * (1u64 << l))
            .sum()
    }

    /// Bytes of heap state retained by the sketch (the capacity the buffers
    /// actually hold, not the logical length).
    pub fn footprint_bytes(&self) -> usize {
        let f64s = self.exact.capacity()
            + self
                .levels
                .iter()
                .map(|level| level.capacity())
                .sum::<usize>();
        f64s * std::mem::size_of::<f64>()
            + self.levels.capacity() * std::mem::size_of::<Vec<f64>>()
            + self.compactions.capacity() * std::mem::size_of::<u64>()
    }

    /// Insert one observation. NaNs are rejected by debug assertion (the
    /// measurement pipeline never produces them).
    pub fn insert(&mut self, v: f64) {
        debug_assert!(!v.is_nan(), "no NaNs in measurements");
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        if self.count == 1 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        if self.is_exact() {
            self.exact.push(v);
            if self.exact.len() > EXACT_CAP {
                self.spill();
            }
        } else {
            self.level_mut(0).push(v);
            self.compact_overflowing();
        }
    }

    /// Fold `other` into `self`. The result summarizes the concatenation of
    /// both inputs; its certified rank-error bound is at most the sum of the
    /// inputs' bounds plus the compactions the merge itself performs (all
    /// reflected in [`max_rank_error`](QuantileSketch::max_rank_error)).
    /// Exact + exact stays exact when the combined size fits
    /// [`EXACT_CAP`] (self's values followed by other's).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.count += other.count;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        if self.is_exact() && other.is_exact() && self.exact.len() + other.exact.len() <= EXACT_CAP
        {
            self.exact.extend_from_slice(&other.exact);
            return;
        }
        if !self.is_exact() || !other.is_exact() {
            // At least one side already spilled: the merge result is
            // compacted regardless of combined size.
            self.spill();
        }
        self.level_mut(0).extend_from_slice(&other.exact);
        for (l, level) in other.levels.iter().enumerate() {
            self.level_mut(l).extend_from_slice(level);
        }
        for (l, &c) in other.compactions.iter().enumerate() {
            self.level_mut(l); // ensure the counter slot exists
            self.compactions[l] += c;
        }
        self.compact_overflowing();
    }

    /// The quantile at `p ∈ [0, 1]` (nearest-rank). Exact below
    /// [`EXACT_CAP`]; otherwise within
    /// [`max_rank_error`](QuantileSketch::max_rank_error) ranks of the true
    /// answer. Returns 0 for an empty sketch (matching [`Summary::of`]).
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.is_exact() {
            let mut sorted = self.exact.clone();
            sorted.sort_by(f64::total_cmp);
            return percentile_sorted(&sorted, p);
        }
        let mut weighted: Vec<(f64, u64)> = Vec::new();
        weighted.extend(self.exact.iter().map(|&v| (v, 1)));
        for (l, level) in self.levels.iter().enumerate() {
            let w = 1u64 << l;
            weighted.extend(level.iter().map(|&v| (v, w)));
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for &(v, w) in &weighted {
            seen += w;
            if seen >= target {
                return v;
            }
        }
        // Unreachable (cumulative weight reaches `total ≥ target`), but the
        // last stored value is the only sensible answer if it ever were.
        self.max
    }

    /// Summary statistics of everything inserted. In exact mode this is
    /// bit-for-bit [`Summary::of`] over the values in insertion order; in
    /// compacted mode the moments are exact (streamed sums) and the
    /// percentiles carry the certified rank-error bound.
    pub fn summary(&self) -> Summary {
        if self.is_exact() {
            return Summary::of(&self.exact);
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        let var = (self.sum_sq / n - mean * mean).max(0.0);
        Summary {
            count: self.count as usize,
            mean,
            stddev: var.sqrt(),
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Move the exact buffer into level 0 (one-way transition out of exact
    /// mode) and restore the level-capacity invariant.
    fn spill(&mut self) {
        if self.exact.is_empty() {
            return;
        }
        let spilled = std::mem::take(&mut self.exact);
        self.level_mut(0).extend(spilled);
        self.compact_overflowing();
    }

    fn level_mut(&mut self, l: usize) -> &mut Vec<f64> {
        while self.levels.len() <= l {
            self.levels.push(Vec::new());
            self.compactions.push(0);
        }
        &mut self.levels[l]
    }

    /// Compact every level holding ≥ [`LEVEL_CAP`] items, bottom-up. Each
    /// compaction sorts the buffer, promotes every other item (starting
    /// parity alternates per level via the compaction counter) to the next
    /// level with doubled weight, and empties the buffer.
    fn compact_overflowing(&mut self) {
        let mut l = 0;
        while l < self.levels.len() {
            if self.levels[l].len() >= LEVEL_CAP {
                let mut buf = std::mem::take(&mut self.levels[l]);
                buf.sort_by(f64::total_cmp);
                let parity = (self.compactions[l] % 2) as usize;
                self.compactions[l] += 1;
                let survivors: Vec<f64> = buf.iter().skip(parity).step_by(2).copied().collect();
                self.level_mut(l + 1).extend(survivors);
            }
            l += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_rank_of(values: &[f64], q: f64) -> (usize, usize) {
        // Ranks (1-based) of values ≤ q and < q: the answer is acceptable if
        // the target rank falls within [lo - err, hi + err].
        let below = values.iter().filter(|&&v| v < q).count();
        let at_or_below = values.iter().filter(|&&v| v <= q).count();
        (below + 1, at_or_below)
    }

    #[test]
    fn empty_sketch_matches_empty_summary() {
        let s = QuantileSketch::new();
        assert_eq!(
            format!("{:?}", s.summary()),
            format!("{:?}", Summary::of(&[]))
        );
        assert_eq!(s.quantile(0.5).to_bits(), 0.0f64.to_bits());
        assert!(s.is_exact());
        assert_eq!(s.max_rank_error(), 0);
    }

    #[test]
    fn exact_mode_bit_matches_summary_of() {
        let values: Vec<f64> = (0..800).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let mut s = QuantileSketch::new();
        for &v in &values {
            s.insert(v);
        }
        assert!(s.is_exact(), "800 < EXACT_CAP must stay exact");
        let direct = Summary::of(&values);
        let sketched = s.summary();
        assert_eq!(format!("{direct:?}"), format!("{sketched:?}"));
        assert_eq!(direct.mean.to_bits(), sketched.mean.to_bits());
        assert_eq!(direct.p99.to_bits(), sketched.p99.to_bits());
    }

    #[test]
    fn exact_merge_is_concatenation() {
        let a: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let b: Vec<f64> = (300..500).map(|i| i as f64).collect();
        let mut sa = QuantileSketch::new();
        for &v in &a {
            sa.insert(v);
        }
        let mut sb = QuantileSketch::new();
        for &v in &b {
            sb.insert(v);
        }
        sa.merge(&sb);
        assert!(sa.is_exact());
        let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            format!("{:?}", sa.summary()),
            format!("{:?}", Summary::of(&concat))
        );
    }

    #[test]
    fn spill_happens_once_past_the_cap() {
        let mut s = QuantileSketch::new();
        for i in 0..(EXACT_CAP + 1) {
            s.insert(i as f64);
        }
        assert!(!s.is_exact());
        assert_eq!(s.count(), (EXACT_CAP + 1) as u64);
        assert!(s.max_rank_error() > 0);
    }

    #[test]
    fn compacted_quantiles_stay_within_certified_bound() {
        let n = 50_000usize;
        let values: Vec<f64> = (0..n).map(|i| ((i * 2_654_435_761) % n) as f64).collect();
        let mut s = QuantileSketch::new();
        for &v in &values {
            s.insert(v);
        }
        let err = s.max_rank_error() as usize;
        assert!(err > 0 && err < n / 10, "bound should be nontrivial: {err}");
        for &p in &[0.5, 0.95, 0.99] {
            let q = s.quantile(p);
            let target = ((p * n as f64).ceil() as usize).clamp(1, n);
            let (lo, hi) = exact_rank_of(&values, q);
            assert!(
                lo.saturating_sub(err) <= target && target <= hi + err,
                "p{p}: answer rank [{lo},{hi}] ± {err} misses target {target}"
            );
        }
    }

    #[test]
    fn merge_of_compacted_sketches_sums_the_bound() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for i in 0..5_000 {
            a.insert(i as f64);
            b.insert((i + 5_000) as f64);
        }
        let bound_before = a.max_rank_error() + b.max_rank_error();
        a.merge(&b);
        assert_eq!(a.count(), 10_000);
        assert!(a.max_rank_error() >= bound_before);
        let med = a.quantile(0.5);
        assert!(
            (med - 5_000.0).abs() < 2.0 * a.max_rank_error() as f64,
            "median {med} too far from 5000"
        );
        let s = a.summary();
        assert!((s.mean - 4_999.5).abs() < 1e-6, "moments are exact");
        assert_eq!(s.min.to_bits(), 0.0f64.to_bits());
        assert_eq!(s.max.to_bits(), 9_999.0f64.to_bits());
    }

    #[test]
    fn serde_round_trip_preserves_bytes() {
        let mut s = QuantileSketch::new();
        for i in 0..3_000 {
            s.insert((i % 97) as f64 * 0.5);
        }
        let json = serde_json::to_string(&s).expect("serialize");
        let back: QuantileSketch = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(format!("{s:?}"), format!("{back:?}"));
        assert_eq!(s.quantile(0.95).to_bits(), back.quantile(0.95).to_bits());
    }
}
