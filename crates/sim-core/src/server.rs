//! Analytic FIFO queueing servers.
//!
//! The simulator does not model peers as explicit processes; instead each
//! resource (an endorsing peer, the ordering service, the validation stage of
//! a peer, a client worker) is a *work-conserving FIFO server*: a job arriving
//! at time `a` with service demand `s` starts at `max(a, server_free)` and
//! finishes `s` later. This is exact for FIFO queues with deterministic
//! service order and keeps the whole pipeline O(1) per job.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A single work-conserving FIFO server.
#[derive(Debug, Clone, Default)]
pub struct QueueServer {
    free_at: SimTime,
    busy: SimDuration,
    jobs: u64,
}

impl QueueServer {
    /// A new idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit a job arriving at `arrival` with service demand `service`.
    /// Returns `(start, completion)`.
    pub fn submit(&mut self, arrival: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let start = arrival.max(self.free_at);
        let done = start + service;
        self.free_at = done;
        self.busy += service;
        self.jobs += 1;
        (start, done)
    }

    /// Earliest instant at which the server is idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total service time delivered so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }

    /// Utilization over the window `[0, horizon]` (clamped to `[0, 1]`).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.as_micros() == 0 {
            return 0.0;
        }
        (self.busy.as_micros() as f64 / horizon.as_micros() as f64).min(1.0)
    }
}

/// A pool of `k` identical FIFO servers with a shared queue
/// (jobs go to whichever server frees up first — an M/G/k-style discipline).
#[derive(Debug, Clone)]
pub struct MultiServer {
    // Min-heap of per-server next-free instants.
    free_at: BinaryHeap<Reverse<SimTime>>,
    servers: usize,
    busy: SimDuration,
    jobs: u64,
}

impl MultiServer {
    /// A pool of `servers ≥ 1` idle servers.
    pub fn new(servers: usize) -> Self {
        assert!(servers >= 1, "need at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        MultiServer {
            free_at,
            servers,
            busy: SimDuration::ZERO,
            jobs: 0,
        }
    }

    /// Submit a job arriving at `arrival` with demand `service`;
    /// returns `(start, completion)` on the first server to free up.
    pub fn submit(&mut self, arrival: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let Reverse(earliest) = self.free_at.pop().expect("pool is never empty");
        let start = arrival.max(earliest);
        let done = start + service;
        self.free_at.push(Reverse(done));
        self.busy += service;
        self.jobs += 1;
        (start, done)
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Total service time delivered across the pool.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }

    /// Pool utilization over `[0, horizon]` (fraction of aggregate capacity).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.as_micros() == 0 {
            return 0.0;
        }
        let capacity = horizon.as_micros() as f64 * self.servers as f64;
        (self.busy.as_micros() as f64 / capacity).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = QueueServer::new();
        let (start, done) = s.submit(SimTime::from_millis(5), MS(10));
        assert_eq!(start, SimTime::from_millis(5));
        assert_eq!(done, SimTime::from_millis(15));
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = QueueServer::new();
        s.submit(SimTime::ZERO, MS(10));
        let (start, done) = s.submit(SimTime::from_millis(2), MS(10));
        assert_eq!(start, SimTime::from_millis(10), "waits for first job");
        assert_eq!(done, SimTime::from_millis(20));
    }

    #[test]
    fn gap_leaves_server_idle() {
        let mut s = QueueServer::new();
        s.submit(SimTime::ZERO, MS(1));
        let (start, _) = s.submit(SimTime::from_millis(100), MS(1));
        assert_eq!(start, SimTime::from_millis(100));
        assert_eq!(s.busy_time(), MS(2));
        assert_eq!(s.jobs_served(), 2);
    }

    #[test]
    fn utilization_is_busy_over_horizon() {
        let mut s = QueueServer::new();
        s.submit(SimTime::ZERO, MS(30));
        assert!((s.utilization(SimTime::from_millis(100)) - 0.3).abs() < 1e-9);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn multi_server_runs_jobs_in_parallel() {
        let mut m = MultiServer::new(2);
        let (_, d1) = m.submit(SimTime::ZERO, MS(10));
        let (_, d2) = m.submit(SimTime::ZERO, MS(10));
        let (_, d3) = m.submit(SimTime::ZERO, MS(10));
        assert_eq!(d1, SimTime::from_millis(10));
        assert_eq!(d2, SimTime::from_millis(10), "second server in parallel");
        assert_eq!(d3, SimTime::from_millis(20), "third job queues");
    }

    #[test]
    fn multi_server_prefers_earliest_free() {
        let mut m = MultiServer::new(2);
        m.submit(SimTime::ZERO, MS(100)); // server A busy till 100
        m.submit(SimTime::ZERO, MS(10)); // server B busy till 10
        let (start, _) = m.submit(SimTime::from_millis(20), MS(5));
        assert_eq!(start, SimTime::from_millis(20), "server B is free again");
    }

    #[test]
    fn multi_server_utilization_accounts_for_pool_size() {
        let mut m = MultiServer::new(4);
        m.submit(SimTime::ZERO, MS(100));
        assert!((m.utilization(SimTime::from_millis(100)) - 0.25).abs() < 1e-9);
        assert_eq!(m.servers(), 4);
        assert_eq!(m.jobs_served(), 1);
        assert_eq!(m.busy_time(), MS(100));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = MultiServer::new(0);
    }
}
