//! Deterministic random-number streams.
//!
//! Every component of the simulator (each client, each workload generator)
//! derives its own [`SimRng`] stream from a root seed, so adding a new
//! consumer never perturbs the draws of existing ones — runs stay comparable
//! across configurations that only differ in one knob.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable RNG stream.
///
/// Thin wrapper over [`StdRng`] adding stream derivation and a couple of
/// convenience draws used throughout the workload layer.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// A root stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// The derivation is a SplitMix64 mix of the parent seed and label, so two
    /// children with different labels are decorrelated, and the same
    /// `(seed, label)` pair always yields the same stream.
    pub fn derive(root_seed: u64, label: u64) -> Self {
        let mut z = root_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(label.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_are_decorrelated() {
        let mut a = SimRng::derive(42, 0);
        let mut b = SimRng::derive(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "derived streams should not collide");
    }

    #[test]
    fn derive_is_deterministic() {
        let mut a = SimRng::derive(7, 9);
        let mut b = SimRng::derive(7, 9);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_midpoint_is_roughly_fair() {
        let mut r = SimRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.chance(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
