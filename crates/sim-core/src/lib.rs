//! # sim-core
//!
//! A small, deterministic discrete-event simulation (DES) toolkit used by the
//! Fabric network simulator (`fabric-sim`).
//!
//! The crate provides:
//!
//! * [`time`] — a microsecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]);
//! * [`events`] — a deterministic event queue with stable FIFO tie-breaking;
//! * [`des`] — the typed DES engine: targeted events (`{ at, kind, subject }`),
//!   kind-priority-then-sequence tie-breaking, cancellable timers, and a
//!   handler-driven runner (pop → advance clock → dispatch → schedule);
//! * [`rng`] — seedable random-number streams so that every simulation run is
//!   reproducible bit-for-bit;
//! * [`dist`] — the samplers the paper's workload generator needs (Zipfian key
//!   skew, exponential inter-arrival, discrete weighted choice);
//! * [`server`] — analytic FIFO queueing servers used to model endorsers, the
//!   ordering service, validators and clients;
//! * [`stats`] — summaries (mean / percentiles), time-bucketed rate series and
//!   fixed-width histograms used by the metric-derivation layer;
//! * [`sketch`] — a deterministic, serializable, mergeable quantile sketch
//!   (KLL-style, certified rank-error bound, small-n exact mode) so latency
//!   distributions from long runs are O(sketch) instead of O(observations);
//! * [`pool`] — a scoped-thread worker pool with deterministic result
//!   ordering, used to fan repeated simulation runs (multi-seed plan
//!   execution, experiment grids) across cores.
//!
//! Nothing here is blockchain specific; `fabric-sim` composes these pieces
//! into the execute-order-validate pipeline.

pub mod des;
pub mod dist;
pub mod events;
pub mod pool;
pub mod rng;
pub mod server;
pub mod sketch;
pub mod stats;
pub mod time;

pub use des::{DesQueue, Event, EventKind, Handler, TimerId};
pub use dist::{DiscreteWeighted, Exponential, Zipf};
pub use events::EventQueue;
pub use pool::ThreadPool;
pub use rng::SimRng;
pub use server::{MultiServer, QueueServer};
pub use sketch::QuantileSketch;
pub use stats::{Summary, TimeBuckets};
pub use time::{SimDuration, SimTime};
