//! A small scoped-thread worker pool with deterministic result ordering.
//!
//! Every repeated-simulation path in the workspace (multi-seed plan
//! execution, the experiment grids, equivalence sweeps) fans out
//! *independent, deterministic* jobs: run a simulation for one
//! `(bundle, config, seed)` triple and collect its report. [`ThreadPool`]
//! covers exactly that shape with nothing but `std::thread`:
//!
//! * [`ThreadPool::map`] consumes a `Vec` of jobs and returns one result per
//!   job **in job order**, no matter how many worker threads ran them or
//!   how they interleaved — so a parallel run is byte-identical to a serial
//!   one as long as each job is itself deterministic;
//! * work is distributed by an atomic cursor (work stealing degenerates to
//!   FIFO hand-out), so a long job never blocks the queue behind it;
//! * a panicking job propagates the panic to the caller after all workers
//!   have drained (the guarantee `std::thread::scope` provides).
//!
//! The pool is deliberately *not* a global: each call site decides its
//! parallelism, typically via [`default_threads`], which honours the
//! `BLOCKOPTR_THREADS` environment variable (the CI matrix runs the test
//! suite under `BLOCKOPTR_THREADS=1` and `=4` to flush out accidental
//! order dependence) and otherwise uses the machine's available
//! parallelism.
//!
//! ```
//! use sim_core::pool::ThreadPool;
//!
//! let squares = ThreadPool::new(4).map((0..100).collect(), |i: u64| i * i);
//! assert_eq!(squares[7], 49, "results keep job order");
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parse a `BLOCKOPTR_THREADS`-style override: a positive integer enables
/// that many workers; anything else (absent, empty, malformed, zero) means
/// "no override".
fn parse_threads(spec: Option<&str>) -> Option<usize> {
    spec.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The machine's available parallelism (1 when it cannot be determined).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The workspace-wide default worker count: the `BLOCKOPTR_THREADS`
/// environment variable when it holds a positive integer, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    let env = std::env::var("BLOCKOPTR_THREADS").ok();
    parse_threads(env.as_deref()).unwrap_or_else(hardware_threads)
}

/// A fixed-width scoped worker pool. Cheap to build (no threads are kept
/// alive between calls); copyable configuration, not a handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    /// A pool sized by [`default_threads`].
    fn default() -> Self {
        ThreadPool::new(default_threads())
    }
}

impl ThreadPool {
    /// A pool running `threads` workers (clamped to at least 1; one worker
    /// means the caller's thread runs every job serially).
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over every task and return the results **in task order**.
    ///
    /// With one worker (or at most one task) everything runs on the calling
    /// thread with zero synchronization; otherwise `min(threads, tasks)`
    /// scoped workers pull tasks from an atomic cursor. A panic inside `f`
    /// is re-raised here once all workers have stopped.
    pub fn map<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = tasks.len();
        if self.threads <= 1 || n <= 1 {
            return tasks.into_iter().map(f).collect();
        }

        // Jobs are claimed exactly once via the cursor; slots are written
        // exactly once by whichever worker ran the job. Both vectors are
        // indexed by job position, which is what makes the output ordering
        // independent of scheduling.
        let jobs: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let f = &f;

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = jobs[i]
                        .lock()
                        .expect("job mutexes are never poisoned before the claim")
                        .take()
                        .expect("the cursor hands each job out once");
                    let out = f(task);
                    *slots[i].lock().expect("slot mutex") = Some(out);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot mutex")
                    .expect("every job ran to completion")
            })
            .collect()
    }
}

/// Convenience: [`ThreadPool::map`] with an explicit worker count.
pub fn map<T, R, F>(threads: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    ThreadPool::new(threads).map(tasks, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_keep_task_order() {
        for threads in [1, 2, 3, 8, 64] {
            let out = ThreadPool::new(threads).map((0..257u64).collect(), |i| i * 3);
            assert_eq!(out.len(), 257);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as u64 * 3, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let work = |i: u64| -> (u64, String) {
            // A job with some allocation and data dependence on the input.
            let mut acc = i;
            for k in 0..100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (acc, format!("job-{i}"))
        };
        let serial = ThreadPool::new(1).map((0..64).collect(), work);
        let parallel = ThreadPool::new(4).map((0..64).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = ThreadPool::new(8).map((0..100usize).collect(), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = ThreadPool::new(16).map(vec![1, 2], |i: i32| i + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_and_single_task_short_circuit() {
        let none: Vec<i32> = ThreadPool::new(4).map(Vec::<i32>::new(), |i| i);
        assert!(none.is_empty());
        assert_eq!(ThreadPool::new(4).map(vec![9], |i: i32| i * 2), vec![18]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(vec![1, 2, 3], |i: i32| i), vec![1, 2, 3]);
    }

    #[test]
    fn free_function_mirrors_pool() {
        assert_eq!(map(3, (0..10).collect(), |i: u32| i + 1)[9], 10);
    }

    #[test]
    fn thread_spec_parsing() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("abc")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 12 ")), Some(12));
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = ThreadPool::new(4).map((0..32).collect(), |i: u32| {
            if i == 17 {
                panic!("boom");
            }
            i
        });
    }
}
