//! Samplers for workload generation.
//!
//! * [`Zipf`] — Zipfian ranks for key-distribution skew (Table 2's
//!   `key distribution skew` control variable);
//! * [`Exponential`] — inter-arrival jitter for open-loop clients;
//! * [`DiscreteWeighted`] — weighted activity / endorser selection (Table 2's
//!   `transaction dist skew` and `endorser dist skew`).

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Zipfian sampler over ranks `0..n` with exponent `s`.
///
/// `s = 0` degenerates to the uniform distribution; larger exponents
/// concentrate mass on low ranks (hot keys). Sampling is inverse-CDF over a
/// precomputed cumulative table — O(log n) per draw, exact and deterministic.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaNs"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Exponential duration sampler with the given mean.
///
/// Used to jitter client inter-arrival times around the configured send rate
/// (an open-loop Poisson arrival process, like Caliper's fixed-rate driver
/// with stochastic spacing).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean_micros: f64,
}

impl Exponential {
    /// Sampler with the given mean duration.
    pub fn with_mean(mean: SimDuration) -> Self {
        Exponential {
            mean_micros: mean.as_micros() as f64,
        }
    }

    /// Draw a duration (clamped to ≥ 1 µs so the event loop always advances).
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
        let us = -self.mean_micros * u.ln();
        SimDuration::from_micros(us.max(1.0).round() as u64)
    }
}

/// Discrete distribution over `0..weights.len()` proportional to `weights`.
#[derive(Debug, Clone)]
pub struct DiscreteWeighted {
    cdf: Vec<f64>,
}

impl DiscreteWeighted {
    /// Build from non-negative weights (at least one must be positive).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mut acc = 0.0;
        let mut cdf = Vec::with_capacity(weights.len());
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        DiscreteWeighted { cdf }
    }

    /// Skewed distribution where index 0 receives `hot_share` of the mass and
    /// the rest share the remainder evenly. `hot_share` in `[0,1]`; with
    /// `n == 1` all mass is on index 0. This models the paper's
    /// "transaction dist skew: 70%" (one organization invokes 70 % of txs).
    pub fn hot_one(n: usize, hot_share: f64) -> Self {
        assert!(n >= 1);
        let hot = hot_share.clamp(0.0, 1.0);
        if n == 1 {
            return DiscreteWeighted::new(&[1.0]);
        }
        let rest = (1.0 - hot) / (n as f64 - 1.0);
        let mut w = vec![rest; n];
        w[0] = hot;
        DiscreteWeighted::new(&w)
    }

    /// Draw an index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaNs"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_histogram(z: &Zipf, n: usize, draws: usize) -> Vec<usize> {
        let mut rng = SimRng::seed_from_u64(7);
        let mut hist = vec![0usize; n];
        for _ in 0..draws {
            hist[z.sample(&mut rng)] += 1;
        }
        hist
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let hist = draw_histogram(&z, 10, 100_000);
        for &h in &hist {
            assert!((8_000..12_000).contains(&h), "bucket {h} not ~10k");
        }
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let hist = draw_histogram(&z, 100, 100_000);
        assert!(hist[0] > hist[10], "rank 0 should dominate rank 10");
        assert!(hist[0] > 10_000, "rank 0 should hold >10% of mass");
    }

    #[test]
    fn zipf_heavy_skew_concentrates_mass() {
        let z = Zipf::new(100, 2.0);
        let hist = draw_histogram(&z, 100, 100_000);
        assert!(
            hist[0] > 55_000,
            "s=2 puts >55% on the top key: {}",
            hist[0]
        );
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.5);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let e = Exponential::with_mean(SimDuration::from_millis(10));
        let mut rng = SimRng::seed_from_u64(11);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| e.sample(&mut rng).as_micros()).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (9_000.0..11_000.0).contains(&mean),
            "mean {mean}µs not ≈10ms"
        );
    }

    #[test]
    fn exponential_never_returns_zero() {
        let e = Exponential::with_mean(SimDuration::from_micros(1));
        let mut rng = SimRng::seed_from_u64(13);
        for _ in 0..1000 {
            assert!(e.sample(&mut rng).as_micros() >= 1);
        }
    }

    #[test]
    fn weighted_respects_weights() {
        let d = DiscreteWeighted::new(&[8.0, 1.0, 1.0]);
        let mut rng = SimRng::seed_from_u64(17);
        let mut hist = [0usize; 3];
        for _ in 0..100_000 {
            hist[d.sample(&mut rng)] += 1;
        }
        assert!(hist[0] > 75_000, "index 0 should get ~80%: {}", hist[0]);
    }

    #[test]
    fn weighted_zero_weight_never_drawn() {
        let d = DiscreteWeighted::new(&[1.0, 0.0, 1.0]);
        let mut rng = SimRng::seed_from_u64(19);
        for _ in 0..10_000 {
            assert_ne!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn hot_one_assigns_requested_share() {
        let d = DiscreteWeighted::hot_one(4, 0.7);
        let mut rng = SimRng::seed_from_u64(23);
        let hits = (0..100_000).filter(|_| d.sample(&mut rng) == 0).count();
        assert!((68_000..72_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn hot_one_single_org() {
        let d = DiscreteWeighted::hot_one(1, 0.7);
        let mut rng = SimRng::seed_from_u64(29);
        assert_eq!(d.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn weighted_rejects_all_zero() {
        let _ = DiscreteWeighted::new(&[0.0, 0.0]);
    }
}
