//! Simulated time.
//!
//! All simulation timestamps are microseconds since the start of the run,
//! stored in a `u64`. Using integers (instead of `f64` seconds) keeps event
//! ordering exact and the whole simulation deterministic across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future (callers treat clock skew as zero elapsed time).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest microsecond).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Length in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by an integer factor.
    // why: `Mul<u64>` would also invite `Mul<f64>`, whose rounding is the
    // deliberate, documented job of `mul_f64`; an inherent method keeps the
    // integer and float paths visibly distinct at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }

    /// Scale by a float factor (rounded), saturating at zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(((self.0 as f64) * factor).max(0.0).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn arithmetic_is_saturating_on_subtraction() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b - a, SimDuration::from_secs(2));
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(250);
        t += SimDuration::from_millis(250);
        assert_eq!(t, SimTime::from_millis(500));
    }

    #[test]
    fn float_scaling_rounds_to_microseconds() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_micros(15_000));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
        assert_eq!(d.mul(3), SimDuration::from_millis(30));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(1).to_string(), "0.000001s");
    }

    #[test]
    fn min_max_select_correct_instant() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
