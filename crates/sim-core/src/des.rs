//! The discrete-event simulation core.
//!
//! [`events::EventQueue`](crate::events::EventQueue) is a plain timed queue
//! with FIFO tie-breaking over an opaque payload; this module is the typed
//! engine built on the same idea, in the style of a classic DES runner:
//! pop the next event → advance the clock → dispatch to a handler → the
//! handler schedules follow-up events. It adds the three things a
//! multi-phase pipeline simulation needs:
//!
//! * **Targeted events** — [`Event`]`{ at, kind, subject }`: a timestamp, a
//!   typed phase kind (what to do), and a subject (which entity to do it
//!   to). Handlers dispatch on the kind and index state by the subject.
//! * **Deterministic kind-aware tie-breaking** — events at the same instant
//!   pop ordered by [`EventKind::priority`] first and schedule order
//!   (sequence number) second. Within one kind the FIFO guarantee of the
//!   plain queue is preserved; across kinds the priority pins a documented
//!   pipeline order instead of leaving it to incidental scheduling order.
//! * **Cancellable timers** — [`DesQueue::schedule_timer`] returns a
//!   [`TimerId`]; [`DesQueue::cancel`] guarantees the timer never fires.
//!   Cancellation is lazy (a tombstone set), so it is O(1) and the heap is
//!   never rebuilt. This is what lets a block cutter race a size-triggered
//!   cut against a timeout and simply disarm the loser.
//!
//! The runner ([`run`]) drives a [`Handler`] to quiescence: when the queue
//! drains it offers the handler one `on_idle` callback (end-of-run flushes
//! live there); if that schedules nothing, the run is over. The total
//! number of dispatched events is available from [`DesQueue::dispatched`]
//! for throughput accounting (events/s).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A typed event kind with a total dispatch priority.
///
/// `priority` orders events scheduled for the *same instant*: lower values
/// dispatch first. Implementations should order priorities along the
/// pipeline (earlier stages first) so that, at one timestamp, work flows
/// through phases in the same direction it flows through time.
pub trait EventKind {
    /// Same-timestamp dispatch priority; lower dispatches first.
    fn priority(&self) -> u8;
}

/// A targeted event: *when*, *what*, and *to whom*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<K, S> {
    /// The simulated instant the event fires.
    pub at: SimTime,
    /// The phase/action to dispatch on.
    pub kind: K,
    /// The entity the event targets (a transaction, a block, a timer epoch).
    pub subject: S,
}

/// Handle to a pending timer; pass to [`DesQueue::cancel`] to disarm it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

struct Entry<K, S> {
    at: SimTime,
    prio: u8,
    seq: u64,
    kind: K,
    subject: S,
    timer: Option<TimerId>,
}

impl<K, S> PartialEq for Entry<K, S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.prio == other.prio && self.seq == other.seq
    }
}
impl<K, S> Eq for Entry<K, S> {}

impl<K, S> PartialOrd for Entry<K, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K, S> Ord for Entry<K, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, priority, seq) triple pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.prio.cmp(&self.prio))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The DES event queue: a binary-heap event clock over [`Event`]s with
/// deterministic `(time, kind priority, sequence)` ordering and lazily
/// cancelled timers.
pub struct DesQueue<K: EventKind, S> {
    heap: BinaryHeap<Entry<K, S>>,
    next_seq: u64,
    next_timer: u64,
    /// Timers cancelled while still pending; their entries are skipped on pop.
    cancelled: HashSet<TimerId>,
    /// Timers scheduled and not yet fired or cancelled.
    pending_timers: HashSet<TimerId>,
    now: SimTime,
    dispatched: u64,
}

impl<K: EventKind, S> Default for DesQueue<K, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EventKind, S> DesQueue<K, S> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        DesQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_timer: 0,
            cancelled: HashSet::new(),
            pending_timers: HashSet::new(),
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    fn push(&mut self, at: SimTime, kind: K, subject: S, timer: Option<TimerId>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let prio = kind.priority();
        self.heap.push(Entry {
            at,
            prio,
            seq,
            kind,
            subject,
            timer,
        });
    }

    /// Schedule `kind`/`subject` to fire at `at`. Scheduling in the past is
    /// allowed (the event fires "now"); the clock never runs backwards.
    pub fn schedule(&mut self, at: SimTime, kind: K, subject: S) {
        self.push(at, kind, subject, None);
    }

    /// Schedule a cancellable timer. The returned [`TimerId`] stays valid
    /// until the timer fires; cancelling after it fired is a no-op.
    pub fn schedule_timer(&mut self, at: SimTime, kind: K, subject: S) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.pending_timers.insert(id);
        self.push(at, kind, subject, Some(id));
        id
    }

    /// Disarm a pending timer: it will never fire. Returns whether the
    /// timer was still pending (false if it already fired or was already
    /// cancelled).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.pending_timers.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    /// Cancelled timers are silently discarded and never surface here.
    pub fn pop(&mut self) -> Option<Event<K, S>> {
        while let Some(e) = self.heap.pop() {
            if let Some(id) = e.timer {
                if self.cancelled.remove(&id) {
                    continue; // tombstoned: the timer was disarmed
                }
                self.pending_timers.remove(&id);
            }
            self.now = self.now.max(e.at);
            self.dispatched += 1;
            return Some(Event {
                at: self.now,
                kind: e.kind,
                subject: e.subject,
            });
        }
        None
    }

    /// The timestamp of the next live event, if any (cancelled timers at
    /// the head are discarded first).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(e) = self.heap.peek() {
            match e.timer {
                Some(id) if self.cancelled.contains(&id) => {
                    let e = self.heap.pop().expect("peeked");
                    self.cancelled.remove(&e.timer.expect("timer entry"));
                }
                _ => return Some(e.at),
            }
        }
        None
    }

    /// The current simulated clock (timestamp of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live pending events (cancelled timers excluded).
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events dispatched (popped live) so far — the numerator of an
    /// events-per-second throughput figure.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

/// A simulation model driven by the DES runner: dispatches one event at a
/// time and schedules follow-ups on the queue.
pub trait Handler<K: EventKind, S> {
    /// Dispatch one event. `now` equals `event.at` clamped to the clock
    /// (never earlier than any previously dispatched event).
    fn handle(&mut self, now: SimTime, kind: K, subject: S, queue: &mut DesQueue<K, S>);

    /// Called when the queue drains. Schedule follow-up events to keep the
    /// run alive (end-of-run flushes); schedule nothing to let it end.
    fn on_idle(&mut self, _now: SimTime, _queue: &mut DesQueue<K, S>) {}
}

/// Drive `handler` to quiescence: pop → advance clock → dispatch, and when
/// the queue drains give `on_idle` a chance to schedule more. Returns the
/// total number of dispatched events.
pub fn run<K: EventKind, S, H: Handler<K, S>>(queue: &mut DesQueue<K, S>, handler: &mut H) -> u64 {
    loop {
        while let Some(Event { at, kind, subject }) = queue.pop() {
            handler.handle(at, kind, subject, queue);
        }
        handler.on_idle(queue.now(), queue);
        if queue.is_empty() {
            return queue.dispatched();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Phase {
        Early,
        Late,
    }

    impl EventKind for Phase {
        fn priority(&self) -> u8 {
            match self {
                Phase::Early => 0,
                Phase::Late => 1,
            }
        }
    }

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: DesQueue<Phase, &str> = DesQueue::new();
        q.schedule(at(3), Phase::Early, "c");
        q.schedule(at(1), Phase::Early, "a");
        q.schedule(at(2), Phase::Early, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.subject).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.dispatched(), 3);
    }

    #[test]
    fn same_time_orders_by_kind_priority_then_seq() {
        let mut q: DesQueue<Phase, u32> = DesQueue::new();
        // Schedule a Late before an Early at the same instant: the Early
        // still dispatches first; within a kind, schedule order holds.
        q.schedule(at(1), Phase::Late, 10);
        q.schedule(at(1), Phase::Early, 0);
        q.schedule(at(1), Phase::Late, 11);
        q.schedule(at(1), Phase::Early, 1);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.subject).collect();
        assert_eq!(order, vec![0, 1, 10, 11]);
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut q: DesQueue<Phase, &str> = DesQueue::new();
        let t1 = q.schedule_timer(at(1), Phase::Late, "doomed");
        q.schedule(at(2), Phase::Early, "real");
        let t2 = q.schedule_timer(at(3), Phase::Late, "kept");
        assert_eq!(q.len(), 3);
        assert!(q.cancel(t1));
        assert!(!q.cancel(t1), "double cancel is a no-op");
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.subject).collect();
        assert_eq!(order, vec!["real", "kept"]);
        assert!(!q.cancel(t2), "cancelling a fired timer is a no-op");
        assert_eq!(q.dispatched(), 2, "the cancelled timer never dispatched");
    }

    #[test]
    fn cancelled_timer_does_not_advance_the_clock() {
        let mut q: DesQueue<Phase, ()> = DesQueue::new();
        q.schedule(at(1), Phase::Early, ());
        let far = q.schedule_timer(at(100), Phase::Late, ());
        q.cancel(far);
        while q.pop().is_some() {}
        assert_eq!(q.now(), at(1), "disarmed timer leaves no clock trace");
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q: DesQueue<Phase, ()> = DesQueue::new();
        let t = q.schedule_timer(at(1), Phase::Early, ());
        q.schedule(at(5), Phase::Early, ());
        q.cancel(t);
        assert_eq!(q.peek_time(), Some(at(5)));
        assert_eq!(q.len(), 1);
    }

    /// A two-phase model: every Early event spawns a Late follow-up one
    /// second later; on_idle injects one final Early wave, exactly once.
    struct Cascade {
        handled: Vec<(SimTime, Phase, u32)>,
        flushed: bool,
    }

    impl Handler<Phase, u32> for Cascade {
        fn handle(
            &mut self,
            now: SimTime,
            kind: Phase,
            subject: u32,
            q: &mut DesQueue<Phase, u32>,
        ) {
            self.handled.push((now, kind, subject));
            if kind == Phase::Early {
                q.schedule(now + SimDuration::from_secs(1), Phase::Late, subject);
            }
        }
        fn on_idle(&mut self, now: SimTime, q: &mut DesQueue<Phase, u32>) {
            if !self.flushed {
                self.flushed = true;
                q.schedule(now, Phase::Early, 99);
            }
        }
    }

    #[test]
    fn runner_drives_to_quiescence_with_idle_flush() {
        let mut q = DesQueue::new();
        q.schedule(at(0), Phase::Early, 1);
        let mut model = Cascade {
            handled: Vec::new(),
            flushed: false,
        };
        let dispatched = run(&mut q, &mut model);
        // 1 early + its late, then the idle-injected 99 + its late.
        assert_eq!(dispatched, 4);
        assert_eq!(
            model.handled,
            vec![
                (at(0), Phase::Early, 1),
                (at(1), Phase::Late, 1),
                (at(1), Phase::Early, 99),
                (at(2), Phase::Late, 99),
            ]
        );
    }
}
