//! Property tests for the DES primitives.

use proptest::prelude::*;
use sim_core::des::{DesQueue, EventKind};
use sim_core::dist::{DiscreteWeighted, Exponential, Zipf};
use sim_core::events::EventQueue;
use sim_core::rng::SimRng;
use sim_core::server::{MultiServer, QueueServer};
use sim_core::stats::{Summary, TimeBuckets};
use sim_core::time::{SimDuration, SimTime};

proptest! {
    /// The event queue pops in non-decreasing time order and FIFO on ties,
    /// regardless of insertion order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some((now, payload)) = q.pop() {
            let t = times[payload];
            prop_assert!(now >= SimTime::from_micros(t));
            if let Some((lt, lp)) = last {
                let lt_orig = times[lp];
                prop_assert!(lt_orig <= t || lt >= SimTime::from_micros(t));
                if lt_orig == t {
                    prop_assert!(lp < payload, "FIFO on equal timestamps");
                }
            }
            last = Some((now, payload));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// The DES queue pops in nondecreasing timestamp order; events at the
    /// same instant pop by kind priority first, schedule order second.
    #[test]
    fn des_queue_orders_by_time_kind_seq(
        events in prop::collection::vec((0u64..500, 0u8..4), 1..200)
    ) {
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        struct Kind(u8);
        impl EventKind for Kind {
            fn priority(&self) -> u8 { self.0 }
        }

        let mut q: DesQueue<Kind, usize> = DesQueue::new();
        for (i, &(t, k)) in events.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), Kind(k), i);
        }
        let mut last: Option<(u64, u8, usize)> = None;
        let mut popped = 0usize;
        while let Some(e) = q.pop() {
            let (t, k) = events[e.subject];
            prop_assert!(e.at >= SimTime::from_micros(t));
            if let Some((lt, lk, li)) = last {
                // Nondecreasing time; on equal times, nondecreasing kind
                // priority; on equal (time, kind), FIFO by schedule order.
                prop_assert!(lt <= t);
                if lt == t {
                    prop_assert!(lk <= k, "kind priority breaks the tie");
                    if lk == k {
                        prop_assert!(li < e.subject, "FIFO within a kind");
                    }
                }
            }
            last = Some((t, k, e.subject));
            popped += 1;
        }
        prop_assert_eq!(popped, events.len());
        prop_assert_eq!(q.dispatched(), events.len() as u64);
    }

    /// Cancelled timers never fire: for any mix of plain events, timers,
    /// and a subset of timers cancelled up front, exactly the live events
    /// pop and no cancelled subject ever surfaces.
    #[test]
    fn des_cancelled_timers_never_fire(
        events in prop::collection::vec((0u64..500, 0u8..2, 0u8..2), 1..150)
    ) {
        #[derive(Debug, Clone, Copy)]
        struct K;
        impl EventKind for K {
            fn priority(&self) -> u8 { 0 }
        }

        let mut q: DesQueue<K, usize> = DesQueue::new();
        let mut doomed = Vec::new();
        let mut live = 0usize;
        for (i, &(t, is_timer, cancel)) in events.iter().enumerate() {
            let (is_timer, cancel) = (is_timer == 1, cancel == 1);
            if is_timer {
                let id = q.schedule_timer(SimTime::from_micros(t), K, i);
                if cancel {
                    doomed.push((i, id));
                } else {
                    live += 1;
                }
            } else {
                q.schedule(SimTime::from_micros(t), K, i);
                live += 1;
            }
        }
        for &(_, id) in &doomed {
            prop_assert!(q.cancel(id), "pending timers cancel exactly once");
        }
        prop_assert_eq!(q.len(), live);
        let cancelled_subjects: std::collections::HashSet<usize> =
            doomed.iter().map(|&(i, _)| i).collect();
        let mut popped = 0usize;
        while let Some(e) = q.pop() {
            prop_assert!(
                !cancelled_subjects.contains(&e.subject),
                "cancelled timer {} fired", e.subject
            );
            popped += 1;
        }
        prop_assert_eq!(popped, live);
        for &(_, id) in &doomed {
            prop_assert!(!q.cancel(id), "cancel after drain is a no-op");
        }
    }

    /// FIFO server: jobs start no earlier than they arrive, never overlap,
    /// and busy time equals the sum of service demands.
    #[test]
    fn queue_server_is_work_conserving(
        jobs in prop::collection::vec((0u64..100_000, 1u64..5_000), 1..100)
    ) {
        let mut sorted = jobs.clone();
        sorted.sort();
        let mut s = QueueServer::new();
        let mut prev_done = SimTime::ZERO;
        let mut total = 0u64;
        for (arrival, service) in &sorted {
            let (start, done) = s.submit(
                SimTime::from_micros(*arrival),
                SimDuration::from_micros(*service),
            );
            prop_assert!(start >= SimTime::from_micros(*arrival));
            prop_assert!(start >= prev_done, "no overlap");
            prop_assert_eq!(done, start + SimDuration::from_micros(*service));
            prev_done = done;
            total += service;
        }
        prop_assert_eq!(s.busy_time(), SimDuration::from_micros(total));
        prop_assert_eq!(s.jobs_served(), sorted.len() as u64);
    }

    /// Multi-server pool: never worse than a single server, never better
    /// than perfect parallelism.
    #[test]
    fn multi_server_bounds(
        jobs in prop::collection::vec(1u64..2_000, 1..80),
        servers in 1usize..6
    ) {
        let mut pool = MultiServer::new(servers);
        let mut single = QueueServer::new();
        let mut pool_last = SimTime::ZERO;
        let mut single_last = SimTime::ZERO;
        let total: u64 = jobs.iter().sum();
        for &service in &jobs {
            let d = SimDuration::from_micros(service);
            let (_, pd) = pool.submit(SimTime::ZERO, d);
            let (_, sd) = single.submit(SimTime::ZERO, d);
            pool_last = pool_last.max(pd);
            single_last = single_last.max(sd);
        }
        prop_assert!(pool_last <= single_last);
        let perfect = total / servers as u64;
        prop_assert!(pool_last.as_micros() >= perfect);
    }

    /// Zipf samples stay in range and the top rank dominates under skew.
    #[test]
    fn zipf_in_range(n in 2usize..500, s in 0.0f64..2.5, seed in 0u64..1_000) {
        let z = Zipf::new(n, s);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..500 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        if s > 0.5 {
            prop_assert!(z.pmf(0) >= z.pmf(n - 1));
        }
    }

    /// Weighted sampling never returns a zero-weight index.
    #[test]
    fn weighted_respects_support(weights in prop::collection::vec(0.0f64..10.0, 2..20), seed in 0u64..500) {
        prop_assume!(weights.iter().any(|w| *w > 0.0));
        let d = DiscreteWeighted::new(&weights);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..300 {
            let idx = d.sample(&mut rng);
            prop_assert!(weights[idx] > 0.0, "index {} has zero weight", idx);
        }
    }

    /// Exponential samples are strictly positive and mean-consistent.
    #[test]
    fn exponential_positive(mean_us in 10u64..100_000, seed in 0u64..200) {
        let e = Exponential::with_mean(SimDuration::from_micros(mean_us));
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 2_000;
        let total: u64 = (0..n).map(|_| {
            let d = e.sample(&mut rng);
            assert!(d.as_micros() >= 1);
            d.as_micros()
        }).sum();
        let sample_mean = total as f64 / n as f64;
        prop_assert!(sample_mean > mean_us as f64 * 0.85);
        prop_assert!(sample_mean < mean_us as f64 * 1.15);
    }

    /// Summary invariants: min ≤ p50 ≤ p95 ≤ p99 ≤ max, mean within range.
    #[test]
    fn summary_order(values in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.p50);
        prop_assert!(s.p50 <= s.p95);
        prop_assert!(s.p95 <= s.p99);
        prop_assert!(s.p99 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, values.len());
    }

    /// Time buckets conserve the event count.
    #[test]
    fn buckets_conserve(events in prop::collection::vec(0u64..1_000_000, 0..300), width in 1u64..100_000) {
        let mut b = TimeBuckets::new(SimDuration::from_micros(width));
        for &t in &events {
            b.record(SimTime::from_micros(t));
        }
        prop_assert_eq!(b.total() as usize, events.len());
    }

    /// Derived RNG streams are reproducible.
    #[test]
    fn derived_streams_reproducible(seed in 0u64..10_000, label in 0u64..10_000) {
        let mut a = SimRng::derive(seed, label);
        let mut b = SimRng::derive(seed, label);
        for _ in 0..16 {
            prop_assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }
}
