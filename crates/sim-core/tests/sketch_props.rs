//! Property tests for the quantile sketch's two contracts:
//!
//! * **small-n exact mode** — below [`EXACT_CAP`] the sketch is a verbatim
//!   buffer and `summary()` bit-matches [`Summary::of`];
//! * **certified rank error** — past the cap, every quantile answer's rank
//!   lies within [`QuantileSketch::max_rank_error`] ranks of the query
//!   target, for arbitrary value distributions, insertion orders, and
//!   arbitrary shard/merge splits.

use proptest::prelude::*;
use sim_core::sketch::{QuantileSketch, EXACT_CAP};
use sim_core::stats::Summary;

/// Finite, NaN-free observations with repeats and wide magnitude spread.
fn arb_values(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (0i64..4_001, 1u32..4).prop_map(|(v, scale)| v as f64 / 10f64.powi(scale as i32)),
        len,
    )
}

/// The 1-based rank window `[lo, hi]` that value `q` occupies in `values`:
/// a quantile answer is correct within `err` ranks if the target rank falls
/// inside `[lo - err, hi + err]`.
fn rank_window(values: &[f64], q: f64) -> (usize, usize) {
    let below = values.iter().filter(|&&v| v < q).count();
    let at_or_below = values.iter().filter(|&&v| v <= q).count();
    (below + 1, at_or_below)
}

fn assert_within_certified_bound(sketch: &QuantileSketch, values: &[f64]) {
    let n = values.len();
    let err = sketch.max_rank_error() as usize;
    for &p in &[0.50, 0.95, 0.99] {
        let q = sketch.quantile(p);
        let target = ((p * n as f64).ceil() as usize).clamp(1, n);
        let (lo, hi) = rank_window(values, q);
        assert!(
            lo.saturating_sub(err) <= target && target <= hi + err,
            "p{p}: answer {q} has rank window [{lo},{hi}] ± {err}, \
             missing target rank {target} of {n}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Below the cap the sketch *is* the raw buffer: `summary()` returns
    /// the bit-identical result of [`Summary::of`] over the insertion-order
    /// values, and the certified error is zero.
    #[test]
    fn small_n_summary_bit_matches_summary_of(values in arb_values(0..EXACT_CAP)) {
        let mut sketch = QuantileSketch::new();
        for &v in &values {
            sketch.insert(v);
        }
        prop_assert!(sketch.is_exact());
        prop_assert_eq!(sketch.max_rank_error(), 0);
        let direct = Summary::of(&values);
        let sketched = sketch.summary();
        prop_assert_eq!(format!("{direct:?}"), format!("{sketched:?}"));
        prop_assert_eq!(direct.mean.to_bits(), sketched.mean.to_bits());
        prop_assert_eq!(direct.p50.to_bits(), sketched.p50.to_bits());
        prop_assert_eq!(direct.p95.to_bits(), sketched.p95.to_bits());
        prop_assert_eq!(direct.p99.to_bits(), sketched.p99.to_bits());
    }

    /// Past the cap, p50/p95/p99 answers stay within the *certified* (not
    /// asymptotic) rank-error bound for arbitrary distributions.
    #[test]
    fn compacted_quantiles_respect_certified_rank_error(
        values in arb_values((EXACT_CAP + 1)..4 * EXACT_CAP),
    ) {
        let mut sketch = QuantileSketch::new();
        for &v in &values {
            sketch.insert(v);
        }
        prop_assert!(!sketch.is_exact());
        prop_assert_eq!(sketch.count(), values.len() as u64);
        assert_within_certified_bound(&sketch, &values);
        // Moments never degrade: they are streamed exactly.
        let s = sketch.summary();
        let direct = Summary::of(&values);
        prop_assert!((s.mean - direct.mean).abs() <= 1e-9 * direct.mean.abs().max(1.0));
        prop_assert_eq!(s.min.to_bits(), direct.min.to_bits());
        prop_assert_eq!(s.max.to_bits(), direct.max.to_bits());
    }

    /// Sharded ingestion: split the stream anywhere, sketch each shard
    /// independently, merge — the merged sketch still answers within its
    /// own (summed) certified bound over the full concatenation.
    #[test]
    fn merged_shards_respect_certified_rank_error(
        values in arb_values(2..3 * EXACT_CAP),
        shards in 2usize..5,
    ) {
        let chunk = values.len().div_ceil(shards).max(1);
        let mut merged = QuantileSketch::new();
        for piece in values.chunks(chunk) {
            let mut s = QuantileSketch::new();
            for &v in piece {
                s.insert(v);
            }
            merged.merge(&s);
        }
        prop_assert_eq!(merged.count(), values.len() as u64);
        assert_within_certified_bound(&merged, &values);
        // Exact shards whose union fits the cap merge back to exact mode —
        // and then the merged summary bit-matches the concatenation.
        if values.len() <= EXACT_CAP {
            prop_assert!(merged.is_exact());
            prop_assert_eq!(
                format!("{:?}", merged.summary()),
                format!("{:?}", Summary::of(&values))
            );
        }
    }
}
