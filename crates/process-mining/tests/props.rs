//! Property tests for the process-mining algorithms.

use process_mining::alpha::alpha_miner;
use process_mining::conformance::{footprint_conformance, replay_fitness};
use process_mining::dfg::DirectlyFollowsGraph;
use process_mining::eventlog::{EventLog, Trace};
use process_mining::footprint::{Footprint, Relation};
use process_mining::heuristics::{heuristics_miner, HeuristicsConfig};
use proptest::prelude::*;

/// Random logs over a small alphabet with loop-free traces (the α-algorithm's
/// sweet spot: no length-1/2 loops, every trace non-empty).
fn arb_log() -> impl Strategy<Value = EventLog> {
    prop::collection::vec(
        prop::collection::vec(0u8..6, 1..6).prop_map(|mut v| {
            v.dedup();
            v
        }),
        1..24,
    )
    .prop_map(|seqs| {
        EventLog::from_traces(
            seqs.into_iter()
                .enumerate()
                .map(|(i, seq)| {
                    Trace::new(
                        format!("c{i}"),
                        seq.into_iter().map(|a| format!("a{a}")).collect(),
                    )
                })
                .collect(),
        )
    })
}

proptest! {
    /// DFG edge counts equal the number of adjacent pairs in the log.
    #[test]
    fn dfg_counts_are_exact(log in arb_log()) {
        let dfg = DirectlyFollowsGraph::from_log(&log);
        let total_edges: usize = dfg.edges().map(|(_, _, c)| c).sum();
        let expected: usize = log
            .traces()
            .iter()
            .map(|t| t.activities.len().saturating_sub(1))
            .sum();
        prop_assert_eq!(total_edges, expected);
        let total_events: usize = log
            .activities()
            .iter()
            .map(|a| dfg.activity_count(a))
            .sum();
        prop_assert_eq!(total_events, log.event_count());
    }

    /// The footprint matrix is consistent: relation(a,b) mirrors
    /// relation(b,a) and self-agreement is 1.
    #[test]
    fn footprint_symmetry(log in arb_log()) {
        let f = Footprint::from_log(&log);
        for a in f.activities() {
            for b in f.activities() {
                let ab = f.relation(a, b);
                let ba = f.relation(b, a);
                let mirrored = match ab {
                    Relation::Causes => Relation::CausedBy,
                    Relation::CausedBy => Relation::Causes,
                    Relation::Parallel => Relation::Parallel,
                    Relation::Choice => Relation::Choice,
                };
                prop_assert_eq!(ba, mirrored);
            }
        }
        prop_assert!((f.agreement(&f) - 1.0).abs() < 1e-12);
        prop_assert!((footprint_conformance(&log, &log) - 1.0).abs() < 1e-12);
    }

    /// Variant frequencies sum to the trace count.
    #[test]
    fn variants_conserve(log in arb_log()) {
        let total: usize = log.variants().iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, log.len());
    }

    /// The heuristics miner's kept edges are a subset of the DFG and its
    /// dependency values stay in (-1, 1].
    #[test]
    fn heuristics_edges_subset_of_dfg(log in arb_log()) {
        let dfg = DirectlyFollowsGraph::from_log(&log);
        let g = heuristics_miner(&log, &HeuristicsConfig {
            dependency_threshold: 0.3,
            min_observations: 1,
        });
        for ((a, b), (dep, obs)) in &g.edges {
            prop_assert!(dfg.follows(a, b));
            prop_assert_eq!(*obs, dfg.count(a, b));
            prop_assert!(*dep > -1.0 && *dep <= 1.0);
        }
    }

    /// Raising the dependency threshold never adds edges.
    #[test]
    fn heuristics_threshold_monotone(log in arb_log()) {
        let loose = heuristics_miner(&log, &HeuristicsConfig {
            dependency_threshold: 0.2,
            min_observations: 1,
        });
        let strict = heuristics_miner(&log, &HeuristicsConfig {
            dependency_threshold: 0.8,
            min_observations: 1,
        });
        for key in strict.edges.keys() {
            prop_assert!(loose.edges.contains_key(key));
        }
        prop_assert!(strict.edge_count() <= loose.edge_count());
    }

    /// The α-miner terminates and produces a structurally sane net; a
    /// straight-line log replays on its own net with perfect fitness.
    #[test]
    fn alpha_is_sane(log in arb_log()) {
        let net = alpha_miner(&log);
        prop_assert_eq!(net.transition_count(), log.activities().len());
        prop_assert!(net.place_count() >= 2, "at least source and sink");
        let fit = replay_fitness(&net, &log);
        prop_assert!(fit.fitness >= 0.0 && fit.fitness <= 1.0);
    }

    /// For single-variant sequence logs the α-model reproduces the trace
    /// perfectly (the classic guarantee for structured logs).
    #[test]
    fn alpha_perfect_on_sequences(len in 1usize..7, reps in 1usize..5) {
        let seq: Vec<String> = (0..len).map(|i| format!("s{i}")).collect();
        let log = EventLog::from_traces(
            (0..reps)
                .map(|i| Trace::new(format!("c{i}"), seq.clone()))
                .collect(),
        );
        let net = alpha_miner(&log);
        let fit = replay_fitness(&net, &log);
        prop_assert!((fit.fitness - 1.0).abs() < 1e-12, "fitness {}", fit.fitness);
        prop_assert_eq!(fit.fitting_traces, reps);
    }
}
