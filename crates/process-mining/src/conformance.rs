//! Conformance checking.
//!
//! The paper's approach "can also verify compliance with the new process
//! model" (§1) — after a redesign, the re-mined log should fit the intended
//! model. Two standard techniques:
//!
//! * **token-replay fitness** — replay every trace over a Petri net and
//!   aggregate produced/consumed/missing/remaining tokens;
//! * **footprint conformance** — compare the footprint matrices of two logs
//!   (or of a log and a model's expected behaviour).

use crate::eventlog::EventLog;
use crate::footprint::Footprint;
use crate::petri::{PetriNet, ReplayCounts};
use serde::{Deserialize, Serialize};

/// Aggregated replay-fitness result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fitness {
    /// Token-replay fitness in `[0, 1]`.
    pub fitness: f64,
    /// Traces that replayed perfectly.
    pub fitting_traces: usize,
    /// Total traces replayed.
    pub total_traces: usize,
    /// Aggregated token counts.
    pub counts: ReplayCounts,
}

impl Fitness {
    /// Fraction of perfectly fitting traces.
    pub fn trace_fitness(&self) -> f64 {
        if self.total_traces == 0 {
            1.0
        } else {
            self.fitting_traces as f64 / self.total_traces as f64
        }
    }
}

/// Replay a whole log over a net.
pub fn replay_fitness(net: &PetriNet, log: &EventLog) -> Fitness {
    let mut counts = ReplayCounts::default();
    let mut fitting = 0usize;
    for trace in log.traces() {
        let c = net.replay(&trace.activities);
        if c.missing == 0 && c.remaining == 0 {
            fitting += 1;
        }
        counts.add(c);
    }
    Fitness {
        fitness: counts.fitness(),
        fitting_traces: fitting,
        total_traces: log.len(),
        counts,
    }
}

/// Footprint agreement between two logs in `[0, 1]`
/// (1.0 = behaviourally identical at the footprint level).
pub fn footprint_conformance(reference: &EventLog, observed: &EventLog) -> f64 {
    Footprint::from_log(reference).agreement(&Footprint::from_log(observed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::alpha_miner;
    use crate::eventlog::log_from;

    #[test]
    fn self_mined_model_fits_perfectly() {
        let log = log_from(&[&["a", "b", "d"], &["a", "c", "d"], &["a", "b", "d"]]);
        let net = alpha_miner(&log);
        let fit = replay_fitness(&net, &log);
        assert!((fit.fitness - 1.0).abs() < 1e-12);
        assert_eq!(fit.fitting_traces, 3);
        assert!((fit.trace_fitness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deviating_log_scores_below_one() {
        let reference = log_from(&[&["a", "b", "c"]]);
        let net = alpha_miner(&reference);
        let observed = log_from(&[&["a", "b", "c"], &["c", "a", "b"]]);
        let fit = replay_fitness(&net, &observed);
        assert!(fit.fitness < 1.0);
        assert_eq!(fit.fitting_traces, 1);
        assert_eq!(fit.total_traces, 2);
    }

    #[test]
    fn footprint_conformance_of_identical_logs() {
        let a = log_from(&[&["a", "b"], &["a", "c"]]);
        let b = log_from(&[&["a", "c"], &["a", "b"]]);
        assert!((footprint_conformance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn footprint_conformance_detects_redesign() {
        // Before: audit happens between pushASN and ship; after: at the end.
        let before = log_from(&[&["pushASN", "audit", "ship"]]);
        let after = log_from(&[&["pushASN", "ship", "audit"]]);
        let agreement = footprint_conformance(&before, &after);
        assert!(agreement < 1.0, "redesign changes the footprint");
        assert!(agreement > 0.3, "models still share structure");
    }

    #[test]
    fn empty_log_fits_trivially() {
        let net = alpha_miner(&log_from(&[&["a"]]));
        let fit = replay_fitness(&net, &EventLog::new());
        assert_eq!(fit.total_traces, 0);
        assert!((fit.trace_fitness() - 1.0).abs() < 1e-12);
    }
}
