//! Petri nets with token-replay semantics.
//!
//! The Alpha miner produces a workflow net: one source place, one sink
//! place, a transition per activity, and internal places for the discovered
//! causal relations. Token replay over these nets powers conformance
//! checking.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A place identifier.
pub type PlaceId = usize;

/// A Petri net with named transitions (activities).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PetriNet {
    /// Human-readable place labels (index = [`PlaceId`]).
    pub places: Vec<String>,
    /// Transition labels (activities).
    pub transitions: Vec<String>,
    /// Arcs place → transition: for each transition index, its input places.
    pub inputs: BTreeMap<usize, Vec<PlaceId>>,
    /// Arcs transition → place: for each transition index, its output places.
    pub outputs: BTreeMap<usize, Vec<PlaceId>>,
    /// The source place (initial token).
    pub source: PlaceId,
    /// The sink place (final token).
    pub sink: PlaceId,
}

impl PetriNet {
    /// Index of a transition by label.
    pub fn transition_index(&self, label: &str) -> Option<usize> {
        self.transitions.iter().position(|t| t == label)
    }

    /// Input places of a transition.
    pub fn inputs_of(&self, t: usize) -> &[PlaceId] {
        self.inputs.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Output places of a transition.
    pub fn outputs_of(&self, t: usize) -> &[PlaceId] {
        self.outputs.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Replay one trace, counting produced/consumed/missing/remaining tokens
    /// (the standard token-replay bookkeeping). Unknown activities consume
    /// and produce nothing but count one missing token (a model violation).
    pub fn replay(&self, trace: &[String]) -> ReplayCounts {
        let mut marking: BTreeMap<PlaceId, i64> = BTreeMap::new();
        marking.insert(self.source, 1);
        let mut counts = ReplayCounts {
            produced: 1, // initial token
            consumed: 0,
            missing: 0,
            remaining: 0,
        };
        for activity in trace {
            match self.transition_index(activity) {
                Some(t) => {
                    for &p in self.inputs_of(t) {
                        let tokens = marking.entry(p).or_insert(0);
                        if *tokens <= 0 {
                            counts.missing += 1; // token conjured to proceed
                        } else {
                            *tokens -= 1;
                        }
                        counts.consumed += 1;
                    }
                    for &p in self.outputs_of(t) {
                        *marking.entry(p).or_insert(0) += 1;
                        counts.produced += 1;
                    }
                }
                None => {
                    counts.missing += 1;
                    counts.consumed += 1;
                }
            }
        }
        // Consume the final token from the sink.
        let sink_tokens = marking.entry(self.sink).or_insert(0);
        if *sink_tokens <= 0 {
            counts.missing += 1;
        } else {
            *sink_tokens -= 1;
        }
        counts.consumed += 1;
        counts.remaining += marking
            .values()
            .filter(|v| **v > 0)
            .map(|v| *v as usize)
            .sum::<usize>();
        counts
    }
}

/// Token-replay bookkeeping for one or more traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayCounts {
    /// Tokens produced (including the initial token).
    pub produced: usize,
    /// Tokens consumed (including the final sink consumption).
    pub consumed: usize,
    /// Tokens that had to be conjured (model violations).
    pub missing: usize,
    /// Tokens left over after replay (un-consumed work).
    pub remaining: usize,
}

impl ReplayCounts {
    /// Merge counts from another replay.
    pub fn add(&mut self, other: ReplayCounts) {
        self.produced += other.produced;
        self.consumed += other.consumed;
        self.missing += other.missing;
        self.remaining += other.remaining;
    }

    /// The standard token-replay fitness:
    /// `½(1 − missing/consumed) + ½(1 − remaining/produced)`.
    pub fn fitness(&self) -> f64 {
        let miss = if self.consumed == 0 {
            0.0
        } else {
            self.missing as f64 / self.consumed as f64
        };
        let rem = if self.produced == 0 {
            0.0
        } else {
            self.remaining as f64 / self.produced as f64
        };
        0.5 * (1.0 - miss) + 0.5 * (1.0 - rem)
    }
}

/// Builder used by the miners.
#[derive(Debug, Default)]
pub struct PetriNetBuilder {
    net: PetriNet,
}

impl PetriNetBuilder {
    /// Start an empty net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a place, returning its id.
    pub fn place(&mut self, label: impl Into<String>) -> PlaceId {
        self.net.places.push(label.into());
        self.net.places.len() - 1
    }

    /// Add a transition, returning its index.
    pub fn transition(&mut self, label: impl Into<String>) -> usize {
        self.net.transitions.push(label.into());
        self.net.transitions.len() - 1
    }

    /// Arc from place to transition.
    pub fn arc_in(&mut self, p: PlaceId, t: usize) {
        self.net.inputs.entry(t).or_default().push(p);
    }

    /// Arc from transition to place.
    pub fn arc_out(&mut self, t: usize, p: PlaceId) {
        self.net.outputs.entry(t).or_default().push(p);
    }

    /// Finish, designating source and sink places.
    pub fn build(mut self, source: PlaceId, sink: PlaceId) -> PetriNet {
        self.net.source = source;
        self.net.sink = sink;
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// source → [a] → mid → [b] → sink
    fn sequence_net() -> PetriNet {
        let mut b = PetriNetBuilder::new();
        let src = b.place("source");
        let mid = b.place("p(a,b)");
        let sink = b.place("sink");
        let ta = b.transition("a");
        let tb = b.transition("b");
        b.arc_in(src, ta);
        b.arc_out(ta, mid);
        b.arc_in(mid, tb);
        b.arc_out(tb, sink);
        b.build(src, sink)
    }

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn perfect_trace_has_fitness_one() {
        let net = sequence_net();
        let counts = net.replay(&strs(&["a", "b"]));
        assert_eq!(counts.missing, 0);
        assert_eq!(counts.remaining, 0);
        assert!((counts.fitness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skipped_activity_leaves_tokens() {
        let net = sequence_net();
        let counts = net.replay(&strs(&["a"])); // never fires b
        assert!(counts.missing > 0, "sink token missing");
        assert!(counts.remaining > 0, "mid token left behind");
        assert!(counts.fitness() < 1.0);
    }

    #[test]
    fn wrong_order_costs_fitness() {
        let net = sequence_net();
        let counts = net.replay(&strs(&["b", "a"]));
        assert!(counts.missing > 0);
        assert!(counts.fitness() < 1.0);
    }

    #[test]
    fn unknown_activity_counts_missing() {
        let net = sequence_net();
        let counts = net.replay(&strs(&["a", "zzz", "b"]));
        assert!(counts.missing >= 1);
    }

    #[test]
    fn counts_merge() {
        let net = sequence_net();
        let mut total = ReplayCounts::default();
        total.add(net.replay(&strs(&["a", "b"])));
        total.add(net.replay(&strs(&["a", "b"])));
        assert_eq!(total.missing, 0);
        assert!((total.fitness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn net_accessors() {
        let net = sequence_net();
        assert_eq!(net.place_count(), 3);
        assert_eq!(net.transition_count(), 2);
        assert_eq!(net.transition_index("b"), Some(1));
        assert_eq!(net.transition_index("x"), None);
        assert_eq!(net.inputs_of(0), &[0]);
        assert_eq!(net.outputs_of(1), &[2]);
    }
}
