//! Event logs: the minimum process-mining input (paper §2.2).
//!
//! A [`Trace`] is one complete case — the ordered activities sharing a
//! CaseID. An [`EventLog`] is a multiset of traces; [`EventLog::variants`]
//! groups identical traces, which is what the mining algorithms consume.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One case: the ordered activity sequence of a single CaseID.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Trace {
    /// The case identifier (derived from the common element, §4.2).
    pub case_id: String,
    /// Activities in commit order.
    pub activities: Vec<String>,
}

impl Trace {
    /// Build a trace.
    pub fn new(case_id: impl Into<String>, activities: Vec<String>) -> Self {
        Trace {
            case_id: case_id.into(),
            activities,
        }
    }

    /// Length of the trace.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }
}

/// A multiset of traces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    traces: Vec<Trace>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from traces.
    pub fn from_traces(traces: Vec<Trace>) -> Self {
        EventLog { traces }
    }

    /// Append one trace.
    pub fn push(&mut self, trace: Trace) {
        self.traces.push(trace);
    }

    /// All traces.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Mutable access to one trace by index — streaming consumers append
    /// the newest event of a case to its open trace.
    pub fn trace_mut(&mut self, idx: usize) -> Option<&mut Trace> {
        self.traces.get_mut(idx)
    }

    /// Drop every trace `keep` rejects (sliding-window eviction drops
    /// traces whose last event aged out). Indices held by callers are
    /// invalidated — re-derive them from [`traces`](Self::traces).
    pub fn retain_traces(&mut self, keep: impl FnMut(&Trace) -> bool) {
        self.traces.retain(keep);
    }

    /// Stably reorder traces by a key. Windowed consumers restore
    /// *first-event order* after evicting trace heads, so an incrementally
    /// maintained log stays identical to one built fresh from the retained
    /// events (where a trace's position is its first occurrence).
    pub fn sort_traces_by_key<K: Ord>(&mut self, key: impl FnMut(&Trace) -> K) {
        self.traces.sort_by_key(key);
    }

    /// Number of traces (cases).
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total number of events across all traces.
    pub fn event_count(&self) -> usize {
        self.traces.iter().map(Trace::len).sum()
    }

    /// The distinct activities, sorted.
    pub fn activities(&self) -> Vec<String> {
        let mut set: Vec<String> = self
            .traces
            .iter()
            .flat_map(|t| t.activities.iter().cloned())
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// Trace variants: distinct activity sequences with their frequencies,
    /// most frequent first (ties by sequence for determinism).
    pub fn variants(&self) -> Vec<(Vec<String>, usize)> {
        let mut counts: BTreeMap<Vec<String>, usize> = BTreeMap::new();
        for t in &self.traces {
            *counts.entry(t.activities.clone()).or_insert(0) += 1;
        }
        let mut out: Vec<(Vec<String>, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Activities that start at least one trace.
    pub fn start_activities(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .traces
            .iter()
            .filter_map(|t| t.activities.first().cloned())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Activities that end at least one trace.
    pub fn end_activities(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .traces
            .iter()
            .filter_map(|t| t.activities.last().cloned())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Convenience constructor used throughout the tests:
/// `log(&[&["a","b","c"], &["a","c"]])`.
pub fn log_from(seqs: &[&[&str]]) -> EventLog {
    EventLog::from_traces(
        seqs.iter()
            .enumerate()
            .map(|(i, seq)| {
                Trace::new(
                    format!("case{i}"),
                    seq.iter().map(|s| s.to_string()).collect(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let l = log_from(&[&["a", "b"], &["a", "c", "b"]]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.event_count(), 5);
        assert_eq!(l.activities(), vec!["a", "b", "c"]);
        assert!(!l.is_empty());
    }

    #[test]
    fn variants_group_and_sort_by_frequency() {
        let l = log_from(&[&["a", "b"], &["a", "c"], &["a", "b"], &["a", "b"]]);
        let v = l.variants();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, vec!["a", "b"]);
        assert_eq!(v[0].1, 3);
        assert_eq!(v[1].1, 1);
    }

    #[test]
    fn start_and_end_activities() {
        let l = log_from(&[&["a", "b", "d"], &["c", "d"]]);
        assert_eq!(l.start_activities(), vec!["a", "c"]);
        assert_eq!(l.end_activities(), vec!["d"]);
    }

    #[test]
    fn empty_log() {
        let l = EventLog::new();
        assert!(l.is_empty());
        assert!(l.variants().is_empty());
        assert!(l.start_activities().is_empty());
    }

    #[test]
    fn trace_push_and_len() {
        let mut l = EventLog::new();
        l.push(Trace::new("c1", vec!["x".into()]));
        assert_eq!(l.len(), 1);
        assert_eq!(l.traces()[0].case_id, "c1");
        assert_eq!(l.traces()[0].len(), 1);
        assert!(!l.traces()[0].is_empty());
    }
}
