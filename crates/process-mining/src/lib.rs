//! # process-mining
//!
//! The process-mining toolkit BlockOptR uses for its user-level
//! recommendations (paper §2.2, §4.2): derive a process model from an event
//! log, compare expected versus actual behaviour, and verify compliance
//! after a redesign.
//!
//! * [`eventlog`] — cases, traces, and variants (the minimum attributes of
//!   §2.2: CaseID, activity name, ordering);
//! * [`dfg`] — directly-follows graphs with frequencies;
//! * [`footprint`] — the α-algorithm's footprint matrix (→, ←, ∥, #);
//! * [`alpha`] — the Alpha miner (van der Aalst et al., TKDE 2004), the
//!   algorithm the paper uses for Figures 2 and 4;
//! * [`heuristics`] — a frequency-thresholded heuristics miner for noisy
//!   logs;
//! * [`petri`] — Petri nets with token-replay semantics;
//! * [`conformance`] — token-replay fitness and footprint conformance
//!   (used to "verify compliance with the new process model", §1);
//! * [`dot`] — Graphviz DOT export of the mined models;
//! * [`xes`] — IEEE-1849 XES export/import, the interchange format of the
//!   ProM/Disco/Celonis ecosystem the paper mentions in §2.2.

pub mod alpha;
pub mod conformance;
pub mod dfg;
pub mod dot;
pub mod eventlog;
pub mod footprint;
pub mod heuristics;
pub mod petri;
pub mod xes;

pub use alpha::alpha_miner;
pub use conformance::{footprint_conformance, replay_fitness, Fitness};
pub use dfg::DirectlyFollowsGraph;
pub use eventlog::{EventLog, Trace};
pub use footprint::{Footprint, Relation};
pub use heuristics::{heuristics_miner, DependencyGraph, HeuristicsConfig};
pub use petri::PetriNet;
pub use xes::{from_xes, to_xes};
