//! The Alpha miner (van der Aalst, Weijters, Maruster — TKDE 2004).
//!
//! The algorithm the paper uses to derive the process models of Figures 2
//! and 4 (§4.2). Classic eight-step construction:
//!
//! 1. `T_L` — the activity alphabet;
//! 2. `T_I` / `T_O` — start/end activities;
//! 3. `X_L` — pairs `(A, B)` with all-causal `A → B` and
//!    `#`-independent members;
//! 4. `Y_L` — the maximal pairs of `X_L`;
//!
//! Steps 5–8 add one place per maximal pair, plus source and sink.

use crate::eventlog::EventLog;
use crate::footprint::Footprint;
use crate::petri::{PetriNet, PetriNetBuilder};
use std::collections::BTreeSet;

/// Safety cap on the number of `#`-cliques explored (the evaluation logs
/// have ≤ a dozen activities; pathological inputs are truncated rather than
/// allowed to blow up).
const MAX_CLIQUES: usize = 8_192;

/// Mine a workflow net from an event log.
pub fn alpha_miner(log: &EventLog) -> PetriNet {
    let activities = log.activities();
    let footprint = Footprint::from_log(log);
    let starts: BTreeSet<String> = log.start_activities().into_iter().collect();
    let ends: BTreeSet<String> = log.end_activities().into_iter().collect();

    // Step 3 prerequisite: all #-cliques (sets whose members are pairwise in
    // choice relation, including with themselves — self-looping activities
    // are excluded by a ∥ a).
    let cliques = choice_cliques(&activities, &footprint);

    // Step 3: X_L — candidate (A, B) pairs.
    let mut xl: Vec<(BTreeSet<String>, BTreeSet<String>)> = Vec::new();
    for a_set in &cliques {
        for b_set in &cliques {
            let all_causal = a_set
                .iter()
                .all(|a| b_set.iter().all(|b| footprint.causes(a, b)));
            if all_causal {
                xl.push((a_set.clone(), b_set.clone()));
            }
        }
    }

    // Step 4: Y_L — maximal pairs.
    let yl: Vec<&(BTreeSet<String>, BTreeSet<String>)> = xl
        .iter()
        .filter(|(a, b)| {
            !xl.iter()
                .any(|(a2, b2)| (a2, b2) != (a, b) && a.is_subset(a2) && b.is_subset(b2))
        })
        .collect();

    // Steps 5-8: build the net.
    let mut builder = PetriNetBuilder::new();
    let source = builder.place("source");
    let sink = builder.place("sink");
    let transition_ids: Vec<usize> = activities
        .iter()
        .map(|a| builder.transition(a.clone()))
        .collect();
    let index_of = |name: &str| -> usize {
        activities
            .iter()
            .position(|a| a == name)
            .expect("activity exists")
    };

    for (a_set, b_set) in yl {
        let label = format!(
            "p({{{}}},{{{}}})",
            a_set.iter().cloned().collect::<Vec<_>>().join(","),
            b_set.iter().cloned().collect::<Vec<_>>().join(","),
        );
        let p = builder.place(label);
        for a in a_set {
            builder.arc_out(transition_ids[index_of(a)], p);
        }
        for b in b_set {
            builder.arc_in(p, transition_ids[index_of(b)]);
        }
    }
    for s in &starts {
        builder.arc_in(source, transition_ids[index_of(s)]);
    }
    for e in &ends {
        builder.arc_out(transition_ids[index_of(e)], sink);
    }
    builder.build(source, sink)
}

/// Enumerate all non-empty activity sets that are pairwise (and self) in the
/// `#` relation.
fn choice_cliques(activities: &[String], footprint: &Footprint) -> Vec<BTreeSet<String>> {
    // Only activities with a # a can participate at all.
    let eligible: Vec<&String> = activities
        .iter()
        .filter(|a| footprint.choice(a, a))
        .collect();
    let mut cliques: Vec<BTreeSet<String>> = Vec::new();
    let mut current: Vec<&String> = Vec::new();
    fn extend<'a>(
        eligible: &[&'a String],
        from: usize,
        current: &mut Vec<&'a String>,
        footprint: &Footprint,
        out: &mut Vec<BTreeSet<String>>,
    ) {
        if out.len() >= MAX_CLIQUES {
            return;
        }
        for i in from..eligible.len() {
            let cand = eligible[i];
            if current.iter().all(|c| footprint.choice(c, cand)) {
                current.push(cand);
                out.push(current.iter().map(|s| s.to_string()).collect());
                extend(eligible, i + 1, current, footprint, out);
                current.pop();
            }
        }
    }
    extend(&eligible, 0, &mut current, footprint, &mut cliques);
    cliques
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eventlog::log_from;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mines_simple_sequence() {
        // L = [<a,b,c>] → source→a→p→b→p→c→sink
        let net = alpha_miner(&log_from(&[&["a", "b", "c"]]));
        assert_eq!(net.transition_count(), 3);
        // Replaying the log trace is perfect.
        let counts = net.replay(&strs(&["a", "b", "c"]));
        assert_eq!(counts.missing, 0, "{net:?}");
        assert_eq!(counts.remaining, 0);
    }

    #[test]
    fn sequence_net_rejects_wrong_order() {
        let net = alpha_miner(&log_from(&[&["a", "b", "c"]]));
        let counts = net.replay(&strs(&["c", "b", "a"]));
        assert!(counts.missing > 0);
    }

    #[test]
    fn mines_xor_split() {
        // L = [<a,b,d>, <a,c,d>] — after a, choose b or c, then d.
        let log = log_from(&[&["a", "b", "d"], &["a", "c", "d"]]);
        let net = alpha_miner(&log);
        for trace in [vec!["a", "b", "d"], vec!["a", "c", "d"]] {
            let counts = net.replay(&strs(&trace));
            assert_eq!(counts.missing, 0, "{trace:?}");
            assert_eq!(counts.remaining, 0, "{trace:?}");
        }
        // The invalid both-branches trace does not fit.
        let counts = net.replay(&strs(&["a", "b", "c", "d"]));
        assert!(counts.missing > 0);
    }

    #[test]
    fn mines_parallel_split() {
        // L = [<a,b,c,d>, <a,c,b,d>] — b ∥ c between a and d.
        let log = log_from(&[&["a", "b", "c", "d"], &["a", "c", "b", "d"]]);
        let net = alpha_miner(&log);
        for trace in [vec!["a", "b", "c", "d"], vec!["a", "c", "b", "d"]] {
            let counts = net.replay(&strs(&trace));
            assert_eq!(counts.missing, 0, "{trace:?}");
            assert_eq!(counts.remaining, 0, "{trace:?}");
        }
        // Skipping one parallel branch leaves a token behind.
        let counts = net.replay(&strs(&["a", "b", "d"]));
        assert!(counts.missing + counts.remaining > 0);
    }

    #[test]
    fn discovered_places_encode_relations() {
        let net = alpha_miner(&log_from(&[&["a", "b"]]));
        // source, sink and p({a},{b}).
        assert_eq!(net.place_count(), 3);
        assert!(net.places.iter().any(|p| p.contains("p({a},{b})")));
    }

    #[test]
    fn empty_log_gives_empty_net() {
        let net = alpha_miner(&EventLog::new());
        assert_eq!(net.transition_count(), 0);
        assert_eq!(net.place_count(), 2, "just source and sink");
    }

    #[test]
    fn scm_like_flow_fits_its_own_log() {
        let log = log_from(&[
            &["pushASN", "ship", "queryASN", "unload"],
            &["pushASN", "ship", "queryASN", "unload"],
        ]);
        let net = alpha_miner(&log);
        let counts = net.replay(&strs(&["pushASN", "ship", "queryASN", "unload"]));
        assert_eq!(counts.missing, 0);
        assert_eq!(counts.remaining, 0);
        // The anomalous ship-before-pushASN path misfits.
        let bad = net.replay(&strs(&["ship", "pushASN", "queryASN", "unload"]));
        assert!(bad.missing > 0);
    }
}
