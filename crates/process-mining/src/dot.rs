//! Graphviz DOT export.
//!
//! Renders mined models for Figure-2/4-style inspection: Petri nets (places
//! as circles, transitions as boxes) and dependency graphs / DFGs (activities
//! as boxes with frequencies, edges annotated with counts).

use crate::dfg::DirectlyFollowsGraph;
use crate::heuristics::DependencyGraph;
use crate::petri::PetriNet;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Render a Petri net as DOT.
pub fn petri_to_dot(net: &PetriNet) -> String {
    let mut out = String::from("digraph petri {\n  rankdir=LR;\n");
    for (i, p) in net.places.iter().enumerate() {
        let shape = if i == net.source {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  p{i} [shape={shape}, label=\"{}\"];", escape(p));
    }
    for (i, t) in net.transitions.iter().enumerate() {
        let _ = writeln!(out, "  t{i} [shape=box, label=\"{}\"];", escape(t));
    }
    for (t, places) in &net.inputs {
        for p in places {
            let _ = writeln!(out, "  p{p} -> t{t};");
        }
    }
    for (t, places) in &net.outputs {
        for p in places {
            let _ = writeln!(out, "  t{t} -> p{p};");
        }
    }
    out.push_str("}\n");
    out
}

/// Render a directly-follows graph as DOT with edge frequencies.
pub fn dfg_to_dot(dfg: &DirectlyFollowsGraph) -> String {
    let mut out = String::from("digraph dfg {\n  rankdir=LR;\n");
    let _ = writeln!(out, "  __start [shape=circle, label=\"▶\"];");
    let _ = writeln!(out, "  __end [shape=doublecircle, label=\"■\"];");
    for a in dfg.activities() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box, label=\"{} ({})\"];",
            escape(a),
            escape(a),
            dfg.activity_count(a)
        );
    }
    for (a, n) in dfg.starts() {
        let _ = writeln!(out, "  __start -> \"{}\" [label=\"{n}\"];", escape(a));
    }
    for (a, b, n) in dfg.edges() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{n}\"];",
            escape(a),
            escape(b)
        );
    }
    for (a, n) in dfg.ends() {
        let _ = writeln!(out, "  \"{}\" -> __end [label=\"{n}\"];", escape(a));
    }
    out.push_str("}\n");
    out
}

/// Render a heuristics-miner dependency graph as DOT, annotating each edge
/// with its dependency measure and observation count.
pub fn dependency_to_dot(graph: &DependencyGraph) -> String {
    let mut out = String::from("digraph dependency {\n  rankdir=LR;\n");
    for (a, n) in &graph.activity_counts {
        let loop_mark = if graph.self_loops.contains(a) {
            " ⟲"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box, label=\"{} ({n}){loop_mark}\"];",
            escape(a),
            escape(a)
        );
    }
    for ((a, b), (dep, obs)) in &graph.edges {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{dep:.2} ({obs})\"];",
            escape(a),
            escape(b)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::alpha_miner;
    use crate::eventlog::log_from;
    use crate::heuristics::{heuristics_miner, HeuristicsConfig};

    #[test]
    fn petri_dot_structure() {
        let net = alpha_miner(&log_from(&[&["a", "b"]]));
        let dot = petri_to_dot(&net);
        assert!(dot.starts_with("digraph petri {"));
        assert!(dot.contains("shape=box, label=\"a\""));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dfg_dot_contains_frequencies() {
        let dfg = DirectlyFollowsGraph::from_log(&log_from(&[&["a", "b"], &["a", "b"]]));
        let dot = dfg_to_dot(&dfg);
        assert!(dot.contains("\"a\" -> \"b\" [label=\"2\"]"));
        assert!(dot.contains("a (2)"));
        assert!(dot.contains("__start"));
        assert!(dot.contains("__end"));
    }

    #[test]
    fn dependency_dot_renders_measures() {
        let g = heuristics_miner(
            &log_from(&[&["a", "b"], &["a", "b"], &["a", "b"]]),
            &HeuristicsConfig {
                dependency_threshold: 0.5,
                min_observations: 2,
            },
        );
        let dot = dependency_to_dot(&g);
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.contains("(3)"));
    }

    #[test]
    fn quotes_are_escaped() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
