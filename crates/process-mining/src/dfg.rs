//! Directly-follows graphs.
//!
//! `a ≻ b` counts how often activity `b` immediately follows `a` in some
//! trace. The DFG underlies the footprint matrix, the heuristics miner, and
//! the frequency annotations of Figure-2-style model renderings.

use crate::eventlog::EventLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Directly-follows counts plus start/end frequencies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DirectlyFollowsGraph {
    edges: BTreeMap<(String, String), usize>,
    starts: BTreeMap<String, usize>,
    ends: BTreeMap<String, usize>,
    activity_counts: BTreeMap<String, usize>,
}

impl DirectlyFollowsGraph {
    /// Build the DFG of a log.
    pub fn from_log(log: &EventLog) -> Self {
        let mut g = DirectlyFollowsGraph::default();
        for trace in log.traces() {
            if let Some(first) = trace.activities.first() {
                *g.starts.entry(first.clone()).or_insert(0) += 1;
            }
            if let Some(last) = trace.activities.last() {
                *g.ends.entry(last.clone()).or_insert(0) += 1;
            }
            for a in &trace.activities {
                *g.activity_counts.entry(a.clone()).or_insert(0) += 1;
            }
            for w in trace.activities.windows(2) {
                *g.edges.entry((w[0].clone(), w[1].clone())).or_insert(0) += 1;
            }
        }
        g
    }

    /// Record the first event of a new trace: `activity` both starts and
    /// (for now) ends it. Part of the incremental-update entry point used by
    /// streaming consumers that maintain a DFG as events arrive.
    pub fn record_trace_start(&mut self, activity: &str) {
        *self.starts.entry(activity.to_string()).or_insert(0) += 1;
        *self.ends.entry(activity.to_string()).or_insert(0) += 1;
        *self
            .activity_counts
            .entry(activity.to_string())
            .or_insert(0) += 1;
    }

    /// Record that a trace previously ending in `prev` gained `activity`:
    /// the `prev ≻ activity` edge appears and the trace's end shifts.
    pub fn record_trace_extension(&mut self, prev: &str, activity: &str) {
        *self
            .edges
            .entry((prev.to_string(), activity.to_string()))
            .or_insert(0) += 1;
        if let Some(n) = self.ends.get_mut(prev) {
            *n -= 1;
            if *n == 0 {
                self.ends.remove(prev);
            }
        }
        *self.ends.entry(activity.to_string()).or_insert(0) += 1;
        *self
            .activity_counts
            .entry(activity.to_string())
            .or_insert(0) += 1;
    }

    /// Retract a trace's evicted *head* event (sliding-window eviction,
    /// the inverse of the record/extension pair that admitted it):
    /// `head` stops being the trace's start; with a surviving `next` event
    /// the start moves to `next` and the `head ≻ next` edge loses one
    /// count, without one the trace vanished and `head` stops being its
    /// end too. Entries whose counts reach zero are removed, so the graph
    /// stays identical to one built fresh from the retained traces.
    pub fn unrecord_trace_head(&mut self, head: &str, next: Option<&str>) {
        fn dec(map: &mut BTreeMap<String, usize>, key: &str) {
            match map.get_mut(key) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    map.remove(key);
                }
                None => panic!("unrecord without a matching record for {key:?}"),
            }
        }
        dec(&mut self.starts, head);
        match next {
            Some(next) => {
                let edge = (head.to_string(), next.to_string());
                match self.edges.get_mut(&edge) {
                    Some(n) if *n > 1 => *n -= 1,
                    Some(_) => {
                        self.edges.remove(&edge);
                    }
                    None => panic!("unrecord of untracked edge {edge:?}"),
                }
                *self.starts.entry(next.to_string()).or_insert(0) += 1;
            }
            None => dec(&mut self.ends, head),
        }
        dec(&mut self.activity_counts, head);
    }

    /// Fold another DFG into this one (sharded-ingest merge): every count —
    /// edges, starts, ends, activities — is summed key-by-key. The result
    /// treats the two graphs' trace sets as disjoint; when a logical trace
    /// actually spans the shard boundary, follow up with
    /// [`stitch_traces`](Self::stitch_traces) per spanning case.
    pub fn absorb(&mut self, other: &DirectlyFollowsGraph) {
        for (edge, &n) in &other.edges {
            *self.edges.entry(edge.clone()).or_insert(0) += n;
        }
        for (a, &n) in &other.starts {
            *self.starts.entry(a.clone()).or_insert(0) += n;
        }
        for (a, &n) in &other.ends {
            *self.ends.entry(a.clone()).or_insert(0) += n;
        }
        for (a, &n) in &other.activity_counts {
            *self.activity_counts.entry(a.clone()).or_insert(0) += n;
        }
    }

    /// Join two trace fragments of the same case across a shard boundary
    /// (after [`absorb`](Self::absorb)): the earlier fragment ended in
    /// `prev_tail`, the later one started with `head`. The later fragment's
    /// start and the earlier fragment's end were both counted as if the
    /// fragments were whole traces; joining them replaces those two
    /// boundary facts with the `prev_tail ≻ head` edge — exactly what one
    /// continuous trace would have recorded.
    pub fn stitch_traces(&mut self, prev_tail: &str, head: &str) {
        fn dec(map: &mut BTreeMap<String, usize>, key: &str) {
            match map.get_mut(key) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    map.remove(key);
                }
                None => panic!("stitch without a matching boundary count for {key:?}"),
            }
        }
        dec(&mut self.starts, head);
        dec(&mut self.ends, prev_tail);
        *self
            .edges
            .entry((prev_tail.to_string(), head.to_string()))
            .or_insert(0) += 1;
    }

    /// How often `b` directly follows `a`.
    pub fn count(&self, a: &str, b: &str) -> usize {
        self.edges
            .get(&(a.to_string(), b.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Whether `a ≻ b` occurs at least once.
    pub fn follows(&self, a: &str, b: &str) -> bool {
        self.count(a, b) > 0
    }

    /// All edges with counts.
    pub fn edges(&self) -> impl Iterator<Item = (&str, &str, usize)> {
        self.edges
            .iter()
            .map(|((a, b), c)| (a.as_str(), b.as_str(), *c))
    }

    /// Activities that start traces, with frequencies.
    pub fn starts(&self) -> &BTreeMap<String, usize> {
        &self.starts
    }

    /// Activities that end traces, with frequencies.
    pub fn ends(&self) -> &BTreeMap<String, usize> {
        &self.ends
    }

    /// Total occurrences of an activity.
    pub fn activity_count(&self, a: &str) -> usize {
        self.activity_counts.get(a).copied().unwrap_or(0)
    }

    /// All activities seen.
    pub fn activities(&self) -> Vec<&str> {
        self.activity_counts.keys().map(String::as_str).collect()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eventlog::log_from;

    #[test]
    fn counts_direct_succession() {
        let g =
            DirectlyFollowsGraph::from_log(&log_from(&[&["a", "b", "c"], &["a", "b", "b", "c"]]));
        assert_eq!(g.count("a", "b"), 2);
        assert_eq!(g.count("b", "b"), 1);
        assert_eq!(g.count("b", "c"), 2);
        assert_eq!(g.count("a", "c"), 0, "not DIRECTLY followed");
        assert!(g.follows("a", "b"));
        assert!(!g.follows("c", "a"));
    }

    #[test]
    fn starts_ends_and_activity_counts() {
        let g = DirectlyFollowsGraph::from_log(&log_from(&[&["a", "b"], &["c", "b"]]));
        assert_eq!(g.starts().get("a"), Some(&1));
        assert_eq!(g.starts().get("c"), Some(&1));
        assert_eq!(g.ends().get("b"), Some(&2));
        assert_eq!(g.activity_count("b"), 2);
        assert_eq!(g.activities(), vec!["a", "b", "c"]);
    }

    #[test]
    fn edges_iterator_is_sorted() {
        let g = DirectlyFollowsGraph::from_log(&log_from(&[&["b", "a"], &["a", "b"]]));
        let edges: Vec<(&str, &str, usize)> = g.edges().collect();
        assert_eq!(edges, vec![("a", "b", 1), ("b", "a", 1)]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn incremental_updates_match_from_log() {
        // Replay two traces event-by-event and compare with the batch build.
        let traces: &[&[&str]] = &[&["a", "b", "c"], &["a", "b", "b"]];
        let mut incremental = DirectlyFollowsGraph::default();
        for trace in traces {
            for (i, activity) in trace.iter().enumerate() {
                if i == 0 {
                    incremental.record_trace_start(activity);
                } else {
                    incremental.record_trace_extension(trace[i - 1], activity);
                }
            }
        }
        let batch = DirectlyFollowsGraph::from_log(&log_from(traces));
        assert_eq!(incremental.starts(), batch.starts());
        assert_eq!(incremental.ends(), batch.ends());
        let inc_edges: Vec<_> = incremental.edges().collect();
        let batch_edges: Vec<_> = batch.edges().collect();
        assert_eq!(inc_edges, batch_edges);
        assert_eq!(incremental.activity_count("b"), batch.activity_count("b"));
    }

    /// Absorb + per-spanning-case stitches must equal building the DFG from
    /// the joined traces directly.
    #[test]
    fn absorb_and_stitch_equal_joined_build() {
        // Case X spans the boundary: ["a","b"] ++ ["c","d"]; case Y lives
        // entirely in the first shard; case Z entirely in the second.
        let left = DirectlyFollowsGraph::from_log(&log_from(&[&["a", "b"], &["y1", "y2"]]));
        let right = DirectlyFollowsGraph::from_log(&log_from(&[&["c", "d"], &["z1"]]));
        let mut merged = left.clone();
        merged.absorb(&right);
        merged.stitch_traces("b", "c");
        let joined = DirectlyFollowsGraph::from_log(&log_from(&[
            &["a", "b", "c", "d"],
            &["y1", "y2"],
            &["z1"],
        ]));
        assert_eq!(format!("{merged:?}"), format!("{joined:?}"));
        // Absorbing an empty graph is the identity.
        let before = format!("{merged:?}");
        merged.absorb(&DirectlyFollowsGraph::default());
        assert_eq!(format!("{merged:?}"), before);
    }

    #[test]
    fn empty_log_yields_empty_graph() {
        let g = DirectlyFollowsGraph::from_log(&EventLog::new());
        assert_eq!(g.edge_count(), 0);
        assert!(g.activities().is_empty());
    }
}
