//! XES export.
//!
//! [XES](http://xes-standard.org/) (eXtensible Event Stream, IEEE 1849) is
//! the interchange format of the process-mining ecosystem — ProM, Disco and
//! Celonis (the tools the paper lists in §2.2) all import it. Exporting the
//! generated event logs lets the paper's "preprocessed blockchain log can be
//! directly obtained" claim extend to external tooling.

use crate::eventlog::EventLog;
use std::fmt::Write as _;

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Serialize an event log as an XES document.
///
/// Each trace carries its CaseID as `concept:name`; each event carries the
/// activity as `concept:name` and its position as `blockoptr:commit_order`
/// (the paper orders events by commit order rather than timestamp, §4.2).
pub fn to_xes(log: &EventLog) -> String {
    let mut out = String::with_capacity(log.event_count() * 96 + 512);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(
        "<log xes.version=\"1.0\" xes.features=\"\" xmlns=\"http://www.xes-standard.org/\">\n",
    );
    out.push_str("  <extension name=\"Concept\" prefix=\"concept\" uri=\"http://www.xes-standard.org/concept.xesext\"/>\n");
    out.push_str("  <string key=\"concept:name\" value=\"blockoptr blockchain log\"/>\n");
    for trace in log.traces() {
        out.push_str("  <trace>\n");
        let _ = writeln!(
            out,
            "    <string key=\"concept:name\" value=\"{}\"/>",
            xml_escape(&trace.case_id)
        );
        for (i, activity) in trace.activities.iter().enumerate() {
            out.push_str("    <event>\n");
            let _ = writeln!(
                out,
                "      <string key=\"concept:name\" value=\"{}\"/>",
                xml_escape(activity)
            );
            let _ = writeln!(
                out,
                "      <int key=\"blockoptr:commit_order\" value=\"{i}\"/>"
            );
            out.push_str("    </event>\n");
        }
        out.push_str("  </trace>\n");
    }
    out.push_str("</log>\n");
    out
}

/// Parse a (subset of) XES back into an event log — enough to round-trip
/// [`to_xes`] output and ingest simple exports from other tools. Only
/// `concept:name` attributes of traces and events are interpreted.
pub fn from_xes(xes: &str) -> Result<EventLog, String> {
    use crate::eventlog::Trace;
    let mut log = EventLog::new();
    let mut case: Option<String> = None;
    let mut activities: Vec<String> = Vec::new();
    let mut in_event = false;
    let mut trace_no = 0usize;

    for (line_no, line) in xes.lines().enumerate() {
        let t = line.trim();
        if t.starts_with("<trace") {
            case = None;
            activities = Vec::new();
        } else if t.starts_with("</trace") {
            trace_no += 1;
            log.push(Trace::new(
                case.take().unwrap_or_else(|| format!("case{trace_no}")),
                std::mem::take(&mut activities),
            ));
        } else if t.starts_with("<event") {
            in_event = true;
        } else if t.starts_with("</event") {
            in_event = false;
        } else if t.contains("concept:name") {
            let value = t
                .split("value=\"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .ok_or_else(|| format!("line {}: malformed concept:name", line_no + 1))?;
            let unescaped = value
                .replace("&quot;", "\"")
                .replace("&apos;", "'")
                .replace("&lt;", "<")
                .replace("&gt;", ">")
                .replace("&amp;", "&");
            if in_event {
                activities.push(unescaped);
            } else if case.is_none() && !t.contains("blockoptr blockchain log") {
                case = Some(unescaped);
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eventlog::log_from;

    #[test]
    fn export_structure() {
        let log = log_from(&[&["pushASN", "ship"], &["pushASN"]]);
        let xes = to_xes(&log);
        assert!(xes.starts_with("<?xml"));
        assert_eq!(xes.matches("<trace>").count(), 2);
        assert_eq!(xes.matches("<event>").count(), 3);
        assert!(xes.contains("value=\"pushASN\""));
        assert!(xes.contains("xes-standard.org"));
    }

    #[test]
    fn round_trip() {
        let log = log_from(&[&["a", "b", "c"], &["a", "c"], &["b"]]);
        let back = from_xes(&to_xes(&log)).unwrap();
        assert_eq!(back.len(), log.len());
        for (x, y) in log.traces().iter().zip(back.traces()) {
            assert_eq!(x.activities, y.activities);
            assert_eq!(x.case_id, y.case_id);
        }
    }

    #[test]
    fn escapes_special_characters() {
        let log = log_from(&[&["a<b>&\"c\""]]);
        let xes = to_xes(&log);
        assert!(xes.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        let back = from_xes(&xes).unwrap();
        assert_eq!(back.traces()[0].activities[0], "a<b>&\"c\"");
    }

    #[test]
    fn empty_log() {
        let xes = to_xes(&EventLog::new());
        let back = from_xes(&xes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn events_carry_commit_order() {
        let log = log_from(&[&["x", "y"]]);
        let xes = to_xes(&log);
        assert!(xes.contains("blockoptr:commit_order\" value=\"0\""));
        assert!(xes.contains("blockoptr:commit_order\" value=\"1\""));
    }
}
