//! The α-algorithm footprint matrix.
//!
//! From the directly-follows relation `≻`, each activity pair falls into one
//! of four relations:
//!
//! * `a → b` — causality: `a ≻ b` and not `b ≻ a`;
//! * `a ← b` — reverse causality;
//! * `a ∥ b` — parallel: both `a ≻ b` and `b ≻ a`;
//! * `a # b` — choice/no relation: neither.

use crate::dfg::DirectlyFollowsGraph;
use crate::eventlog::EventLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Pairwise activity relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// Causality `a → b`.
    Causes,
    /// Reverse causality `a ← b`.
    CausedBy,
    /// Parallelism `a ∥ b`.
    Parallel,
    /// No relation `a # b`.
    Choice,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Relation::Causes => "→",
            Relation::CausedBy => "←",
            Relation::Parallel => "∥",
            Relation::Choice => "#",
        };
        f.write_str(s)
    }
}

/// The footprint matrix of a log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Footprint {
    activities: Vec<String>,
    matrix: BTreeMap<(String, String), Relation>,
}

impl Footprint {
    /// Compute the footprint of a log.
    pub fn from_log(log: &EventLog) -> Self {
        let dfg = DirectlyFollowsGraph::from_log(log);
        Self::from_dfg(&dfg, log.activities())
    }

    /// Compute the footprint from a pre-built DFG.
    pub fn from_dfg(dfg: &DirectlyFollowsGraph, activities: Vec<String>) -> Self {
        let mut matrix = BTreeMap::new();
        for a in &activities {
            for b in &activities {
                let ab = dfg.follows(a, b);
                let ba = dfg.follows(b, a);
                let rel = match (ab, ba) {
                    (true, true) => Relation::Parallel,
                    (true, false) => Relation::Causes,
                    (false, true) => Relation::CausedBy,
                    (false, false) => Relation::Choice,
                };
                matrix.insert((a.clone(), b.clone()), rel);
            }
        }
        Footprint { activities, matrix }
    }

    /// The relation between two activities (Choice if either is unknown).
    pub fn relation(&self, a: &str, b: &str) -> Relation {
        self.matrix
            .get(&(a.to_string(), b.to_string()))
            .copied()
            .unwrap_or(Relation::Choice)
    }

    /// The activity alphabet, sorted.
    pub fn activities(&self) -> &[String] {
        &self.activities
    }

    /// Whether `a → b`.
    pub fn causes(&self, a: &str, b: &str) -> bool {
        self.relation(a, b) == Relation::Causes
    }

    /// Whether `a # b` (needed for the α-algorithm's independence cliques).
    pub fn choice(&self, a: &str, b: &str) -> bool {
        self.relation(a, b) == Relation::Choice
    }

    /// Fraction of cells where two footprints agree (1.0 = identical
    /// behaviour over the union alphabet) — the basis of footprint
    /// conformance checking.
    pub fn agreement(&self, other: &Footprint) -> f64 {
        let mut alphabet: Vec<&String> = self
            .activities
            .iter()
            .chain(other.activities.iter())
            .collect();
        alphabet.sort();
        alphabet.dedup();
        if alphabet.is_empty() {
            return 1.0;
        }
        let total = alphabet.len() * alphabet.len();
        let mut agree = 0usize;
        for a in &alphabet {
            for b in &alphabet {
                if self.relation(a, b) == other.relation(a, b) {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }

    /// Render the matrix as a fixed-width table.
    pub fn render(&self) -> String {
        let width = self
            .activities
            .iter()
            .map(|a| a.len())
            .max()
            .unwrap_or(1)
            .max(2);
        let mut out = String::new();
        out.push_str(&format!("{:width$} ", ""));
        for b in &self.activities {
            out.push_str(&format!("{b:width$} "));
        }
        out.push('\n');
        for a in &self.activities {
            out.push_str(&format!("{a:width$} "));
            for b in &self.activities {
                out.push_str(&format!("{:width$} ", self.relation(a, b).to_string()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eventlog::log_from;

    fn simple() -> Footprint {
        // L = [<a,b,c>, <a,c,b>] — b and c are parallel after a.
        Footprint::from_log(&log_from(&[&["a", "b", "c"], &["a", "c", "b"]]))
    }

    #[test]
    fn causality_detected() {
        let f = simple();
        assert_eq!(f.relation("a", "b"), Relation::Causes);
        assert_eq!(f.relation("b", "a"), Relation::CausedBy);
        assert!(f.causes("a", "c"));
    }

    #[test]
    fn parallelism_detected() {
        let f = simple();
        assert_eq!(f.relation("b", "c"), Relation::Parallel);
        assert_eq!(f.relation("c", "b"), Relation::Parallel);
    }

    #[test]
    fn choice_detected() {
        let f = Footprint::from_log(&log_from(&[&["a", "b"], &["a", "c"]]));
        assert_eq!(f.relation("b", "c"), Relation::Choice);
        assert!(f.choice("b", "c"));
        // Self-relation of non-looping activities is #.
        assert!(f.choice("a", "a"));
    }

    #[test]
    fn self_loop_is_parallel() {
        let f = Footprint::from_log(&log_from(&[&["a", "a", "b"]]));
        assert_eq!(f.relation("a", "a"), Relation::Parallel);
    }

    #[test]
    fn identical_logs_agree_fully() {
        let f = simple();
        let g = simple();
        assert!((f.agreement(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_behaviour_lowers_agreement() {
        let f = Footprint::from_log(&log_from(&[&["a", "b", "c"]]));
        let g = Footprint::from_log(&log_from(&[&["c", "b", "a"]]));
        let agreement = f.agreement(&g);
        assert!(
            agreement < 0.8,
            "reversed flow should disagree: {agreement}"
        );
    }

    #[test]
    fn render_contains_symbols() {
        let text = simple().render();
        assert!(text.contains('→'));
        assert!(text.contains('∥'));
        assert!(text.contains('#'));
    }

    #[test]
    fn unknown_activity_is_choice() {
        let f = simple();
        assert_eq!(f.relation("a", "zzz"), Relation::Choice);
    }
}
