//! The heuristics miner (Weijters, van der Aalst, Alves de Medeiros, 2006).
//!
//! Noise-robust alternative to the Alpha miner: instead of crisp footprint
//! relations it computes a *dependency measure*
//!
//! ```text
//! a ⇒ b  =  (|a ≻ b| − |b ≻ a|) / (|a ≻ b| + |b ≻ a| + 1)
//! ```
//!
//! and keeps edges above a dependency threshold with enough observations —
//! the practical choice for blockchain logs where transaction failures and
//! manual errors inject noise (the Figure-2 anomalous branches survive only
//! if their frequency is significant).

use crate::dfg::DirectlyFollowsGraph;
use crate::eventlog::EventLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mining thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HeuristicsConfig {
    /// Minimum dependency measure for an edge (classic default 0.9; lower it
    /// to surface rarer behaviour).
    pub dependency_threshold: f64,
    /// Minimum absolute `a ≻ b` observations for an edge.
    pub min_observations: usize,
}

impl Default for HeuristicsConfig {
    fn default() -> Self {
        HeuristicsConfig {
            dependency_threshold: 0.9,
            min_observations: 2,
        }
    }
}

/// The mined dependency graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DependencyGraph {
    /// Kept edges `(a, b)` with `(dependency, observations)`.
    pub edges: BTreeMap<(String, String), (f64, usize)>,
    /// Activities with self-loops (`a ⇒ a` above threshold).
    pub self_loops: Vec<String>,
    /// Start activities with frequencies.
    pub starts: BTreeMap<String, usize>,
    /// End activities with frequencies.
    pub ends: BTreeMap<String, usize>,
    /// Activity frequencies.
    pub activity_counts: BTreeMap<String, usize>,
}

/// The raw dependency measure between two distinct activities.
pub fn dependency(dfg: &DirectlyFollowsGraph, a: &str, b: &str) -> f64 {
    if a == b {
        let aa = dfg.count(a, a) as f64;
        return aa / (aa + 1.0);
    }
    let ab = dfg.count(a, b) as f64;
    let ba = dfg.count(b, a) as f64;
    (ab - ba) / (ab + ba + 1.0)
}

/// Mine a dependency graph from a log.
pub fn heuristics_miner(log: &EventLog, config: &HeuristicsConfig) -> DependencyGraph {
    mine_from_dfg(&DirectlyFollowsGraph::from_log(log), config)
}

/// Mine a dependency graph directly from a directly-follows graph — the
/// incremental entry point: streaming consumers maintain the DFG as events
/// arrive (see [`DirectlyFollowsGraph::record_trace_extension`]) and re-mine
/// on demand at a cost independent of the event count.
pub fn mine_from_dfg(dfg: &DirectlyFollowsGraph, config: &HeuristicsConfig) -> DependencyGraph {
    let activities: Vec<String> = dfg.activities().iter().map(|a| a.to_string()).collect();
    let mut graph = DependencyGraph {
        starts: dfg.starts().clone(),
        ends: dfg.ends().clone(),
        ..Default::default()
    };
    for a in &activities {
        graph
            .activity_counts
            .insert(a.clone(), dfg.activity_count(a));
        if dependency(dfg, a, a) >= config.dependency_threshold
            && dfg.count(a, a) >= config.min_observations
        {
            graph.self_loops.push(a.clone());
        }
        for b in &activities {
            if a == b {
                continue;
            }
            let dep = dependency(dfg, a, b);
            let obs = dfg.count(a, b);
            if dep >= config.dependency_threshold && obs >= config.min_observations {
                graph.edges.insert((a.clone(), b.clone()), (dep, obs));
            }
        }
    }
    graph
}

impl DependencyGraph {
    /// Whether the mined model contains edge `a → b`.
    pub fn has_edge(&self, a: &str, b: &str) -> bool {
        self.edges.contains_key(&(a.to_string(), b.to_string()))
    }

    /// Successor activities of `a`.
    pub fn successors(&self, a: &str) -> Vec<&str> {
        self.edges
            .keys()
            .filter(|(x, _)| x == a)
            .map(|(_, y)| y.as_str())
            .collect()
    }

    /// Number of kept edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eventlog::log_from;

    #[test]
    fn dependency_measure_basics() {
        let dfg =
            DirectlyFollowsGraph::from_log(&log_from(&[&["a", "b"], &["a", "b"], &["a", "b"]]));
        let d = dependency(&dfg, "a", "b");
        assert!((d - 0.75).abs() < 1e-12, "3/(3+0+1): {d}");
        assert!(dependency(&dfg, "b", "a") < 0.0, "reverse is negative");
    }

    #[test]
    fn self_loop_dependency() {
        let dfg = DirectlyFollowsGraph::from_log(&log_from(&[&["a", "a", "a", "b"]]));
        let d = dependency(&dfg, "a", "a");
        assert!((d - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn miner_keeps_strong_edges_only() {
        // a→b 10×; b→a once (noise).
        let mut seqs: Vec<&[&str]> = vec![&["a", "b"]; 10];
        seqs.push(&["b", "a"]);
        let g = heuristics_miner(
            &log_from(&seqs),
            &HeuristicsConfig {
                dependency_threshold: 0.6,
                min_observations: 2,
            },
        );
        assert!(g.has_edge("a", "b"));
        assert!(!g.has_edge("b", "a"), "noise edge dropped");
    }

    #[test]
    fn min_observations_filters_rare_edges() {
        let g = heuristics_miner(
            &log_from(&[&["a", "b"], &["a", "c"], &["a", "c"]]),
            &HeuristicsConfig {
                dependency_threshold: 0.3,
                min_observations: 2,
            },
        );
        assert!(g.has_edge("a", "c"));
        assert!(!g.has_edge("a", "b"), "single observation dropped");
    }

    #[test]
    fn self_loops_detected() {
        let g = heuristics_miner(
            &log_from(&[&["a", "a", "a", "a", "b"]]),
            &HeuristicsConfig {
                dependency_threshold: 0.7,
                min_observations: 2,
            },
        );
        assert_eq!(g.self_loops, vec!["a"]);
    }

    #[test]
    fn graph_accessors() {
        let g = heuristics_miner(
            &log_from(&[&["a", "b"], &["a", "b"], &["a", "c"], &["a", "c"]]),
            &HeuristicsConfig {
                dependency_threshold: 0.5,
                min_observations: 2,
            },
        );
        let mut succ = g.successors("a");
        succ.sort_unstable();
        assert_eq!(succ, vec!["b", "c"]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.starts.get("a"), Some(&4));
        assert_eq!(g.activity_counts.get("a"), Some(&4));
    }
}
