//! # blockoptr-suite
//!
//! Façade crate for the BlockOptR reproduction (SIGMOD'23: "How To Optimize
//! My Blockchain? A Multi-Level Recommendation Approach"). Re-exports every
//! workspace crate so examples and downstream users depend on one crate:
//!
//! ```
//! use blockoptr_suite::prelude::*;
//!
//! let cv = workload::spec::ControlVariables {
//!     transactions: 500,
//!     ..Default::default()
//! };
//! let bundle = workload::synthetic::generate(&cv);
//! let output = bundle.run(cv.network_config());
//!
//! // One-shot batch analysis…
//! let analysis = Analyzer::new().analyze_ledger(&output.ledger).unwrap();
//! assert_eq!(analysis.log.len(), output.report.committed);
//!
//! // …or incrementally, as a monitoring loop would see the chain.
//! let mut session = Analyzer::new().session().unwrap();
//! for block in output.ledger.blocks() {
//!     session.ingest_block(block);
//! }
//! let streamed = session.snapshot().unwrap();
//! assert_eq!(
//!     streamed.recommendation_names(),
//!     analysis.recommendation_names()
//! );
//! ```
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use blockoptr;
pub use chaincode;
pub use fabric_sim;
pub use process_mining;
pub use sim_core;
pub use workload;

/// One-stop imports for the common pipeline:
/// simulate → extract log → derive metrics → recommend → apply → re-simulate.
pub mod prelude {
    pub use blockoptr::prelude::*;
}
