//! Digital-rights-management scenario (paper §6.2, Figure 14): a Play-heavy
//! workload hammers popular music keys; BlockOptR recommends delta writes
//! and smart-contract partitioning, both implemented as contract variants.
//!
//! ```text
//! cargo run --release --example drm_delta_writes
//! ```

use blockoptr_suite::prelude::*;
use workload::drm;

fn main() {
    let spec = drm::DrmSpec::default();
    let bundle = drm::generate(&spec);
    let cfg = NetworkConfig::default;

    let output = bundle.run(cfg());
    let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
    println!("── DRM baseline: {}", output.report.figure_row());
    for rec in &analysis.recommendations {
        println!("  [{}] {}: {}", rec.level(), rec.name(), rec.rationale());
    }

    // Delta writes: plays become blind writes to unique delta keys; revenue
    // aggregation pays the read cost instead.
    let delta = drm::delta_writes(bundle.clone());
    let after_delta = delta.run(cfg());
    println!("── delta writes:    {}", after_delta.report.figure_row());

    // Smart contract partitioning: play counting and metadata split into
    // separate chaincodes with disjoint world states.
    let partitioned = drm::partitioned(bundle.clone(), &spec);
    let after_part = partitioned.run(cfg());
    println!("── partitioned:     {}", after_part.report.figure_row());

    // Everything combined (partitioned chaincodes + delta plays +
    // reordering of the reporting reads).
    let (requests, _) = apply_user_level(&bundle.requests, &analysis.recommendations);
    let all = drm::partitioned_delta(bundle.clone().with_requests(requests), &spec);
    let after_all = all.run(cfg());
    println!("── all combined:    {}", after_all.report.figure_row());

    println!(
        "\nsuccess rate: {:.1} % → {:.1} % (delta) / {:.1} % (partition) / {:.1} % (all)",
        output.report.success_rate_pct,
        after_delta.report.success_rate_pct,
        after_part.report.success_rate_pct,
        after_all.report.success_rate_pct,
    );
}
