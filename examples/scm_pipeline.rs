//! Supply-chain scenario (paper §3, §6.2): mine the process model from the
//! blockchain log, spot the illogical branches, prune + reorder, and verify
//! compliance of the redesigned process.
//!
//! ```text
//! cargo run --release --example scm_pipeline
//! ```

use blockoptr_suite::prelude::*;
use process_mining::conformance::footprint_conformance;
use process_mining::dfg::DirectlyFollowsGraph;
use process_mining::eventlog::log_from;
use workload::scm;

fn main() {
    let spec = scm::ScmSpec::default();
    let bundle = scm::generate(&spec);
    let cfg = NetworkConfig::default;

    // Baseline.
    let output = bundle.run(cfg());
    let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
    println!("── SCM baseline: {}", output.report.figure_row());
    println!(
        "recommended: {}",
        analysis.recommendation_names().join(", ")
    );

    // The mined model exposes the anomalous branches of Figure 2.
    let dfg = DirectlyFollowsGraph::from_log(&analysis.event_log);
    println!(
        "anomalies: ship≻pushASN {}×, traces starting with ship {}",
        dfg.count("ship", "pushASN"),
        dfg.starts().get("ship").copied().unwrap_or(0)
    );

    // Process model pruning: the contract aborts anomalous flows early.
    let pruned = scm::pruned(bundle.clone());
    let after_prune = pruned.run(cfg());
    println!("── pruned contract: {}", after_prune.report.figure_row());
    println!(
        "early-aborted anomalous transactions: {}",
        after_prune.report.early_aborted
    );

    // Activity reordering: defer the reporting activities.
    let (requests, applied) = apply_user_level(&bundle.requests, &analysis.recommendations);
    println!("applied: {}", applied.join("; "));
    let reordered = bundle.clone().with_requests(requests);
    let after_reorder = reordered.run(cfg());
    println!(
        "── reordered schedule: {}",
        after_reorder.report.figure_row()
    );

    // Compliance check (Figure 4): the redesigned behaviour against the
    // intended flow.
    let re_analysis = BlockOptR::new().analyze_ledger(&after_reorder.ledger);
    let designed = log_from(&[
        &["pushASN", "ship", "queryASN", "unload"],
        &["pushASN", "ship", "queryASN", "unload", "queryProducts"],
        &["pushASN", "ship", "queryASN", "unload", "updateAuditInfo"],
    ]);
    println!(
        "footprint agreement with the designed model: {:.2}",
        footprint_conformance(&designed, &re_analysis.event_log)
    );
}
