//! Loan-application scenario (paper §5.1.3/§6.3, Figure 17): replay a
//! BPI-Challenge-2017-like loan process where one bank employee handles most
//! applications. With the paper's employee-keyed data model that employee's
//! key is hot; BlockOptR recommends re-keying by application id.
//!
//! ```text
//! cargo run --release --example loan_application
//! ```

use blockoptr_suite::prelude::*;
use workload::lap;

fn main() {
    for rate in [10.0, 300.0] {
        let spec = lap::LapSpec {
            send_rate: rate,
            ..Default::default()
        };
        let bundle = lap::generate(&spec);
        let cfg = NetworkConfig::default;

        let output = bundle.run(cfg());
        let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
        println!(
            "── LAP @ {rate:.0} tps, employee-keyed: {}",
            output.report.figure_row()
        );
        if let Some(hot) = analysis.metrics.keys.hotkeys.first() {
            println!(
                "  hot key: {hot} (Kfreq {}, activities {:?})",
                analysis.metrics.keys.kfreq_of(hot),
                analysis.metrics.keys.significant_activities(hot)
            );
        }
        println!(
            "  cases derived from family {:?} ({} applications)",
            analysis.case_derivation.family, analysis.case_derivation.distinct_cases
        );
        println!(
            "  recommended: {}",
            analysis.recommendation_names().join(", ")
        );

        // The altered data model: applicationID as the primary key, the
        // employee recorded inside the value.
        let altered = lap::by_application(bundle.clone());
        let after = altered.run(cfg());
        println!(
            "── LAP @ {rate:.0} tps, application-keyed: {}",
            after.report.figure_row()
        );
        println!(
            "  success {:.1} % → {:.1} %\n",
            output.report.success_rate_pct, after.report.success_rate_pct
        );
    }
}
