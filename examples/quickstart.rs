//! Quickstart: simulate a Fabric network under a synthetic workload, let
//! BlockOptR analyze the chain, and print its multi-level recommendations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blockoptr_suite::prelude::*;
use workload::spec::ControlVariables;

fn main() {
    // 1. Describe the workload with the paper's Table-2 control variables
    //    (defaults: uniform genChain mix, 2 orgs, block count 100, 300 tps).
    let cv = ControlVariables::default();
    let bundle = workload::synthetic::generate(&cv);

    // 2. Run it through the simulated execute-order-validate pipeline.
    let output = bundle.run(cv.network_config());
    println!("── baseline run ──");
    println!("{}", output.report);

    // 3. BlockOptR: preprocess the chain, derive metrics, mine the process
    //    model, and evaluate the nine recommendation rules.
    let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
    println!("{}", blockoptr::report::render(&analysis));

    // 4. Apply the automatic recommendations (workload + configuration) and
    //    re-run.
    let (requests, user_changes) = apply_user_level(&bundle.requests, &analysis.recommendations);
    let (config, system_changes) =
        apply_system_level(&cv.network_config(), &analysis.recommendations);
    println!("applying: {:?} {:?}", user_changes, system_changes);

    let optimized = bundle.clone().with_requests(requests);
    let after = optimized.run(config);
    println!("── optimized run ──");
    println!("{}", after.report);
    println!(
        "success rate {:.1} % → {:.1} %, avg latency {:.2} s → {:.2} s",
        output.report.success_rate_pct,
        after.report.success_rate_pct,
        output.report.avg_latency_s,
        after.report.avg_latency_s,
    );
}
