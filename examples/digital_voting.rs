//! Digital-voting scenario (paper §6.2, Figure 16): during the voting phase
//! every ballot updates one of a handful of party keys, so per block only
//! one vote per party survives MVCC validation. BlockOptR detects the
//! hotkeys, sees a single failing activity, and recommends re-keying the
//! data model to `voterID` — after which every vote is a unique insert and
//! the success rate reaches 100 %.
//!
//! ```text
//! cargo run --release --example digital_voting
//! ```

use blockoptr_suite::prelude::*;
use workload::dv;

fn main() {
    let spec = dv::DvSpec::default();
    let bundle = dv::generate(&spec);
    let cfg = NetworkConfig::default;

    let output = bundle.run(cfg());
    let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
    println!(
        "── DV baseline (party-keyed): {}",
        output.report.figure_row()
    );
    println!(
        "hotkeys: {:?}",
        analysis
            .metrics
            .keys
            .hotkeys
            .iter()
            .take(4)
            .collect::<Vec<_>>()
    );
    for rec in &analysis.recommendations {
        println!("  [{}] {}: {}", rec.level(), rec.name(), rec.rationale());
    }

    // The altered data model: one ballot key per voter.
    let altered = dv::per_voter(bundle.clone());
    let after = altered.run(cfg());
    println!(
        "── voter-keyed model:          {}",
        after.report.figure_row()
    );

    // The paper's headline: no more transaction dependencies at all.
    assert!(
        after.report.success_rate_pct > 99.9,
        "per-voter ballots cannot conflict"
    );
    println!(
        "\nMVCC conflicts: {} → {}",
        output.report.mvcc_conflicts, after.report.mvcc_conflicts
    );

    // Verify with a fresh analysis that the recommendation disappears.
    let re_analysis = BlockOptR::new().analyze_ledger(&after.ledger);
    println!(
        "recommendations after the redesign: {:?}",
        re_analysis.recommendation_names()
    );
}
