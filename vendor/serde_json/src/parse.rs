//! A small recursive-descent JSON parser.

use serde::value::{Number, Value};
use std::fmt;

/// A JSON error (parse error with position, or a post-parse type mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse error; `None` for type mismatches.
    pos: Option<usize>,
}

impl Error {
    fn at(msg: impl Into<String>, pos: usize) -> Self {
        Error {
            msg: msg.into(),
            pos: Some(pos),
        }
    }

    pub(crate) fn from_de(e: serde::de::Error) -> Self {
        Error {
            msg: e.to_string(),
            pos: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} at byte {p}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::at("trailing characters after JSON value", pos));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    match bytes.get(*pos) {
        None => Err(Error::at("unexpected end of input", *pos)),
        Some(b'n') => expect_literal(bytes, pos, "null", Value::Null),
        Some(b't') => expect_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(b) => Err(Error::at(
            format!("unexpected character `{}`", *b as char),
            *pos,
        )),
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::at(format!("expected `{lit}`"), *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let c = match code {
                            // High surrogate: must be followed by an
                            // escaped low surrogate; combine the pair.
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                    return Err(Error::at(
                                        "high surrogate not followed by \\u escape",
                                        *pos,
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::at("invalid low surrogate", *pos));
                                }
                                *pos += 6;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::at("invalid surrogate pair", *pos))?
                            }
                            0xDC00..=0xDFFF => {
                                return Err(Error::at("unexpected low surrogate", *pos))
                            }
                            _ => char::from_u32(code)
                                .ok_or_else(|| Error::at("invalid \\u escape", *pos))?,
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::at("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                // JSON requires control characters to be escaped.
                return Err(Error::at("unescaped control character in string", *pos));
            }
            Some(_) => {
                // Copy the whole run up to the next quote, backslash, or
                // control byte in one go (the input is a &str, so the run
                // is valid UTF-8).
                let run_end = bytes[*pos..]
                    .iter()
                    .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
                    .map(|i| *pos + i)
                    .unwrap_or(bytes.len());
                out.push_str(
                    std::str::from_utf8(&bytes[*pos..run_end])
                        .map_err(|_| Error::at("invalid UTF-8", *pos))?,
                );
                *pos = run_end;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, Error> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| Error::at("truncated \\u escape", at))?;
    let hex = std::str::from_utf8(hex).map_err(|_| Error::at("invalid \\u escape", at))?;
    u32::from_str_radix(hex, 16).map_err(|_| Error::at("invalid \\u escape", at))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if !is_float {
        if text.starts_with('-') {
            // Parse the full text including the sign so i64::MIN (whose
            // magnitude overflows i64) round-trips.
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(n)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::Float(f)))
        .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error::at("expected `,` or `]` in array", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(Error::at("expected string key in object", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(Error::at("expected `:` after object key", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(Error::at("expected `,` or `}` in object", *pos)),
        }
    }
}
