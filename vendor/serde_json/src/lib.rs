//! Offline shim of `serde_json` over the serde shim's value model.
//!
//! Provides the four entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Error`] — plus [`Value`] for
//! hand-built JSON (the CLI's `--json` output).

mod parse;

pub use parse::Error;
pub use serde::value::{Number, Value};

use serde::{Deserialize, Serialize};

/// Render a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render(false))
}

/// Render a value as human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render(true))
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    T::from_value(&value).map_err(Error::from_de)
}

/// Parse JSON text into a loose [`Value`] tree.
pub fn value_from_str(text: &str) -> Result<Value, Error> {
    parse::parse(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64];
        assert!(to_string_pretty(&v).unwrap().contains("\n  1"));
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<String>("\"raw \u{1} control\"").is_err());
        assert!(from_str::<String>("\"tab\there\"").is_err());
        assert!(from_str::<u64>("{not json").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("[1, 2").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        // Surrogate pair: U+1F600 as ASCII-escaped JSON (e.g. from
        // Python's json.dumps).
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert_eq!(from_str::<String>("\"x\\ud83d\\ude00y\"").unwrap(), "x😀y");
        // Lone or malformed surrogates are errors, not silent corruption.
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83dabc\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ude00\"").is_err());
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        assert_eq!(from_str::<u64>(&to_string(&n).unwrap()).unwrap(), n);
    }

    #[test]
    fn extreme_i64_round_trips() {
        for n in [i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
            assert_eq!(from_str::<i64>(&to_string(&n).unwrap()).unwrap(), n);
        }
    }
}
