//! Offline shim of the `criterion` surface this workspace uses.
//!
//! crates.io is unreachable in this build environment, so this crate
//! re-implements the benchmarking entry points the `bench` crate imports:
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function` with [`Bencher::iter`] / [`Bencher::iter_batched`], and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is plain
//! wall-clock: a short warm-up, then `sample_size` timed samples; mean and
//! min are printed per benchmark (no statistical analysis, no HTML report).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n── bench group: {name} ──");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. transactions) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How much setup output to build per batch in
/// [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Report a rate alongside the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut bencher);
        let report = summarize(&bencher.samples);
        let rate = self
            .throughput
            .and_then(|t| report.mean_rate(t))
            .map(|r| format!("  ({r})"))
            .unwrap_or_default();
        eprintln!(
            "{}/{id}: mean {}  min {}  ({} samples){rate}",
            self.name,
            fmt_duration(report.mean),
            fmt_duration(report.min),
            bencher.samples.len(),
        );
        self
    }

    /// End the group (kept for API parity; output is printed eagerly).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Time `routine` once per sample. The routine's output is dropped
    /// outside the timed region.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, then the timed samples.
        black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            let out = black_box(routine());
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time and output
    /// destruction are excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.budget {
            let input = setup();
            let start = Instant::now();
            let out = black_box(routine(input));
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

struct Report {
    mean: Duration,
    min: Duration,
}

impl Report {
    fn mean_rate(&self, throughput: Throughput) -> Option<String> {
        let secs = self.mean.as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some(match throughput {
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / secs),
            Throughput::Bytes(n) => format!("{:.0} B/s", n as f64 / secs),
        })
    }
}

fn summarize(samples: &[Duration]) -> Report {
    if samples.is_empty() {
        return Report {
            mean: Duration::ZERO,
            min: Duration::ZERO,
        };
    }
    let total: Duration = samples.iter().sum();
    Report {
        mean: total / samples.len() as u32,
        min: *samples.iter().min().unwrap(),
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.2} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
