//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::ops::Range;

/// Generates `Vec`s whose length is drawn from `sizes` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, sizes }
}

/// See [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.sizes.start + 1 >= self.sizes.end {
            self.sizes.start
        } else {
            rng.gen_range(self.sizes.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
