//! Value-generation strategies (no shrinking).

use crate::TestRng;
use rand::Rng;
use std::ops::Range;

/// Generates random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f64);

/// Signed ranges sample through an unsigned offset.
impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i128 - self.start as i128) as u64;
        let offset = rng.gen_range(0..span.max(1));
        (self.start as i128 + offset as i128) as i64
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        let wide = (self.start as i64)..(self.end as i64);
        wide.generate(rng) as i32
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let wide = (self.start as f64)..(self.end as f64);
        wide.generate(rng) as f32
    }
}

/// [`Strategy::prop_map`]'s adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Object-safe strategy, for heterogeneous [`Union`] arms.
pub trait DynStrategy<V> {
    /// Draw one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Box a strategy for use in a [`Union`] (the `prop_oneof!` arms).
pub fn boxed_dyn<S>(s: S) -> Box<dyn DynStrategy<S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniformly picks one of several strategies per draw.
pub struct Union<V> {
    arms: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Build from boxed arms (use `prop_oneof!`).
    pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate_dyn(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
