//! Offline shim of the `proptest` surface this workspace uses.
//!
//! crates.io is unreachable in this build environment, so this crate
//! re-implements the pieces the property tests import: the [`Strategy`]
//! trait (ranges, [`Just`], tuples, `prop_map`, unions, collection
//! strategies) and the `proptest! { ... }` / `prop_oneof!` / `prop_assert*`
//! macros. Cases are generated from a deterministic per-test seed
//! (overridable via `PROPTEST_SEED`); there is **no shrinking** — a failing
//! case panics with the values visible via `prop_assert!`'s message.

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a generated case did not run to completion.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; tests here run multi-thousand-transaction
        // simulations per case, so the shim defaults lower.
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-test RNG: seeded from the test name, or from
/// `PROPTEST_SEED` when set (for reproducing a CI failure locally).
pub fn test_rng(test_name: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            return StdRng::seed_from_u64(seed);
        }
    }
    // FNV-1a over the test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Assert inside a property; failures panic with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Pick one of several strategies (uniformly) per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed_dyn($arm)),+])
    };
}

/// Define property tests: each `fn name(binding in strategy, ...)` runs the
/// body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases && attempts < config.cases * 16 {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                    }
                }
                assert!(
                    ran > 0,
                    "prop_assume! rejected every generated case in {}",
                    stringify!($name)
                );
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1usize), Just(2usize)]
            .prop_map(|n| n * 10))
        {
            prop_assert!(v == 10 || v == 20);
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn tuples_generate() {
        let strat = (0u64..5, Just("a"), 0.0f64..1.0);
        let mut rng = crate::test_rng("tuples_generate");
        let (n, s, f) = crate::Strategy::generate(&strat, &mut rng);
        assert!(n < 5);
        assert_eq!(s, "a");
        assert!((0.0..1.0).contains(&f));
    }
}
