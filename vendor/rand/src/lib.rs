//! Offline shim of the `rand` API surface this workspace uses.
//!
//! crates.io is unreachable in this build environment, so this crate
//! re-implements the handful of items `sim-core` (and the test harness)
//! imports: [`rngs::StdRng`], the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits, `gen`, `gen_range`, and [`Error`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! simulation workloads and fully deterministic per seed (though the streams
//! differ from upstream `StdRng`, which is a ChaCha cipher).

use std::fmt;
use std::ops::Range;

/// RNG error type (the shim's generators are infallible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core generator interface: raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (never fails in this shim).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw bits (the `gen()` surface).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable without bias (the `gen_range()` surface).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased draw in `[0, span)` by rejection sampling on the top of the
/// 64-bit word (Lemire-style would be faster; this keeps the code obvious).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let raw = rng.next_u64();
        if raw < zone {
            return raw % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                if span == 0 {
                    // Full-width u64 range: every word is valid.
                    return rng.next_u64() as $t;
                }
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience draws over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.gen_range(0..7usize) < 7);
            let x = r.gen_range(10..20u64);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn full_width_u64_range_works() {
        let mut r = StdRng::seed_from_u64(9);
        // Must not hang or panic.
        let _ = r.gen_range(0..u64::MAX);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
