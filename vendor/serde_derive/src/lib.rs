//! Offline shim of serde's derive macros.
//!
//! crates.io is unreachable in this build environment, so `syn`/`quote` are
//! unavailable; the item shape is parsed directly from the
//! [`proc_macro::TokenStream`]. The supported surface is exactly what the
//! workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, tuple, and struct variants (externally tagged:
//!   unit variants become strings, data variants become one-entry objects).
//!
//! Generic type parameters are not supported (no workspace type needs them);
//! lifetimes and attributes other than `#[serde(...)]` are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item a derive was placed on.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ── parsing ────────────────────────────────────────────────────────────

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let kw = ident_at(&tokens, pos).expect("struct or enum keyword");
    pos += 1;
    let name = ident_at(&tokens, pos).expect("item name");
    pos += 1;
    skip_generics(&tokens, &mut pos);
    match kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, got `{other}`"),
    }
}

fn ident_at(tokens: &[TokenTree], pos: usize) -> Option<String> {
    match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => Some(i.to_string()),
        _ => None,
    }
}

/// Skip any number of `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

/// Skip a balanced `<...>` generics list if present.
fn skip_generics(tokens: &[TokenTree], pos: &mut usize) {
    let Some(TokenTree::Punct(p)) = tokens.get(*pos) else {
        return;
    };
    if p.as_char() != '<' {
        return;
    }
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *pos += 1;
                        return;
                    }
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Field names of a `{ ... }` struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let Some(name) = ident_at(&tokens, pos) else {
            break;
        };
        fields.push(name);
        pos += 1;
        // Skip `: Type` until a top-level comma (angle brackets may nest).
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(pos) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
    }
    fields
}

/// Number of fields in a `(...)` tuple body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle = 0i32;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => fields += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        fields -= 1;
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let Some(name) = ident_at(&tokens, pos) else {
            break;
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the comma.
        while let Some(tok) = tokens.get(pos) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ── code generation ────────────────────────────────────────────────────

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                 let mut fields: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::value::Value::Object(fields)\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                // Newtype structs serialize transparently.
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ ::serde::value::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::value::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::value::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut inner: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::value::Value::Object(vec![(\"{vname}\".to_string(), ::serde::value::Value::Object(inner))])\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\").ok_or_else(|| ::serde::de::Error::missing_field(\"{f}\"))?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::de::Error> {{\n\
                 if !matches!(v, ::serde::value::Value::Object(_)) {{\n\
                 return Err(::serde::de::Error::expected(\"object ({name})\", v));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                     ::serde::value::Value::Array(items) if items.len() == {arity} => \
                     Ok({name}({})),\n\
                     _ => Err(::serde::de::Error::expected(\"{arity}-element array ({name})\", v)),\n\
                     }}",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::de::Error> {{ {body} }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::value::Value) -> Result<Self, ::serde::de::Error> {{ Ok({name}) }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        if *arity == 1 {
                            data_arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            data_arms.push_str(&format!(
                                "\"{vname}\" => match payload {{\n\
                                 ::serde::value::Value::Array(items) if items.len() == {arity} => \
                                 Ok({name}::{vname}({})),\n\
                                 _ => Err(::serde::de::Error::expected(\"{arity}-element array ({name}::{vname})\", payload)),\n\
                                 }},\n",
                                items.join(", ")
                            ));
                        }
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(payload.field(\"{f}\").ok_or_else(|| ::serde::de::Error::missing_field(\"{f}\"))?)?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::de::Error> {{\n\
                 match v {{\n\
                 ::serde::value::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
                 }},\n\
                 ::serde::value::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, payload) = &fields[0];\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::de::Error::expected(\"string or single-entry object ({name})\", v)),\n\
                 }}\n\
                 }}\n}}"
            )
        }
    }
}
