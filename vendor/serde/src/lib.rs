//! Offline shim of the `serde` facade.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, self-contained replacement. It keeps the two names the rest
//! of the workspace imports — the [`Serialize`] and [`Deserialize`] traits
//! and their derive macros — but collapses serde's zero-copy visitor
//! architecture into a simple tree model: serializing produces a
//! [`value::Value`] (a JSON-shaped tree), deserializing consumes one.
//!
//! The shim is *not* wire-compatible with upstream serde for every corner
//! case (maps with non-string keys serialize as arrays of pairs, newtype
//! structs are transparent), but it is self-consistent: for every type in
//! this workspace, `from_value(to_value(x)) == x`.

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::{Number, Value};

/// Serialize `self` into a JSON-shaped [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a JSON-shaped [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| de::Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(de::Error::expected(concat!("unsigned integer (", stringify!($t), ")"), v)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Number(Number::NegInt(n))
                } else {
                    Value::Number(Number::PosInt(n as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let wide: i64 = match v {
                    Value::Number(Number::PosInt(n)) => i64::try_from(*n)
                        .map_err(|_| de::Error::msg("integer too large for i64"))?,
                    Value::Number(Number::NegInt(n)) => *n,
                    _ => return Err(de::Error::expected(concat!("signed integer (", stringify!($t), ")"), v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| de::Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Number(Number::Float(f)) => Ok(*f),
            Value::Number(Number::PosInt(n)) => Ok(*n as f64),
            Value::Number(Number::NegInt(n)) => Ok(*n as f64),
            _ => Err(de::Error::expected("number (f64)", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::expected("boolean", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(de::Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

// Shared-slice impls (upstream serde ships these behind the `rc` feature):
// the unsized pointees fall outside the generic `Arc<T: Sized>` impl above.
impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            _ => Err(de::Error::expected("string", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Vec::<T>::from_value(v).map(std::sync::Arc::from)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Maps serialize as JSON objects when every key is a string, and as arrays
/// of `[key, value]` pairs otherwise (JSON has no non-string keys).
impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
            Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| match k {
                        Value::Str(s) => (s, v),
                        _ => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            Value::Array(
                entries
                    .into_iter()
                    .map(|(k, v)| Value::Array(vec![k, v]))
                    .collect(),
            )
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let mut out = std::collections::BTreeMap::new();
        match v {
            Value::Object(fields) => {
                for (name, val) in fields {
                    let key = K::from_value(&Value::Str(name.clone()))?;
                    out.insert(key, V::from_value(val)?);
                }
            }
            Value::Array(items) => {
                for item in items {
                    match item {
                        Value::Array(pair) if pair.len() == 2 => {
                            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
                        }
                        _ => return Err(de::Error::expected("[key, value] pair", item)),
                    }
                }
            }
            _ => return Err(de::Error::expected("map", v)),
        }
        Ok(out)
    }
}

/// Sets serialize as arrays; `HashSet` contents are sorted first so output
/// is deterministic.
impl<T: Serialize + Ord + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::expected("array (set)", v)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::expected("array (set)", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(de::Error::expected(concat!($len, "-element array"), v)),
                }
            }
        }
    };
}
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u64>::from_value(&None::<u64>.to_value()).unwrap(),
            None
        );
    }

    #[test]
    fn string_keyed_maps_become_objects() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        assert!(matches!(m.to_value(), Value::Object(_)));
        let back: BTreeMap<String, u64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuple_keyed_maps_become_pair_arrays() {
        let mut m = BTreeMap::new();
        m.insert(("a".to_string(), "b".to_string()), 3usize);
        assert!(matches!(m.to_value(), Value::Array(_)));
        let back: BTreeMap<(String, String), usize> =
            Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn out_of_range_integers_error() {
        let v = Value::Number(Number::PosInt(300));
        assert!(u8::from_value(&v).is_err());
    }
}
