//! The JSON-shaped value tree the shim serializes into.

use std::fmt;

/// A JSON number, kept lossless for the integer ranges the workspace uses
/// (`u64` seeds must survive a round trip bit-for-bit).
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (see [`Number`]).
    Number(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up a field of an object.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.write(&mut out, pretty, 0);
        out
    }

    fn write(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(Number::PosInt(n)) => out.push_str(&n.to_string()),
            Value::Number(Number::NegInt(n)) => out.push_str(&n.to_string()),
            // `{:?}` prints the shortest representation that round-trips.
            Value::Number(Number::Float(f)) => {
                if f.is_finite() {
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    item.write(out, pretty, indent + 1);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    write_json_string(out, name);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, pretty, indent + 1);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}
