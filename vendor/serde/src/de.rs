//! Deserialization errors.

use crate::value::Value;
use std::fmt;

/// Why a [`Value`] tree could not be turned into the
/// requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a fixed message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X, found Y" for a mismatched value kind.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error {
            msg: format!("expected {what}, found {}", found.kind()),
        }
    }

    /// A struct field was absent.
    pub fn missing_field(name: &str) -> Self {
        Error {
            msg: format!("missing field `{name}`"),
        }
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        Error {
            msg: format!("unknown variant `{tag}` for {ty}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
