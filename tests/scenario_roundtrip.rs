//! The declarative-scenario guarantees, test-enforced (ISSUE 5 acceptance
//! criteria):
//!
//! 1. **spec → bundle → spec is the identity** — a bundle built by
//!    [`ScenarioSpec::build`] carries the very spec as provenance;
//! 2. **a spec-rebuilt bundle simulates byte-identically** to the
//!    imperatively generator-built one, for every built-in scenario and
//!    several seeds (report *and* extracted log compared verbatim);
//! 3. the static contract-id mapping ([`ScenarioSpec::contract_ids`])
//!    tells the truth about what `build` installs, for every variant
//!    subset every workload supports;
//! 4. seed derivation varies the *workload*, not just the network: two
//!    seeds produce different schedules but identical specs modulo the
//!    seed fields;
//! 5. the spec-driven plan executor emits a buildable optimized spec and
//!    the whole outcome round-trips through JSON.

use blockoptr::plan::{OptimizationPlan, PlanConfig};
use blockoptr::session::{AnalyzeError, Analyzer};
use fabric_sim::config::NetworkConfig;
use workload::scenario::BUILTIN_NAMES;
use workload::spec::ControlVariables;
use workload::{drm, dv, ehr, lap, scm, synthetic};
use workload::{ScenarioSpec, SpecError, VariantKind, WorkloadBundle, WorkloadSpec};

const TXS: usize = 800;

/// The old imperative construction path: call the generator directly with
/// hand-assembled parameters, exactly as the CLI and bench glue used to.
fn generator_built(name: &str, txs: usize, seed: u64) -> (WorkloadBundle, NetworkConfig) {
    let network = NetworkConfig {
        seed,
        ..NetworkConfig::default()
    };
    match name {
        "synthetic" => {
            let cv = ControlVariables {
                transactions: txs,
                seed,
                ..Default::default()
            };
            let config = cv.network_config();
            (synthetic::generate(&cv), config)
        }
        "scm" => {
            let spec = scm::ScmSpec {
                transactions: txs,
                seed,
                ..Default::default()
            };
            (scm::generate(&spec), network)
        }
        "drm" => {
            let spec = drm::DrmSpec {
                transactions: txs,
                seed,
                ..Default::default()
            };
            (drm::generate(&spec), network)
        }
        "ehr" => {
            let spec = ehr::EhrSpec {
                transactions: txs,
                seed,
                ..Default::default()
            };
            (ehr::generate(&spec), network)
        }
        "dv" => {
            let queries = (txs / 6).max(1);
            let spec = dv::DvSpec {
                queries,
                votes: txs.saturating_sub(queries).max(1),
                seed,
                ..Default::default()
            };
            (dv::generate(&spec), network)
        }
        "lap" => {
            let spec = lap::LapSpec {
                applications: (txs / 10).max(10),
                seed,
                ..Default::default()
            };
            (lap::generate(&spec), network)
        }
        other => panic!("unknown scenario {other}"),
    }
}

fn spec_for(name: &str, txs: usize, seed: u64) -> ScenarioSpec {
    ScenarioSpec::builtin(name)
        .unwrap()
        .with_transactions(txs)
        .with_seed(seed)
}

#[test]
fn spec_to_bundle_to_spec_is_identity() {
    for name in BUILTIN_NAMES {
        let spec = spec_for(name, TXS, 42);
        let (bundle, config) = spec.build().unwrap();
        assert_eq!(bundle.spec(), Some(&spec), "{name}: provenance");
        assert_eq!(config, spec.network, "{name}: network");
        // …and through JSON: the serialized provenance re-parses equal.
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec, "{name}: JSON round trip");
        let (rebuilt, _) = back.build().unwrap();
        assert_eq!(rebuilt.spec(), Some(&spec), "{name}: rebuilt provenance");
    }
}

/// Acceptance criterion: for every built-in scenario (and several seeds) a
/// spec-rebuilt bundle yields a byte-identical `SimOutput` to the
/// generator-built one — compared as the full report Debug plus the entire
/// extracted log JSON.
#[test]
fn spec_rebuilt_bundles_simulate_byte_identically() {
    for name in BUILTIN_NAMES {
        for seed in [42u64, 1337] {
            let (gen_bundle, gen_config) = generator_built(name, TXS, seed);
            let (spec_bundle, spec_config) = spec_for(name, TXS, seed).build().unwrap();
            assert_eq!(gen_config, spec_config, "{name}/{seed}: config");
            assert_eq!(
                gen_bundle.len(),
                spec_bundle.len(),
                "{name}/{seed}: schedule"
            );

            let a = gen_bundle.run(gen_config);
            let b = spec_bundle.run(spec_config);
            assert_eq!(
                format!("{:?}", a.report),
                format!("{:?}", b.report),
                "{name}/{seed}: report"
            );
            let log_a =
                blockoptr::export::to_json(&blockoptr::log::BlockchainLog::from_ledger(&a.ledger));
            let log_b =
                blockoptr::export::to_json(&blockoptr::log::BlockchainLog::from_ledger(&b.ledger));
            assert_eq!(log_a, log_b, "{name}/{seed}: extracted log");
        }
    }
}

/// The static contract-id mapping matches what `build` actually installs,
/// for every variant subset of every workload's variant table.
#[test]
fn contract_id_mapping_is_truthful() {
    for name in BUILTIN_NAMES {
        let base = spec_for(name, 400, 42);
        let table = base.workload.variant_table();
        // Every subset of the variant table (tables are ≤ 2 entries).
        let mut subsets: Vec<Vec<VariantKind>> = vec![vec![]];
        for &kind in table {
            let mut doubled = subsets.clone();
            for s in &mut doubled {
                s.push(kind);
            }
            subsets.extend(doubled);
        }
        for subset in subsets {
            let mut spec = base.clone();
            spec.variants = subset.iter().copied().collect();
            let (bundle, _) = spec.build().unwrap();
            let installed: Vec<&str> = bundle.contracts.iter().map(|c| c.id()).collect();
            assert_eq!(
                installed,
                spec.contract_ids(),
                "{name} with variants {subset:?}"
            );
        }
    }
}

/// Satellite: two seeds produce *different schedules* (the workload itself
/// varies) but identical specs modulo the seed fields.
#[test]
fn seeds_vary_the_workload_not_the_spec() {
    for name in BUILTIN_NAMES {
        let spec_a = spec_for(name, 600, 1);
        let spec_b = spec_for(name, 600, 2);
        assert_ne!(spec_a, spec_b, "{name}: seeds recorded");
        assert_eq!(
            spec_a.clone().with_seed(0),
            spec_b.clone().with_seed(0),
            "{name}: identical modulo the seed field"
        );
        let (a, _) = spec_a.build().unwrap();
        let (b, _) = spec_b.build().unwrap();
        let differs = a.len() != b.len()
            || a.requests
                .iter()
                .zip(&b.requests)
                .any(|(x, y)| x.send_time != y.send_time || x.args != y.args);
        assert!(differs, "{name}: schedules must differ across seeds");
        // Same seed → same schedule (determinism sanity).
        let (a2, _) = spec_for(name, 600, 1).build().unwrap();
        assert_eq!(a.requests, a2.requests, "{name}: seed determinism");
    }
}

/// The spec-driven closed loop: recommendations lowered from a baseline
/// run, per-seed regenerated workloads, an optimized spec that builds, and
/// a JSON-round-trippable outcome.
#[test]
fn spec_driven_plan_emits_a_buildable_optimized_spec() {
    let spec = spec_for("scm", 1_500, 42);
    let analyzer = Analyzer::new();
    let (plan, output) = OptimizationPlan::from_spec(&spec, &analyzer).unwrap();
    assert!(!plan.is_empty(), "the SCM demo fires recommendations");
    let outcome = plan
        .execute_spec_from_with(&spec, output.report, &PlanConfig::new(2, 2))
        .unwrap();
    assert_eq!(outcome.seeds.len(), 2);
    assert_eq!(outcome.baseline.seeds(), 2);

    let optimized = outcome.optimized_spec.as_ref().expect("spec-driven");
    assert!(
        !optimized.transforms.is_empty() || !optimized.variants.is_empty(),
        "the plan lowered something declarative"
    );
    let (tuned_bundle, tuned_config) = optimized.build().unwrap();
    assert_eq!(tuned_bundle.spec(), Some(optimized));
    assert_eq!(tuned_config, optimized.network);

    // Multi-seed workload variance is real: the two baseline seeds saw
    // different workloads, so identical metrics across seeds would be a
    // red flag (the old bundle path collapsed here under deterministic
    // endorsement policies).
    let r = &outcome.baseline.per_seed;
    assert!(
        format!("{:?}", r[0]) != format!("{:?}", r[1]),
        "per-seed baselines must differ when the workload varies"
    );

    let json = serde_json::to_string(&outcome).unwrap();
    let back: blockoptr::plan::PlanOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(back.optimized_spec, outcome.optimized_spec);
}

/// Regression: seed 0 of the spec grid must run the spec *verbatim*. A
/// hand-edited spec may keep its workload seed and network seed
/// different; re-seeding seed 0 through `with_seed` would overwrite the
/// network seed, so a reused `from_spec` baseline would be paired against
/// action runs measured under a different network — skewing every delta.
#[test]
fn spec_grid_seed_zero_preserves_a_divergent_network_seed() {
    let mut spec = spec_for("scm", 1_000, 42);
    // Diverge the network seed under a policy whose endorser selection
    // actually consumes it (p4 over four orgs has many minimal sets).
    spec.network.orgs = 4;
    spec.network.endorsement_policy = fabric_sim::policy::EndorsementPolicy::p4();
    spec.network.seed = 7;
    assert_ne!(spec.seed(), spec.network.seed, "fixture diverges the seeds");

    let analyzer = Analyzer::new();
    let (plan, output) = OptimizationPlan::from_spec(&spec, &analyzer).unwrap();
    let reused = plan
        .execute_spec_from_with(&spec, output.report.clone(), &PlanConfig::new(2, 1))
        .unwrap();
    let fresh = plan
        .execute_spec_with(&spec, &PlanConfig::new(2, 1))
        .unwrap();
    // The reused primary baseline and a fresh seed-0 rebuild are the very
    // same configuration — byte-identical reports.
    assert_eq!(
        format!("{:?}", reused.baseline.primary()),
        format!("{:?}", fresh.baseline.primary()),
        "seed 0 must rebuild the spec verbatim"
    );
    assert_eq!(
        format!("{:?}", output.report),
        format!("{:?}", reused.baseline.primary()),
    );
}

/// Spec failures surface as typed [`AnalyzeError::Spec`] values on the
/// plan path — never panics.
#[test]
fn plan_execution_maps_spec_errors() {
    let mut spec = spec_for("drm", 500, 42);
    if let WorkloadSpec::Drm(s) = &mut spec.workload {
        s.send_rate = f64::NAN;
    }
    let err = OptimizationPlan::default().execute_spec(&spec).unwrap_err();
    match err {
        AnalyzeError::Spec(SpecError::BadParameter { field, .. }) => {
            assert_eq!(field, "drm.send_rate")
        }
        other => panic!("{other:?}"),
    }
}
