//! Directional-improvement tests: applying each recommended optimization
//! must move the three paper metrics the way §6 reports — who wins, not by
//! exactly how much.

use blockoptr_suite::prelude::*;
use workload::optimize;
use workload::spec::{ControlVariables, PolicyChoice};
use workload::{drm, dv, ehr, lap, scm};

fn run(bundle: &WorkloadBundle, cfg: NetworkConfig) -> fabric_sim::report::SimReport {
    bundle.run(cfg).report
}

#[test]
fn rate_control_raises_success_rate() {
    // Figure 10's universal effect: throttling to 100 tps trades throughput
    // for success rate and latency.
    let cv = ControlVariables {
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let before = run(&bundle, cv.network_config());
    let throttled = bundle
        .clone()
        .with_requests(optimize::rate_control(&bundle.requests, 100.0));
    let after = run(&throttled, cv.network_config());
    assert!(after.success_rate_pct > before.success_rate_pct + 2.0);
    assert!(after.avg_latency_s < before.avg_latency_s * 0.5);
    assert!(after.success_throughput < before.success_throughput);
}

#[test]
fn endorser_restructuring_fixes_p1_bottleneck() {
    // Figure 7: P1 makes Org1 mandatory; OutOf(2, …) spreads the load.
    let cv = ControlVariables {
        policy: PolicyChoice::P1,
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let before = run(&bundle, cv.network_config());
    let mut cfg = cv.network_config();
    cfg.endorsement_policy = EndorsementPolicy::p4();
    let after = run(&bundle, cfg);
    assert!(
        after.success_throughput > before.success_throughput * 1.2,
        "restructuring lifts throughput: {} → {}",
        before.success_throughput,
        after.success_throughput
    );
    assert!(after.avg_latency_s < before.avg_latency_s);
}

#[test]
fn client_boost_cuts_latency_under_invoker_skew() {
    // Figure 8.
    let cv = ControlVariables {
        tx_dist_skew: 0.7,
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let before = run(&bundle, cv.network_config());
    let mut cfg = cv.network_config();
    cfg.client_boost = Some((0, 2));
    let after = run(&bundle, cfg);
    assert!(
        after.avg_latency_s < before.avg_latency_s * 0.8,
        "boost drains the client backlog: {} → {}",
        before.avg_latency_s,
        after.avg_latency_s
    );
    assert!(after.success_throughput >= before.success_throughput);
}

#[test]
fn block_size_adaptation_helps_small_blocks() {
    // Figure 9, block count 50 → match the send rate.
    let cv = ControlVariables {
        block_count: 50,
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let before = run(&bundle, cv.network_config());
    let mut cfg = cv.network_config();
    cfg.block_count = 300;
    let after = run(&bundle, cfg);
    assert!(after.success_throughput > before.success_throughput * 1.2);
    assert!(after.success_rate_pct > before.success_rate_pct);
}

#[test]
fn scm_pruning_improves_success_and_aborts_early() {
    let spec = scm::ScmSpec {
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = scm::generate(&spec);
    let before = run(&bundle, NetworkConfig::default());
    let after = run(&scm::pruned(bundle), NetworkConfig::default());
    assert!(
        after.early_aborted > 0,
        "anomalous flows abort at endorsement"
    );
    assert!(after.success_rate_pct > before.success_rate_pct);
}

#[test]
fn scm_reordering_improves_both_metrics() {
    // Apply the reordering the analysis itself derives (the conflicting
    // readers move behind the writers), as Figure 13 does. The per-seed
    // magnitude depends on the RNG stream (+2.5 to +11 points across
    // seeds), so assert on the *seed-averaged* improvement over five seeds
    // instead of pinning one lucky schedule: the direction must hold for
    // every seed, and the average must clear a real margin.
    let seeds: [u64; 5] = [0, 1, 2, 3, 4];
    let mut rate_gain = 0.0;
    let mut tput_gain = 0.0;
    for seed in seeds {
        let spec = scm::ScmSpec {
            seed,
            ..Default::default()
        };
        let bundle = scm::generate(&spec);
        let output = bundle.run(NetworkConfig::default());
        let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
        let before = output.report;
        let (requests, applied) = apply_user_level(
            &bundle.requests,
            &blockoptr_suite::blockoptr::recommend::Recommendation::filter_by_name(
                &analysis.recommendations,
                "Activity reordering",
            ),
        );
        assert!(!applied.is_empty(), "reordering applied for seed {seed}");
        let reordered = bundle.clone().with_requests(requests);
        let after = run(&reordered, NetworkConfig::default());
        assert!(
            after.success_rate_pct > before.success_rate_pct,
            "seed {seed}: {} → {}",
            before.success_rate_pct,
            after.success_rate_pct
        );
        assert!(
            after.success_throughput > before.success_throughput,
            "seed {seed}: {} → {}",
            before.success_throughput,
            after.success_throughput
        );
        rate_gain += after.success_rate_pct - before.success_rate_pct;
        tput_gain += after.success_throughput - before.success_throughput;
    }
    let n = seeds.len() as f64;
    assert!(
        rate_gain / n > 3.0,
        "avg success-rate gain {:.2} points",
        rate_gain / n
    );
    assert!(
        tput_gain / n > 5.0,
        "avg throughput gain {:.2} tx/s",
        tput_gain / n
    );
}

#[test]
fn drm_delta_writes_eliminate_play_conflicts() {
    let spec = drm::DrmSpec {
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = drm::generate(&spec);
    let before = run(&bundle, NetworkConfig::default());
    let after = run(&drm::delta_writes(bundle), NetworkConfig::default());
    assert!(
        after.success_rate_pct > before.success_rate_pct * 2.0,
        "{} → {}",
        before.success_rate_pct,
        after.success_rate_pct
    );
    // The paper's caveat: aggregation makes calcRevenue (and thus average
    // latency) slower even as throughput improves.
    assert!(after.avg_latency_s > before.avg_latency_s);
    assert!(after.success_throughput > before.success_throughput);
}

#[test]
fn drm_partitioning_removes_cross_activity_conflicts() {
    let spec = drm::DrmSpec {
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = drm::generate(&spec);
    let before = run(&bundle, NetworkConfig::default());
    let after = run(&drm::partitioned(bundle, &spec), NetworkConfig::default());
    assert!(after.success_rate_pct > before.success_rate_pct + 5.0);
    assert!(after.success_throughput > before.success_throughput * 1.2);
}

#[test]
fn ehr_pruning_and_rate_control_help() {
    let spec = ehr::EhrSpec {
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = ehr::generate(&spec);
    let before = run(&bundle, NetworkConfig::default());
    let pruned = run(&ehr::pruned(bundle.clone()), NetworkConfig::default());
    assert!(pruned.success_rate_pct > before.success_rate_pct);
    let throttled = bundle
        .clone()
        .with_requests(optimize::rate_control(&bundle.requests, 100.0));
    let after = run(&throttled, NetworkConfig::default());
    assert!(after.success_rate_pct > before.success_rate_pct + 10.0);
}

#[test]
fn dv_data_model_alteration_reaches_full_success() {
    // Figure 16's headline: voters are restricted to a single vote, so the
    // re-keyed contract has no transaction dependencies at all.
    let spec = dv::DvSpec {
        queries: 500,
        votes: 3_000,
        ..Default::default()
    };
    let bundle = dv::generate(&spec);
    let before = run(&bundle, NetworkConfig::default());
    assert!(
        before.success_rate_pct < 40.0,
        "party-keyed model collapses"
    );
    let after = run(&dv::per_voter(bundle), NetworkConfig::default());
    assert!(after.success_rate_pct > 99.9);
    assert_eq!(after.mvcc_conflicts, 0);
}

#[test]
fn lap_rekeying_improves_at_both_rates() {
    // Figure 17: >50 % improvement in success rate at 10 and 300 tps.
    for rate in [10.0, 300.0] {
        let spec = lap::LapSpec {
            applications: 400,
            send_rate: rate,
            ..Default::default()
        };
        let bundle = lap::generate(&spec);
        let before = run(&bundle, NetworkConfig::default());
        let after = run(&lap::by_application(bundle), NetworkConfig::default());
        assert!(
            after.success_rate_pct > before.success_rate_pct * 1.5,
            "@{rate}: {} → {}",
            before.success_rate_pct,
            after.success_rate_pct
        );
    }
}

#[test]
fn fabric_extensions_still_benefit_from_rate_control() {
    // §6.4: even on FabricSharp / Fabric++, higher-level optimizations help.
    for scheduler in [SchedulerKind::FabricSharp, SchedulerKind::FabricPlusPlus] {
        let cv = ControlVariables {
            workload: workload::spec::WorkloadType::UpdateHeavy,
            transactions: 5_000,
            ..Default::default()
        };
        let bundle = workload::synthetic::generate(&cv);
        let cfg = cv.network_config().with_scheduler(scheduler);
        let before = run(&bundle, cfg.clone());
        let throttled = bundle
            .clone()
            .with_requests(optimize::rate_control(&bundle.requests, 100.0));
        let after = run(&throttled, cfg);
        assert!(
            after.success_rate_pct > before.success_rate_pct,
            "{scheduler:?}: {} → {}",
            before.success_rate_pct,
            after.success_rate_pct
        );
    }
}

#[test]
fn fabric_sharp_beats_vanilla_on_update_heavy_but_adds_policy_failures() {
    let cv = ControlVariables {
        workload: workload::spec::WorkloadType::UpdateHeavy,
        key_skew: 2.0,
        transactions: 5_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let vanilla = run(&bundle, cv.network_config());
    let sharp = run(
        &bundle,
        cv.network_config()
            .with_scheduler(SchedulerKind::FabricSharp),
    );
    assert!(
        sharp.success_rate_pct > vanilla.success_rate_pct,
        "sharp's OCC reordering rescues update conflicts: {} vs {}",
        sharp.success_rate_pct,
        vanilla.success_rate_pct
    );
    assert!(
        sharp.endorsement_failures >= vanilla.endorsement_failures,
        "the documented side effect"
    );
}
