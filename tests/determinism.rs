//! Reproducibility: the whole stack — generator, simulator, analyzer — is
//! deterministic in the seed, and different seeds genuinely differ.

use blockoptr_suite::prelude::*;
use workload::spec::ControlVariables;

fn full_run(seed: u64) -> (fabric_sim::report::SimReport, Vec<String>) {
    let cv = ControlVariables {
        transactions: 3_000,
        seed,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let output = bundle.run(cv.network_config());
    let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
    let names = analysis
        .recommendation_names()
        .into_iter()
        .map(String::from)
        .collect();
    (output.report, names)
}

#[test]
fn identical_seeds_reproduce_bit_identical_results() {
    let (a, recs_a) = full_run(42);
    let (b, recs_b) = full_run(42);
    assert_eq!(a.successes, b.successes);
    assert_eq!(a.mvcc_conflicts, b.mvcc_conflicts);
    assert_eq!(a.phantom_conflicts, b.phantom_conflicts);
    assert_eq!(a.blocks, b.blocks);
    assert_eq!(a.duration_s, b.duration_s, "bit-identical timing");
    assert_eq!(a.avg_latency_s, b.avg_latency_s);
    assert_eq!(recs_a, recs_b);
}

#[test]
fn different_seeds_differ_but_agree_qualitatively() {
    let (a, _) = full_run(1);
    let (b, _) = full_run(2);
    assert_ne!(
        (a.successes, a.mvcc_conflicts),
        (b.successes, b.mvcc_conflicts),
        "different draws"
    );
    // Same regime though: both saturated around the same throughput.
    let ratio = a.success_throughput / b.success_throughput;
    assert!((0.8..1.25).contains(&ratio), "{ratio}");
}

#[test]
fn ledger_commit_order_is_stable() {
    let cv = ControlVariables {
        transactions: 2_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let a = bundle.run(cv.network_config());
    let b = bundle.run(cv.network_config());
    let ids_a: Vec<u64> = a.ledger.transactions().map(|t| t.id.0).collect();
    let ids_b: Vec<u64> = b.ledger.transactions().map(|t| t.id.0).collect();
    assert_eq!(ids_a, ids_b);
}

#[test]
fn analysis_is_deterministic_over_the_same_ledger() {
    let cv = ControlVariables {
        transactions: 2_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let output = bundle.run(cv.network_config());
    let a = BlockOptR::new().analyze_ledger(&output.ledger);
    let b = BlockOptR::new().analyze_ledger(&output.ledger);
    assert_eq!(a.recommendations, b.recommendations);
    assert_eq!(a.metrics.keys.hotkeys, b.metrics.keys.hotkeys);
    assert_eq!(
        a.metrics.correlation.conflicts.len(),
        b.metrics.correlation.conflicts.len()
    );
}
