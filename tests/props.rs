//! Cross-crate property tests (proptest): invariants that must hold for any
//! workload the generators can produce.

use blockoptr_suite::prelude::*;
use proptest::prelude::*;
use workload::spec::{ControlVariables, PolicyChoice, WorkloadType};

fn arb_cv() -> impl Strategy<Value = ControlVariables> {
    (
        prop_oneof![
            Just(WorkloadType::Uniform),
            Just(WorkloadType::ReadHeavy),
            Just(WorkloadType::InsertHeavy),
            Just(WorkloadType::UpdateHeavy),
            Just(WorkloadType::RangeReadHeavy),
        ],
        prop_oneof![
            Just(PolicyChoice::P1),
            Just(PolicyChoice::P2),
            Just(PolicyChoice::P3),
            Just(PolicyChoice::P4),
        ],
        prop_oneof![Just(0.0), Just(6.0)],
        1.0..2.0f64,
        prop_oneof![Just(2usize), Just(4usize)],
        prop_oneof![Just(30usize), Just(100usize), Just(400usize)],
        30.0..400.0f64,
        prop_oneof![Just(0.0), Just(0.7)],
        200..600usize,
        0..u64::MAX,
    )
        .prop_map(
            |(
                workload,
                policy,
                endorser_skew,
                key_skew,
                orgs,
                block_count,
                send_rate,
                tx_dist_skew,
                transactions,
                seed,
            )| {
                ControlVariables {
                    workload,
                    policy,
                    endorser_skew,
                    key_skew,
                    orgs,
                    block_count,
                    send_rate,
                    tx_dist_skew,
                    transactions,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every request either commits or early-aborts; block
    /// sizes respect the configured count; status counts add up.
    #[test]
    fn simulation_conserves_transactions(cv in arb_cv()) {
        let bundle = workload::synthetic::generate(&cv);
        let cfg = cv.network_config();
        let output = bundle.run(cfg.clone());
        let r = &output.report;
        prop_assert_eq!(r.requests, cv.transactions);
        prop_assert_eq!(r.committed + r.early_aborted, r.requests);
        prop_assert_eq!(r.successes + r.failures(), r.committed);
        prop_assert_eq!(
            r.mvcc_conflicts,
            r.intra_block_conflicts + r.inter_block_conflicts
        );
        prop_assert_eq!(output.ledger.tx_count(), r.committed);
        for block in output.ledger.blocks() {
            prop_assert!(block.len() <= cfg.block_count);
            prop_assert!(!block.is_empty());
        }
    }

    /// Every committed transaction's timestamps are causally ordered, and
    /// blocks commit in increasing time and height.
    #[test]
    fn timestamps_and_heights_are_monotone(cv in arb_cv()) {
        let bundle = workload::synthetic::generate(&cv);
        let output = bundle.run(cv.network_config());
        for tx in output.ledger.transactions() {
            prop_assert!(tx.client_ts <= tx.submit_ts);
            prop_assert!(tx.submit_ts <= tx.commit_ts);
        }
        let blocks = output.ledger.blocks();
        for pair in blocks.windows(2) {
            prop_assert_eq!(pair[1].number, pair[0].number + 1);
            prop_assert!(pair[1].commit_ts >= pair[0].commit_ts);
        }
    }

    /// The blockchain log round-trips through JSON losslessly.
    #[test]
    fn log_json_round_trip(cv in arb_cv()) {
        let bundle = workload::synthetic::generate(&cv);
        let output = bundle.run(cv.network_config());
        let log = blockoptr::log::BlockchainLog::from_ledger(&output.ledger);
        let json = blockoptr::export::to_json(&log);
        let back = blockoptr::export::from_json(&json).unwrap();
        prop_assert_eq!(back.len(), log.len());
        for (a, b) in log.records().iter().zip(back.records()) {
            prop_assert_eq!(&a.activity, &b.activity);
            prop_assert_eq!(a.status, b.status);
            prop_assert_eq!(&a.rwset, &b.rwset);
            prop_assert_eq!(a.commit_index, b.commit_index);
        }
    }

    /// Metric identities: interval counts sum to totals; failure intervals
    /// never exceed transaction intervals; shares are well-formed.
    #[test]
    fn metric_identities(cv in arb_cv()) {
        let bundle = workload::synthetic::generate(&cv);
        let output = bundle.run(cv.network_config());
        let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
        let m = &analysis.metrics;
        let tx_sum: u64 = m.rates.tx_per_interval.iter().sum();
        let fail_sum: u64 = m.rates.failures_per_interval.iter().sum();
        prop_assert_eq!(tx_sum as usize, m.rates.total);
        prop_assert_eq!(fail_sum as usize, m.rates.failed);
        for (t, f) in m.rates.tx_per_interval.iter().zip(&m.rates.failures_per_interval) {
            prop_assert!(f <= t);
        }
        let share_sum: f64 = m.invokers.org_shares().iter().map(|(_, s)| s).sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-9 || m.invokers.total == 0);
        prop_assert!(m.correlation.reorderable <= m.correlation.identified);
        prop_assert!(m.correlation.identified <= m.correlation.read_conflicts);
    }

    /// Recommendations are internally consistent: partitioning and
    /// single-hotkey data-model alteration never co-fire, and every
    /// recommendation carries evidence.
    #[test]
    fn recommendation_consistency(cv in arb_cv()) {
        let bundle = workload::synthetic::generate(&cv);
        let output = bundle.run(cv.network_config());
        let analysis = BlockOptR::new().analyze_ledger(&output.ledger);
        let names = analysis.recommendation_names();
        prop_assert!(
            !(names.contains(&"Smart contract partitioning")
                && names.contains(&"Data model alteration"))
        );
        for rec in &analysis.recommendations {
            prop_assert!(!rec.rationale().is_empty());
        }
    }

    /// Rate control preserves the request multiset and hits the target rate.
    #[test]
    fn rate_control_preserves_requests(cv in arb_cv(), rate in 20.0..200.0f64) {
        let bundle = workload::synthetic::generate(&cv);
        let throttled = workload::optimize::rate_control(&bundle.requests, rate);
        prop_assert_eq!(throttled.len(), bundle.requests.len());
        if throttled.len() >= 2 {
            let span = throttled
                .last()
                .unwrap()
                .send_time
                .since(throttled[0].send_time)
                .as_secs_f64();
            let achieved = (throttled.len() - 1) as f64 / span;
            prop_assert!((achieved - rate).abs() / rate < 0.01, "{} vs {}", achieved, rate);
        }
        let mut a: Vec<String> = bundle.requests.iter().map(|r| r.activity.to_string()).collect();
        let mut b: Vec<String> = throttled.iter().map(|r| r.activity.to_string()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Successful transactions never carry stale point reads w.r.t. the
    /// replayed world state: rebuild the state from the ledger and check
    /// every committed version matches what validation saw.
    #[test]
    fn successful_reads_were_fresh(cv in arb_cv()) {
        use fabric_sim::state::WorldState;
        use fabric_sim::rwset::Version;
        let bundle = workload::synthetic::generate(&cv);
        let output = bundle.run(cv.network_config());
        let mut state = WorldState::new();
        for (ns, key, value) in &bundle.genesis {
            state.seed(format!("{ns}/{key}"), value.clone());
        }
        for block in output.ledger.blocks() {
            for (pos, tx) in block.txs.iter().enumerate() {
                if tx.status.is_success() {
                    for read in &tx.rwset.reads {
                        prop_assert_eq!(
                            state.version_of(&read.key), read.version,
                            "stale read committed: {} in tx{}", read.key, tx.id.0
                        );
                    }
                    state.apply(&tx.rwset.writes, Version::new(block.number, pos as u32));
                }
            }
        }
    }
}
