//! End-to-end pipeline tests: run each paper workload through the simulated
//! Fabric network, analyze with BlockOptR, and assert the recommendation
//! sets the paper reports (§6.2–6.3, Table 3).

use blockoptr_suite::prelude::*;
use workload::spec::{ControlVariables, PolicyChoice, WorkloadType};
use workload::{drm, dv, ehr, lap, scm};

fn analyze(bundle: &WorkloadBundle, cfg: NetworkConfig) -> Analysis {
    let output = bundle.run(cfg);
    BlockOptR::new().analyze_ledger(&output.ledger)
}

#[test]
fn scm_recommendations_match_paper() {
    let bundle = scm::generate(&scm::ScmSpec::default());
    let analysis = analyze(&bundle, NetworkConfig::default());
    // Paper §6.2: activity reordering, process model pruning, rate control.
    assert!(
        analysis.recommends("Activity reordering"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(
        analysis.recommends("Process model pruning"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(
        analysis.recommends("Transaction rate control"),
        "{:?}",
        analysis.recommendation_names()
    );
    // No data-level recommendations for SCM.
    assert!(!analysis.recommends("Delta writes"));
    assert!(!analysis.recommends("Smart contract partitioning"));
    assert!(!analysis.recommends("Data model alteration"));
}

#[test]
fn drm_recommendations_match_paper() {
    let bundle = drm::generate(&drm::DrmSpec::default());
    let analysis = analyze(&bundle, NetworkConfig::default());
    // Paper §6.2: reordering, delta writes, smart contract partitioning.
    assert!(
        analysis.recommends("Activity reordering"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(
        analysis.recommends("Delta writes"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(
        analysis.recommends("Smart contract partitioning"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(!analysis.recommends("Data model alteration"));
}

#[test]
fn ehr_recommendations_match_paper() {
    let bundle = ehr::generate(&ehr::EhrSpec::default());
    let analysis = analyze(&bundle, NetworkConfig::default());
    // Paper §6.2: reordering, pruning, rate control.
    assert!(
        analysis.recommends("Activity reordering"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(
        analysis.recommends("Process model pruning"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(
        analysis.recommends("Transaction rate control"),
        "{:?}",
        analysis.recommendation_names()
    );
}

#[test]
fn dv_recommendations_match_paper() {
    let bundle = dv::generate(&dv::DvSpec::default());
    let analysis = analyze(&bundle, NetworkConfig::default());
    // Paper §6.2: rate control + data model alteration — NOT partitioning.
    assert!(
        analysis.recommends("Transaction rate control"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(
        analysis.recommends("Data model alteration"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(!analysis.recommends("Smart contract partitioning"));
}

#[test]
fn lap_recommendations_match_paper() {
    let bundle = lap::generate(&lap::LapSpec::default());
    let analysis = analyze(&bundle, NetworkConfig::default());
    // Paper §6.3: the employee hot key drives a data model alteration.
    assert!(
        analysis.recommends("Data model alteration"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(!analysis.recommends("Smart contract partitioning"));
    // The hot key is employee 1 (the paper's "employeeID 1").
    assert_eq!(
        analysis.metrics.keys.hotkeys.first().map(String::as_str),
        Some("lap/E001")
    );
}

#[test]
fn synthetic_key_skew_triggers_partitioning() {
    // Table 3 experiment 8.
    let cv = ControlVariables {
        key_skew: 2.0,
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let analysis = analyze(&bundle, cv.network_config());
    assert!(
        analysis.recommends("Smart contract partitioning"),
        "{:?}",
        analysis.recommendation_names()
    );
    assert!(analysis.recommends("Activity reordering"));
}

#[test]
fn synthetic_p1_triggers_endorser_restructuring() {
    // Table 3 experiments 1–2.
    let cv = ControlVariables {
        policy: PolicyChoice::P1,
        transactions: 4_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let analysis = analyze(&bundle, cv.network_config());
    assert!(
        analysis.recommends("Endorser restructuring"),
        "{:?}",
        analysis.recommendation_names()
    );
    // Org1 is the overloaded principal.
    let rec = analysis
        .recommendations
        .iter()
        .find(|r| r.name() == "Endorser restructuring")
        .unwrap();
    match rec {
        Recommendation::EndorserRestructuring { overloaded, .. } => {
            assert!(overloaded.contains(&"Org1".to_string()));
        }
        _ => unreachable!(),
    }
}

#[test]
fn synthetic_update_heavy_suppresses_reordering() {
    // Table 3 experiment 5: update self-dependencies are unreorderable.
    let cv = ControlVariables {
        workload: WorkloadType::UpdateHeavy,
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let analysis = analyze(&bundle, cv.network_config());
    assert!(
        !analysis.recommends("Activity reordering"),
        "{:?}",
        analysis.recommendation_names()
    );
}

#[test]
fn synthetic_tx_skew_triggers_client_boost() {
    // Table 3 experiment 15.
    let cv = ControlVariables {
        tx_dist_skew: 0.7,
        transactions: 4_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let analysis = analyze(&bundle, cv.network_config());
    assert!(
        analysis.recommends("Client resource boost"),
        "{:?}",
        analysis.recommendation_names()
    );
}

#[test]
fn genchain_never_gets_contract_level_recommendations() {
    // §6.1: "process model pruning, delta writes and data model alterations
    // are not recommended here" for the simple synthetic contract.
    let cv = ControlVariables {
        transactions: 6_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let analysis = analyze(&bundle, cv.network_config());
    assert!(!analysis.recommends("Process model pruning"));
    assert!(!analysis.recommends("Delta writes"));
    assert!(!analysis.recommends("Data model alteration"));
}

#[test]
fn case_ids_derived_per_use_case() {
    let scm_a = analyze(
        &scm::generate(&scm::ScmSpec {
            transactions: 2_000,
            ..Default::default()
        }),
        NetworkConfig::default(),
    );
    assert_eq!(scm_a.case_derivation.family, "P", "products are the cases");

    let lap_a = analyze(
        &lap::generate(&lap::LapSpec {
            applications: 300,
            ..Default::default()
        }),
        NetworkConfig::default(),
    );
    assert_eq!(
        lap_a.case_derivation.family, "APP",
        "applications, not employees (finer family wins the tie)"
    );
}
