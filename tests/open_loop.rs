//! Open-loop arrival acceptance: an `ArrivalSpec::Poisson` spec drives the
//! simulator into the block-cut regime a closed-loop run at generator rates
//! never reaches.
//!
//! At 40 tx/s a 100-transaction block takes 2.5 s to fill, so the orderer's
//! 1 s `block_timeout` wins the two-event race and cuts partial blocks —
//! [`CutReason::Timeout`] — while the closed-loop synthetic default
//! (300 tx/s offered) always fills blocks first ([`CutReason::Count`]).
//! Latency is measured as Commit − Submit event-time deltas, so the two
//! regimes also produce different latency distributions from the *same*
//! request sequence.

use fabric_sim::ledger::CutReason;
use workload::{ArrivalSpec, ScenarioSpec};

#[test]
fn poisson_open_loop_cuts_blocks_by_timeout() {
    let closed = ScenarioSpec::builtin("synthetic")
        .unwrap()
        .with_transactions(400)
        .with_seed(42);
    let open = closed
        .clone()
        .with_arrival(ArrivalSpec::Poisson { rate: 40.0 });

    let (closed_bundle, closed_cfg) = closed.build().unwrap();
    let (open_bundle, open_cfg) = open.build().unwrap();
    assert_eq!(
        closed_bundle.len(),
        open_bundle.len(),
        "same request sequence, different arrival process"
    );

    let closed_out = closed_bundle.run(closed_cfg);
    let open_out = open_bundle.run(open_cfg);

    let cuts = |out: &fabric_sim::sim::SimOutput, reason: CutReason| {
        out.ledger
            .blocks()
            .iter()
            .filter(|b| b.cut_reason == reason)
            .count()
    };
    assert!(
        cuts(&open_out, CutReason::Timeout) > 0,
        "a sparse open loop lets block_timeout win the cut race"
    );
    assert_eq!(
        cuts(&closed_out, CutReason::Timeout),
        0,
        "the closed-loop generator keeps every buffer full past block_count"
    );
    assert!(cuts(&closed_out, CutReason::Count) > 0);

    // Same committed volume, different event-time latency distribution.
    assert_eq!(open_out.report.committed, closed_out.report.committed);
    assert_ne!(
        open_out.report.avg_latency_s.to_bits(),
        closed_out.report.avg_latency_s.to_bits(),
        "Commit − Submit deltas differ between the arrival regimes"
    );
    assert_ne!(
        open_out.report.latency.p99.to_bits(),
        closed_out.report.latency.p99.to_bits()
    );
}

#[test]
fn uniform_open_loop_is_seed_stable() {
    // The deterministic grid ignores the seed's arrival stream entirely:
    // two seeds share the timestamps (the schedule itself still varies).
    let spec = |seed| {
        ScenarioSpec::builtin("scm")
            .unwrap()
            .with_transactions(120)
            .with_seed(seed)
            .with_arrival(ArrivalSpec::Uniform { gap: 0.01 })
    };
    let (a, _) = spec(1).build().unwrap();
    let (b, _) = spec(2).build().unwrap();
    let times = |bundle: &workload::WorkloadBundle| {
        bundle
            .requests
            .iter()
            .map(|r| r.send_time)
            .collect::<Vec<_>>()
    };
    assert_eq!(times(&a), times(&b));
    assert!((a.offered_rate() - 100.0).abs() < 1e-9);
}
