//! Fault-injection compatibility and resilience acceptance suite (ISSUE 8).
//!
//! Three guarantees pinned here:
//!
//! 1. **Golden compatibility** — a spec with no `fault`/`retry` fields (and
//!    a spec with explicit no-op defaults) produces a ledger byte-identical
//!    to the pre-fault goldens in `tests/goldens/closed_loop.json`. Fault
//!    injection must be invisible until asked for.
//! 2. **Determinism** — faulty specs are as deterministic as clean ones:
//!    identical runs byte-match (property-tested over random fault/retry
//!    configurations), and plan execution over a faulty spec is identical
//!    for any worker thread count.
//! 3. **Acceptance** — `optimize` over the committed endorser-outage
//!    example reports degradation and emits a tuned, replayable spec whose
//!    re-measured goodput improves with a seed-paired 95 % CI excluding
//!    zero.
//!
//! CI runs this suite under both `BLOCKOPTR_THREADS=1` and `=4`.

use blockoptr::{Analyzer, MetricStats, OptimizationPlan, PlanConfig};
use proptest::prelude::*;
use workload::{DropSpec, LatencySpike, OutageWindow, RetryPolicy, ScenarioSpec, StallWindow};

const TXS: usize = 800;
const SEEDS: [u64; 2] = [42, 1337];

/// FNV-1a 64-bit — same fingerprint the DES golden suite uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn ledger_hash(spec: &ScenarioSpec) -> String {
    let (bundle, config) = spec.build().unwrap();
    let out = bundle.run(config);
    let json = serde_json::to_string(&out.ledger).expect("ledger serializes");
    format!("{:016x}", fnv1a(json.as_bytes()))
}

/// `(scenario, seed) → ledger_hash` rows from the committed goldens.
fn committed_hashes() -> Vec<(String, u64, String)> {
    use serde_json::{Number, Value};
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/closed_loop.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing goldens at {} ({e})", path.display()));
    let Value::Array(rows) = serde_json::value_from_str(&json).expect("goldens parse") else {
        panic!("goldens file is not an array");
    };
    rows.iter()
        .map(|row| {
            let scenario = match row.field("scenario") {
                Some(Value::Str(s)) => s.clone(),
                other => panic!("scenario: {other:?}"),
            };
            let seed = match row.field("seed") {
                Some(Value::Number(Number::PosInt(n))) => *n,
                other => panic!("seed: {other:?}"),
            };
            let hash = match row.field("ledger_hash") {
                Some(Value::Str(s)) => s.clone(),
                other => panic!("ledger_hash: {other:?}"),
            };
            (scenario, seed, hash)
        })
        .collect()
}

/// Serialize a spec and delete its `fault` and `retry` keys — the shape of
/// every spec written before this subsystem existed.
fn strip_fault_fields(spec: &ScenarioSpec) -> ScenarioSpec {
    let mut v = serde_json::value_from_str(&spec.to_json()).unwrap();
    if let serde_json::Value::Object(fields) = &mut v {
        let before = fields.len();
        fields.retain(|(k, _)| k != "fault" && k != "retry");
        assert_eq!(fields.len(), before - 2, "both fields were present");
    }
    ScenarioSpec::from_json(&v.render(false)).unwrap()
}

/// Pre-fault specs (no `fault`/`retry` JSON fields) and explicit no-op
/// defaults both reproduce the committed pre-fault goldens byte for byte.
#[test]
fn absent_and_default_fault_fields_match_the_committed_goldens() {
    let goldens = committed_hashes();
    for name in workload::scenario::BUILTIN_NAMES {
        for seed in SEEDS {
            let spec = ScenarioSpec::builtin(name)
                .unwrap()
                .with_transactions(TXS)
                .with_seed(seed);
            // builtin() carries explicit FaultSpec/RetryPolicy defaults;
            // the stripped round-trip is the absent-field path.
            let stripped = strip_fault_fields(&spec);
            assert!(stripped.fault.is_noop() && stripped.retry.is_noop());
            assert_eq!(stripped, spec, "absent fields deserialize to defaults");

            let want = &goldens
                .iter()
                .find(|(s, sd, _)| s == name && *sd == seed)
                .unwrap_or_else(|| panic!("no golden row for {name} seed {seed}"))
                .2;
            let got = ledger_hash(&stripped);
            assert_eq!(
                &got, want,
                "{name} seed {seed}: a no-fault spec drifted from the pre-fault golden"
            );
        }
    }
}

/// A random fault + retry configuration on the SCM scenario, kept inside
/// the validated domain.
fn arb_faulty_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        0u16..2,      // outage org
        0u8..6,       // outage peer selector (5 = whole org)
        0.0f64..3.0,  // outage start
        0.1f64..2.0,  // outage duration
        1.0f64..8.0,  // latency spike multiplier
        0.0f64..0.3,  // drop rates
        1usize..5,    // retry attempts
        0.05f64..1.0, // endorse timeout
        0.0f64..0.9,  // jitter
        0u64..1_000,  // seed
    )
        .prop_map(
            |(org, peer, start, duration, multiplier, drop, attempts, timeout, jitter, seed)| {
                let mut spec = ScenarioSpec::builtin("scm")
                    .unwrap()
                    .with_transactions(400)
                    .with_seed(seed);
                spec.fault.endorser_outages.push(OutageWindow {
                    org,
                    peer: (peer < 5).then_some(u16::from(peer)),
                    start,
                    duration,
                });
                spec.fault.latency_spikes.push(LatencySpike {
                    start: start / 2.0,
                    duration,
                    multiplier,
                });
                spec.fault.orderer_stalls.push(StallWindow {
                    start: start + duration,
                    duration: duration / 2.0,
                });
                spec.fault.drop = Some(DropSpec {
                    proposal_rate: drop,
                    endorsement_rate: drop / 2.0,
                });
                spec.retry = RetryPolicy {
                    endorse_timeout: Some(timeout),
                    max_attempts: attempts,
                    backoff_base: 0.05,
                    backoff_multiplier: 2.0,
                    jitter,
                };
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault injection keeps the engine deterministic: two fresh builds of
    /// the same faulty spec produce byte-identical ledgers and reports.
    #[test]
    fn faulty_specs_replay_byte_identically(spec in arb_faulty_spec()) {
        prop_assert!(spec.validate().is_ok(), "{:?}", spec.validate());
        let run = |spec: &ScenarioSpec| {
            let (bundle, config) = spec.build().unwrap();
            let out = bundle.run(config);
            (
                serde_json::to_string(&out.ledger).unwrap(),
                serde_json::to_string(&out.report).unwrap(),
            )
        };
        let (ledger_a, report_a) = run(&spec);
        let (ledger_b, report_b) = run(&spec);
        prop_assert_eq!(ledger_a, ledger_b, "ledger drifted between replays");
        prop_assert_eq!(report_a, report_b, "report drifted between replays");
    }
}

/// Plan execution over a faulty spec is byte-identical for any worker
/// thread count — the PR-7 equivalence guarantee extends to fault state.
#[test]
fn faulty_plan_execution_is_thread_count_invariant() {
    let json = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/endorser_outage.json"),
    )
    .unwrap();
    let spec = ScenarioSpec::from_json(&json).unwrap();
    let (plan, _) = OptimizationPlan::from_spec(&spec, &Analyzer::new()).unwrap();
    assert!(!plan.is_empty(), "the outage example triggers actions");

    let fingerprint = |threads: usize| {
        let outcome = plan
            .execute_spec_with(&spec, &PlanConfig::new(2, threads))
            .unwrap();
        let mut rows: Vec<String> = outcome
            .baseline
            .per_seed
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        for action in &outcome.actions {
            if let Some(measured) = action.measured() {
                rows.extend(
                    measured
                        .per_seed
                        .iter()
                        .map(|r| serde_json::to_string(r).unwrap()),
                );
            }
        }
        rows
    };
    assert_eq!(
        fingerprint(1),
        fingerprint(4),
        "plan outcomes must not depend on the thread count"
    );
}

/// The acceptance criterion: optimizing the endorser-outage example
/// reports the degradation, and the tuned configuration's re-measured
/// goodput (successes / requests) improves with a seed-paired Student-t
/// 95 % confidence interval excluding zero.
#[test]
fn tuned_outage_spec_improves_goodput_with_ci_excluding_zero() {
    let json = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/endorser_outage.json"),
    )
    .unwrap();
    let spec = ScenarioSpec::from_json(&json).unwrap();
    let (plan, _) = OptimizationPlan::from_spec(&spec, &Analyzer::new()).unwrap();
    let outcome = plan
        .execute_spec_with(&spec, &PlanConfig::new(5, 4))
        .unwrap();

    // The baseline visibly degrades: retries, timeouts, and a per-window
    // breakdown of the injected outage.
    let deg = &outcome.baseline.primary().degradation;
    assert!(!deg.is_trivial(), "the outage must register: {deg:?}");
    assert!(deg.retries > 0 && deg.timeouts > 0);
    assert!(
        deg.windows.iter().any(|w| w.label.starts_with("outage")),
        "{:?}",
        deg.windows
    );

    // Goodput: seed-paired deltas of the combined tuned run vs baseline.
    let combined = outcome
        .combined
        .as_ref()
        .expect("resilience actions apply, so a combined run exists");
    let goodput = |r: &blockoptr::plan::SeedReport| r.successes as f64 / r.requests as f64;
    let deltas: Vec<f64> = combined
        .per_seed
        .iter()
        .zip(&outcome.baseline.per_seed)
        .map(|(tuned, base)| goodput(tuned) - goodput(base))
        .collect();
    let stats = MetricStats::of(&deltas);
    assert!(
        stats.mean > 0.0 && stats.mean - stats.ci95 > 0.0,
        "tuned goodput must improve with a CI excluding zero: \
         mean {:+.4} ± {:.4} over {} seeds ({deltas:?})",
        stats.mean,
        stats.ci95,
        deltas.len()
    );

    // The loop closes: a replayable tuned spec with a widened retry
    // budget comes back out.
    let tuned = outcome.optimized_spec.as_ref().expect("spec emitted");
    assert_ne!(tuned.retry, spec.retry, "the retry policy was tuned");
    assert!(tuned.retry.max_attempts > spec.retry.max_attempts);
    tuned.build().expect("the tuned spec replays");
}
