//! Integration tests for the extension features: policy parsing, XES
//! interchange, compliance verification, auto-tuning, and the simulator's
//! byte-based block cutting and endorsement-mismatch paths.

use blockoptr_suite::prelude::*;
use fabric_sim::parse_policy;
use workload::spec::{ControlVariables, PolicyChoice};

#[test]
fn parsed_policies_drive_the_simulator() {
    // Configure the network from a policy *string* end to end.
    let cv = ControlVariables {
        policy: PolicyChoice::P4,
        transactions: 1_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let mut cfg = cv.network_config();
    cfg.endorsement_policy = parse_policy("OutOf(2, Org1, Org2, Org3, Org4)").unwrap();
    let out = bundle.run(cfg);
    assert!(out.report.successes > 0);
    // Every transaction carries exactly two endorsing organizations.
    for tx in out.ledger.transactions() {
        let orgs: std::collections::BTreeSet<u16> = tx.endorsers.iter().map(|p| p.org.0).collect();
        assert_eq!(orgs.len(), 2, "{tx:?}");
    }
}

#[test]
fn block_bytes_threshold_cuts_blocks() {
    let cv = ControlVariables {
        transactions: 800,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let mut cfg = cv.network_config();
    cfg.block_bytes = 16 * 1024; // tiny byte budget
    let out = bundle.run(cfg);
    assert!(
        out.report.cut_reasons.contains_key("bytes"),
        "{:?}",
        out.report.cut_reasons
    );
    assert!(
        out.report.avg_block_size < 100.0,
        "byte cuts shrink blocks: {}",
        out.report.avg_block_size
    );
}

#[test]
fn endorsement_mismatch_produces_policy_failures() {
    // A 4-org majority policy (3 endorsers per tx) on a hot-key workload at
    // high rate: endorsements execute at different instants, intervening
    // commits change read versions, and mismatched proposals fail with
    // ENDORSEMENT_POLICY_FAILURE during validation.
    let cv = ControlVariables {
        orgs: 4,
        key_skew: 2.0,
        send_rate: 600.0,
        transactions: 4_000,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let out = bundle.run(cv.network_config());
    assert!(
        out.report.endorsement_failures > 0,
        "expected some EPF: {}",
        out.report
    );
}

#[test]
fn xes_round_trips_a_real_event_log() {
    let bundle = workload::scm::generate(&workload::scm::ScmSpec {
        transactions: 1_500,
        ..Default::default()
    });
    let out = bundle.run(NetworkConfig::default());
    let analysis = BlockOptR::new().analyze_ledger(&out.ledger);
    let xes = process_mining::xes::to_xes(&analysis.event_log);
    let back = process_mining::xes::from_xes(&xes).unwrap();
    assert_eq!(back.len(), analysis.event_log.len());
    assert_eq!(back.event_count(), analysis.event_log.event_count());
    assert_eq!(back.activities(), analysis.event_log.activities());
}

#[test]
fn compliance_verifies_the_dv_redesign() {
    let spec = workload::dv::DvSpec {
        queries: 400,
        votes: 2_500,
        ..Default::default()
    };
    let bundle = workload::dv::generate(&spec);
    let before_out = bundle.run(NetworkConfig::default());
    let before = BlockOptR::new().analyze_ledger(&before_out.ledger);

    let after_out = workload::dv::per_voter(bundle).run(NetworkConfig::default());
    let after = BlockOptR::new().analyze_ledger(&after_out.ledger);

    let report = verify_rollout(&before, &after);
    assert!(
        report
            .resolved
            .contains(&"Data model alteration".to_string()),
        "{report}"
    );
    assert!(report.improved(), "{report}");
    assert!(report.success_rate.1 > report.success_rate.0 + 40.0);
    // Votes no longer conflict; at most the one-off seeResults scan can
    // still phantom against in-flight ballot inserts.
    assert!(report.read_conflicts.1 <= 1);
    assert!(report.read_conflicts.1 < report.read_conflicts.0 / 100);
}

#[test]
fn auto_tuned_thresholds_adapt_to_slow_deployments() {
    // A calm 40 tps log: the fixed Rt1=300 would never fire, the tuned one
    // tracks the deployment's own sustainable rate.
    let cv = ControlVariables {
        send_rate: 40.0,
        transactions: 1_500,
        ..Default::default()
    };
    let bundle = workload::synthetic::generate(&cv);
    let out = bundle.run(cv.network_config());
    let log = BlockchainLog::from_ledger(&out.ledger);
    let tuned = auto_tune(&log);
    assert!(
        tuned.thresholds.rt1 < 100.0,
        "tuned to the deployment: {}",
        tuned.thresholds.rt1
    );
    assert!(tuned.thresholds.controlled_rate < tuned.sustainable_rate);
}
